"""Ablation: leave-one-out vs. training on the benchmark itself.

Self-trained rules are an upper bound on coverage (every learnable line
of the program contributes a rule); the paper's leave-one-out protocol
shows how much generalization closes that gap.  Cross-benchmark rules
must recover a large fraction of the self-trained dynamic coverage.
"""

from benchmarks.conftest import run_once
from repro.dbt.engine import DBTEngine
from repro.learning.store import RuleStore


def test_ablation_selfrules(benchmark, context):
    name = "libquantum"

    def measure():
        guest = context.build(name, "arm", workload="ref")
        self_store = RuleStore.from_rules(
            context.learning_outcome(name).rules
        )
        cross_store = context.rule_store_excluding(name)
        self_run = DBTEngine(guest, "rules", self_store).run()
        cross_run = DBTEngine(guest, "rules", cross_store).run()
        assert self_run.return_value == cross_run.return_value
        return (self_run.stats.dynamic_coverage,
                cross_run.stats.dynamic_coverage)

    self_cov, cross_cov = run_once(benchmark, measure)
    print()
    print(f"  self-trained rules:   {self_cov:.1%} dynamic coverage")
    print(f"  leave-one-out rules:  {cross_cov:.1%} dynamic coverage")
    # Self-training bounds coverage from above ...
    assert self_cov >= cross_cov - 0.02
    # ... and generalization recovers most of it (the paper's premise
    # that rules transfer across programs).
    assert cross_cov > 0.5 * self_cov
