"""Extension experiment: rule coverage vs. training-corpus size.

Paper Section 7: "Incomplete coverage is mostly due to insufficient
translation rules ... which requires more training programs to build up
the repertoire of such rules.  To this end, the learning system could
be trained using large amounts of existing open-source software."

This bench measures the dynamic coverage of one benchmark as the rule
corpus grows from 1 to all 11 other benchmarks — the curve must be
non-decreasing on average and clearly higher at 11 than at 1.
"""

from benchmarks.conftest import run_once
from repro.dbt.engine import DBTEngine
from repro.learning.rule import dedup_rules
from repro.learning.store import RuleStore

TARGET = "mcf"
CORPUS_SIZES = (1, 3, 6, 11)


def test_corpus_scaling(benchmark, context):
    trainers = [name for name in context.benchmarks if name != TARGET]

    def measure():
        guest = context.build(TARGET, "arm", workload="ref")
        coverage = {}
        for size in CORPUS_SIZES:
            rules = []
            for name in trainers[:size]:
                rules.extend(context.learning_outcome(name).rules)
            store = RuleStore.from_rules(dedup_rules(rules))
            result = DBTEngine(guest, "rules", store).run()
            coverage[size] = (len(store),
                              result.stats.dynamic_coverage)
        return coverage

    coverage = run_once(benchmark, measure)
    print()
    for size, (n_rules, dynamic) in coverage.items():
        print(f"  {size:2d} trainers: {n_rules:3d} rules -> "
              f"{dynamic:.1%} dynamic coverage")

    sizes = sorted(coverage)
    # More training programs -> more coverage (the Section 7 claim).
    assert coverage[sizes[-1]][1] > coverage[sizes[0]][1]
    # And more rules.
    assert coverage[sizes[-1]][0] > coverage[sizes[0]][0]
