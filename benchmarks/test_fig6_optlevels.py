"""Bench: regenerate Figure 6 (rules per optimization level)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_optlevels(benchmark, context):
    result = run_once(benchmark, lambda: fig6.run(context))
    print()
    print(fig6.render(result))

    totals = result.totals()
    # Rules are learned at every level.
    assert all(totals[level] > 0 for level in fig6.LEVELS)
    # Optimized builds learn a similar number of rules (paper: learning
    # is not very sensitive to the level) ...
    assert totals[2] >= 0.5 * totals[1]
    # ... and at least one benchmark learns MORE at -O2 than -O0 (the
    # paper's gobmk/hmmer observation, Figure 7 mechanism).
    assert any(
        counts[2] > counts[0] for counts in result.rules_by_level.values()
    )
    benchmark.extra_info["totals"] = totals
