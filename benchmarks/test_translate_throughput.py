"""Bench: translate-path raw speed — legacy vs indexed vs indexed+DP.

Emits ``BENCH_translate.json`` at the repo root: rule-lookup
throughput (lookups/sec, ns/lookup) for the paper's opcode-mean hash
matcher vs. the mnemonic-trie index, and whole-block translation
throughput (blocks/sec) for the greedy cover under both matchers plus
the indexed lowest-cost DP cover.  The acceptance gate is the indexed
matcher sustaining at least 2x the legacy matcher's lookups/sec on the
real learned-rule population.
"""

import json
import os
import sys
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.dbt.frontend import discover_block
from repro.dbt.ruletrans import translate_block_with_rules
from repro.learning.store import RuleStore

_OUT_DIR = Path(
    os.environ.get("REPRO_BENCH_OUT_DIR")
    or Path(__file__).resolve().parent.parent
)
_OUT_DIR.mkdir(parents=True, exist_ok=True)
OUTPUT = _OUT_DIR / "BENCH_translate.json"

#: Workload the translate path is timed on (rules learned from the
#: other benchmarks, the cross-program evaluation split).
TARGET = "gcc"
#: Acceptance gate: indexed lookups/sec over legacy lookups/sec.
MIN_LOOKUP_SPEEDUP = 2.0
#: Repetitions — each full sweep walks every position of every block.
LOOKUP_REPS = 60
TRANSLATE_REPS = 12


def _blocks(program):
    starts = [
        start for start in sorted(set(program.labels.values()))
        if start < len(program.code)
    ]
    return starts, [discover_block(program, s) for s in starts]


def _time_lookups(store, blocks, reps):
    positions = sum(len(block) for block in blocks)
    hits = 0
    t0 = time.perf_counter()
    for _ in range(reps):
        hits = 0
        for block in blocks:
            match_at = store.match_at
            for i in range(len(block)):
                if match_at(block, i) is not None:
                    hits += 1
    seconds = time.perf_counter() - t0
    lookups = positions * reps
    return {
        "positions": positions,
        "hit_positions": hits,
        "seconds": round(seconds, 4),
        "lookups_per_second": round(lookups / seconds),
        "ns_per_lookup": round(seconds / lookups * 1e9, 1),
        "ns_per_hit": round(seconds / max(hits * reps, 1) * 1e9, 1),
    }


def _time_translation(program, starts, store, cover, reps):
    t0 = time.perf_counter()
    for _ in range(reps):
        for start in starts:
            translate_block_with_rules(program, start, store, cover=cover)
    seconds = time.perf_counter() - t0
    blocks = len(starts) * reps
    return {
        "seconds": round(seconds, 4),
        "blocks_per_second": round(blocks / seconds, 1),
        "ms_per_block": round(seconds / blocks * 1e3, 4),
    }


def test_translate_throughput(benchmark, context):
    rules = context.rule_store_excluding(TARGET).all_rules()
    program = context.build(TARGET, "arm", workload="test")
    starts, blocks = _blocks(program)
    stores = {
        mode: RuleStore.from_rules(rules, matcher=mode)
        for mode in ("hash", "indexed")
    }

    def measure():
        lookup = {
            "legacy": _time_lookups(stores["hash"], blocks, LOOKUP_REPS),
            "indexed": _time_lookups(stores["indexed"], blocks,
                                     LOOKUP_REPS),
        }
        translate = {
            "legacy": _time_translation(
                program, starts, stores["hash"], "greedy", TRANSLATE_REPS
            ),
            "indexed": _time_translation(
                program, starts, stores["indexed"], "greedy",
                TRANSLATE_REPS
            ),
            "indexed_dp": _time_translation(
                program, starts, stores["indexed"], "dp", TRANSLATE_REPS
            ),
        }
        return {
            "bench": "translate_throughput",
            "python": sys.version.split()[0],
            "target": TARGET,
            "rules": len(rules),
            "blocks": len(starts),
            "guest_instructions": sum(len(b) for b in blocks),
            "lookup": lookup,
            "lookup_speedup": round(
                lookup["indexed"]["lookups_per_second"]
                / lookup["legacy"]["lookups_per_second"], 2
            ),
            "translate": translate,
        }

    payload = run_once(benchmark, measure)
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print()
    print(f"  wrote {OUTPUT}")
    for mode in ("legacy", "indexed"):
        row = payload["lookup"][mode]
        print(f"  {mode:>10s}: {row['lookups_per_second']:,} lookups/s "
              f"({row['ns_per_lookup']} ns/lookup)")
    print(f"  lookup speedup: {payload['lookup_speedup']}x "
          f"(gate: >= {MIN_LOOKUP_SPEEDUP}x)")
    for mode, row in payload["translate"].items():
        print(f"  {mode:>10s}: {row['blocks_per_second']} blocks/s")

    # Both matchers hit the same positions (they are exact).
    assert payload["lookup"]["legacy"]["hit_positions"] == \
        payload["lookup"]["indexed"]["hit_positions"]
    assert payload["lookup"]["legacy"]["hit_positions"] > 0
    # The tentpole gate: the index at least doubles lookup throughput.
    assert payload["lookup_speedup"] >= MIN_LOOKUP_SPEEDUP
    benchmark.extra_info.update(
        lookup_speedup=payload["lookup_speedup"],
        indexed_blocks_per_second=(
            payload["translate"]["indexed"]["blocks_per_second"]
        ),
    )
