"""Ablation: longest-first vs. shortest-first vs. length-1-only matching.

DESIGN.md calls out the Section 4 greedy longest-first match as a design
choice; this bench shows why: restricting rules to single guest
instructions (the one-to-one/one-to-many world of hand-written rules)
or matching shortest-first loses a measurable part of the dynamic
host-instruction reduction.

Parametrized over the store's matcher mode (mnemonic-trie index vs. the
paper's opcode-mean hash): the match *order* ablation must come out the
same under either lookup structure, because the matchers are exact.
The engines run the greedy cover — match-order policy is exactly what
the ablation varies, so the DP planner (which ignores ``match_at``
order) would mask it.
"""

import pytest

from benchmarks.conftest import run_once
from repro.dbt.engine import DBTEngine
from repro.learning.store import MATCHER_MODES, RuleStore


class ShortestFirstStore(RuleStore):
    """Match shortest sequences first (inverted Section 4 order)."""

    def match_at(self, instrs, start, limit=None):
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        best = None
        for length in range(1, max_len + 1):
            best = super().match_at(instrs, start, limit=length)
            if best is not None:
                return best
        return None


class LengthOneStore(RuleStore):
    """Only one-to-many rules (no learned multi-instruction mappings)."""

    def match_at(self, instrs, start, limit=None):
        return super().match_at(instrs, start, limit=1)


def _dyn_instrs(context, store_cls, matcher, name="libquantum"):
    base = context.rule_store_excluding(name)
    store = store_cls.from_rules(base.all_rules(), matcher=matcher)
    guest = context.build(name, "arm", workload="ref")
    result = DBTEngine(guest, "rules", store, cover="greedy").run()
    return result.stats.dynamic_host_instructions, result.return_value


@pytest.mark.parametrize("matcher", MATCHER_MODES)
def test_ablation_matching(benchmark, context, matcher):
    def ablate():
        return {
            "longest": _dyn_instrs(context, RuleStore, matcher),
            "shortest": _dyn_instrs(context, ShortestFirstStore, matcher),
            "length1": _dyn_instrs(context, LengthOneStore, matcher),
        }

    results = run_once(benchmark, ablate)
    print()
    for scheme, (dyn, _) in results.items():
        print(f"{scheme:>8s} [{matcher}]: {dyn} dynamic host instructions")

    # All strategies are CORRECT (verified rules compose safely) ...
    values = {ret for _, ret in results.values()}
    assert len(values) == 1
    # ... but longest-first generates the best code:
    assert results["longest"][0] <= results["shortest"][0]
    assert results["longest"][0] < results["length1"][0]
