"""Ablation: longest-first vs. shortest-first vs. length-1-only matching.

DESIGN.md calls out the Section 4 greedy longest-first match as a design
choice; this bench shows why: restricting rules to single guest
instructions (the one-to-one/one-to-many world of hand-written rules)
or matching shortest-first loses a measurable part of the dynamic
host-instruction reduction.
"""

from benchmarks.conftest import run_once
from repro.dbt.engine import DBTEngine
from repro.learning.store import RuleStore


class ShortestFirstStore(RuleStore):
    """Match shortest sequences first (inverted Section 4 order)."""

    def match_at(self, instrs, start, limit=None):
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        best = None
        for length in range(1, max_len + 1):
            best = super().match_at(instrs, start, limit=length)
            if best is not None:
                return best
        return None


class LengthOneStore(RuleStore):
    """Only one-to-many rules (no learned multi-instruction mappings)."""

    def match_at(self, instrs, start, limit=None):
        return super().match_at(instrs, start, limit=1)


def _dyn_instrs(context, store_cls, name="libquantum"):
    base = context.rule_store_excluding(name)
    store = store_cls.from_rules(base.all_rules())
    guest = context.build(name, "arm", workload="ref")
    result = DBTEngine(guest, "rules", store).run()
    return result.stats.dynamic_host_instructions, result.return_value


def test_ablation_matching(benchmark, context):
    def ablate():
        return {
            "longest": _dyn_instrs(context, RuleStore),
            "shortest": _dyn_instrs(context, ShortestFirstStore),
            "length1": _dyn_instrs(context, LengthOneStore),
        }

    results = run_once(benchmark, ablate)
    print()
    for scheme, (dyn, _) in results.items():
        print(f"{scheme:>8s}: {dyn} dynamic host instructions")

    # All strategies are CORRECT (verified rules compose safely) ...
    values = {ret for _, ret in results.values()}
    assert len(values) == 1
    # ... but longest-first generates the best code:
    assert results["longest"][0] <= results["shortest"][0]
    assert results["longest"][0] < results["length1"][0]
