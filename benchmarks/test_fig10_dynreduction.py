"""Bench: regenerate Figure 10 (dynamic host instruction reduction)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10


def test_fig10_dynreduction(benchmark, context):
    result = run_once(benchmark, lambda: fig10.run(context))
    print()
    print(fig10.render(result))

    # Paper: 34% average reduction.
    assert 0.20 <= result.average <= 0.50
    # Every benchmark sees some reduction.
    assert all(frac > 0.05 for frac in result.reductions.values())
    # omnetpp's hottest code is hand-written runtime assembly that the
    # rules cannot cover, so its reduction is below average (the paper's
    # explicit observation about omnetpp).
    assert result.reductions["omnetpp"] < result.average
    benchmark.extra_info["average_reduction"] = round(result.average, 3)
