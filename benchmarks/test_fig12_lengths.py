"""Bench: regenerate Figure 12 (length distribution of hit rules)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12


def test_fig12_lengths(benchmark, context):
    result = run_once(benchmark, lambda: fig12.run(context))
    print()
    print(fig12.render(result))

    # Paper: rules with >= 2 guest instructions are commonly hit — the
    # many-to-many mappings that one-to-many hand-written rules miss.
    assert result.share_of_multi_instruction_hits() > 0.10
    assert result.max_length() >= 2
    # Every benchmark hits at least one rule.
    assert all(sum(d.values()) > 0 for d in result.distributions.values())
    benchmark.extra_info["multi_hit_share"] = round(
        result.share_of_multi_instruction_hits(), 3
    )
