"""Bench: regenerate Figure 11 (static and dynamic rule coverage)."""

from benchmarks.conftest import run_once
from repro.experiments import fig11


def test_fig11_coverage(benchmark, context):
    result = run_once(benchmark, lambda: fig11.run(context))
    print()
    print(fig11.render(result))

    # Paper: more than 60% average static AND dynamic coverage.
    assert result.average_static > 0.5
    assert result.average_dynamic > 0.4
    # mcf has the highest dynamic coverage (paper: > 85%).
    best = max(result.coverage, key=lambda n: result.coverage[n][1])
    assert best == "mcf"
    # omnetpp's dynamic coverage is dragged down by the runtime-assembly
    # division helper.
    assert result.coverage["omnetpp"][1] < result.average_dynamic
    benchmark.extra_info["avg_static"] = round(result.average_static, 3)
    benchmark.extra_info["avg_dynamic"] = round(result.average_dynamic, 3)
