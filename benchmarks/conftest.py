"""Shared fixtures for the benchmark harness.

All targets share one :class:`ExperimentContext`, so compiled builds,
learned rule sets and DBT runs are reused across benches within one
pytest session (the figures intentionally share those inputs, exactly
as the paper's evaluation reuses one learning run).
"""

import pytest

from repro.experiments.common import shared_context


@pytest.fixture(scope="session")
def context():
    return shared_context()


def run_once(benchmark, fn):
    """Time a whole-experiment regeneration exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
