"""Bench: rule-learning throughput — sequential vs parallel vs cached.

Emits ``BENCH_learning.json`` at the repo root (candidates/sec, solver
invocations, dedup savings, cache hit rate, sequential vs parallel
wall-clock) so future PRs have a perf trajectory to compare against.
"""

import io
import json
import os
import sys
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.benchsuite import BENCHMARK_NAMES, build_learning_pair
from repro.learning.cache import VerificationCache
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import learn_corpus
from repro.obs.profiler import SamplingProfiler, phase
from repro.obs.trace import NULL_TRACER, tracing

#: ``REPRO_BENCH_OUT_DIR`` redirects payloads (CI artifact staging,
#: bench_compare fresh runs) without touching the committed baselines.
_OUT_DIR = Path(
    os.environ.get("REPRO_BENCH_OUT_DIR")
    or Path(__file__).resolve().parent.parent
)
_OUT_DIR.mkdir(parents=True, exist_ok=True)
OUTPUT = _OUT_DIR / "BENCH_learning.json"
OVERHEAD_OUTPUT = _OUT_DIR / "BENCH_trace_overhead.json"
PROFILER_OUTPUT = _OUT_DIR / "BENCH_profiler_overhead.json"
#: Oversubscribing a box with more worker processes than cores only
#: adds scheduling churn (the learners are CPU-bound), so the default
#: matches the machine; ``cpus``/``jobs`` in the payload record the
#: provenance so bench_compare can annotate rather than flag runs
#: whose parallel figures merely reflect the host's core count.
JOBS = os.cpu_count() or 1
#: Acceptance gate: the disabled tracer may cost at most this fraction
#: of sequential learning wall-clock.
MAX_DISABLED_OVERHEAD = 0.02
#: Acceptance gate: a *running* sampling profiler may cost at most
#: this fraction of sequential learning wall-clock.
MAX_PROFILER_OVERHEAD = 0.03
#: Sampling rate the profiler-overhead gate runs at (the default).
PROFILER_HZ = 97


def _total(outcomes, field):
    return sum(getattr(o.report, field) for o in outcomes.values())


def _candidates(outcomes):
    """Snippet pairs that reached the verify stage."""
    return sum(
        o.report.rules + o.report.verify_failures for o in outcomes.values()
    )


def test_learning_throughput(benchmark, tmp_path):
    builds = {name: build_learning_pair(name) for name in BENCHMARK_NAMES}

    def measure():
        t0 = time.perf_counter()
        sequential = learn_corpus(builds)
        sequential_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        cold = learn_corpus(builds, cache=VerificationCache.at_dir(tmp_path))
        cold_seconds = time.perf_counter() - t0

        warm_cache = VerificationCache.at_dir(tmp_path)
        t0 = time.perf_counter()
        warm = learn_corpus(builds, cache=warm_cache)
        warm_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = learn_corpus_parallel(builds, jobs=JOBS)
        parallel_seconds = time.perf_counter() - t0

        candidates = _candidates(sequential)
        return {
            "bench": "learning_throughput",
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
            "jobs": JOBS,
            "benchmarks": len(builds),
            "rules": _total(sequential, "rules"),
            "candidates": candidates,
            "sequential": {
                "seconds": round(sequential_seconds, 3),
                "candidates_per_second": round(
                    candidates / sequential_seconds, 1
                ),
                "verify_calls": _total(sequential, "verify_calls"),
                "dedup_saved_calls": _total(sequential, "dedup_saved_calls"),
            },
            "cold_cache": {
                "seconds": round(cold_seconds, 3),
                "verify_calls": _total(cold, "verify_calls"),
                "cache_misses": _total(cold, "cache_misses"),
            },
            "warm_cache": {
                "seconds": round(warm_seconds, 3),
                "candidates_per_second": round(candidates / warm_seconds, 1),
                "verify_calls": _total(warm, "verify_calls"),
                "cache_hits": _total(warm, "cache_hits"),
                "hit_rate": round(warm_cache.stats.hit_rate, 4),
                "speedup_over_cold": round(cold_seconds / warm_seconds, 2),
            },
            "parallel": {
                "seconds": round(parallel_seconds, 3),
                "speedup_over_sequential": round(
                    sequential_seconds / parallel_seconds, 2
                ),
                "rules_match_sequential": all(
                    parallel[name].rules == sequential[name].rules
                    for name in builds
                ),
            },
        }

    payload = run_once(benchmark, measure)
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print()
    print(f"  wrote {OUTPUT}")
    print(f"  sequential: {payload['sequential']['seconds']}s "
          f"({payload['sequential']['candidates_per_second']} cand/s, "
          f"{payload['sequential']['verify_calls']} solver calls, "
          f"{payload['sequential']['dedup_saved_calls']} deduped)")
    print(f"  warm cache: {payload['warm_cache']['seconds']}s "
          f"({payload['warm_cache']['speedup_over_cold']}x over cold, "
          f"hit rate {payload['warm_cache']['hit_rate']:.0%})")
    print(f"  parallel (jobs={JOBS}): {payload['parallel']['seconds']}s")

    # Pre-verification dedup pays on a cold run.
    assert payload["sequential"]["dedup_saved_calls"] > 0
    # A warm cache eliminates >= 90% of solver invocations.
    assert payload["warm_cache"]["verify_calls"] <= \
        0.1 * payload["cold_cache"]["verify_calls"]
    assert payload["warm_cache"]["hit_rate"] > 0.9
    # And is substantially faster than a cold run.
    assert payload["warm_cache"]["seconds"] < \
        payload["cold_cache"]["seconds"]
    # The parallel path stays equivalent.
    assert payload["parallel"]["rules_match_sequential"]

    benchmark.extra_info.update(
        rules=payload["rules"],
        candidates_per_second=payload["sequential"]["candidates_per_second"],
        warm_hit_rate=payload["warm_cache"]["hit_rate"],
    )


def test_disabled_tracer_overhead(benchmark):
    """Gate: tracing disabled (the default) costs <= 2% of learning.

    Every instrumentation site guards on ``tracer.enabled``, so a
    disabled run pays one attribute check (plus a no-op call at the few
    span sites) per site visit.  Rather than diffing two noisy
    wall-clock runs, bound the cost deterministically: count how many
    records a fully traced run emits (an upper bound on guarded-site
    visits that do any work), time the disabled-path guard in a tight
    loop, and require sites x per-site cost to stay under the budget
    with a generous safety factor.
    """
    builds = {name: build_learning_pair(name) for name in BENCHMARK_NAMES}

    def measure():
        t0 = time.perf_counter()
        learn_corpus(builds)
        baseline_seconds = time.perf_counter() - t0

        with tracing(io.StringIO()) as tracer:
            learn_corpus(builds)
        site_visits = tracer.records_written

        trials = 200_000
        guard = NULL_TRACER
        t0 = time.perf_counter()
        for _ in range(trials):
            if guard.enabled:
                raise AssertionError("null tracer must stay disabled")
            guard.event("never.emitted")
        per_site = (time.perf_counter() - t0) / trials

        # 4x: spans guard twice and some sites check without emitting.
        overhead_seconds = 4 * site_visits * per_site
        return {
            "bench": "disabled_tracer_overhead",
            "python": sys.version.split()[0],
            "baseline_seconds": round(baseline_seconds, 3),
            "trace_site_visits": site_visits,
            "per_site_seconds": per_site,
            "bounded_overhead_seconds": round(overhead_seconds, 6),
            "overhead_fraction": round(
                overhead_seconds / baseline_seconds, 6
            ),
            "budget_fraction": MAX_DISABLED_OVERHEAD,
        }

    payload = run_once(benchmark, measure)
    OVERHEAD_OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print()
    print(f"  wrote {OVERHEAD_OUTPUT}")
    print(f"  disabled-tracer overhead bound: "
          f"{payload['overhead_fraction']:.4%} of "
          f"{payload['baseline_seconds']}s learning "
          f"(budget {MAX_DISABLED_OVERHEAD:.0%})")

    assert payload["trace_site_visits"] > 0
    assert payload["overhead_fraction"] <= MAX_DISABLED_OVERHEAD
    benchmark.extra_info.update(
        overhead_fraction=payload["overhead_fraction"]
    )


def test_profiler_on_overhead(benchmark):
    """Gate: a live sampling profiler costs <= 3% of learning.

    The always-on profiler has two cost components: the sampler
    thread's duty cycle (``hz`` stack walks per second, each costing
    one ``sys._current_frames`` traversal) and the per-site ``phase``
    bookkeeping (one list append/pop per instrumented region).  Both
    are bounded deterministically — per-sample and per-site costs are
    timed in tight loops and multiplied out — because diffing two
    noisy wall-clock runs can't resolve a 3% budget on a shared box.
    A real profiled run still happens, to assert results are unchanged
    and the sampler actually collected data, and its measured delta is
    reported informationally.
    """
    builds = {name: build_learning_pair(name) for name in BENCHMARK_NAMES}

    def measure():
        t0 = time.perf_counter()
        baseline = learn_corpus(builds)
        baseline_seconds = time.perf_counter() - t0

        profiler = SamplingProfiler(hz=PROFILER_HZ)
        profiler.start()
        t0 = time.perf_counter()
        profiled = learn_corpus(builds)
        profiled_seconds = time.perf_counter() - t0
        profiler.stop()
        snapshot = profiler.snapshot()

        # Deterministic per-sample cost: a full sample of this very
        # process's thread stacks, on the profiler's own clock.
        trials = 2_000
        t0 = time.perf_counter()
        for _ in range(trials):
            profiler.sample_once()
        per_sample = (time.perf_counter() - t0) / trials

        # Deterministic per-site cost of the phase bookkeeping.
        trials = 200_000
        t0 = time.perf_counter()
        for _ in range(trials):
            with phase("bench.site"):
                pass
        per_site = (time.perf_counter() - t0) / trials

        # Sequential learning enters one phase per pipeline stage per
        # benchmark (learn.extract / learn.paramize / learn.verify).
        phase_site_visits = 3 * len(builds)
        duty_fraction = PROFILER_HZ * per_sample
        bounded = duty_fraction + (
            phase_site_visits * per_site / baseline_seconds
        )
        return {
            "bench": "profiler_overhead",
            "python": sys.version.split()[0],
            "hz": PROFILER_HZ,
            "baseline_seconds": round(baseline_seconds, 3),
            "profiled_seconds": round(profiled_seconds, 3),
            "measured_overhead_fraction": round(
                max(0.0, profiled_seconds / baseline_seconds - 1.0), 4
            ),
            "samples": snapshot["total_samples"],
            "per_sample_seconds": per_sample,
            "per_site_seconds": per_site,
            "phase_site_visits": phase_site_visits,
            "sampling_duty_fraction": round(duty_fraction, 6),
            "bounded_overhead_fraction": round(bounded, 6),
            "budget_fraction": MAX_PROFILER_OVERHEAD,
            "rules_match_baseline": all(
                profiled[name].rules == baseline[name].rules
                for name in builds
            ),
        }

    payload = run_once(benchmark, measure)
    PROFILER_OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print()
    print(f"  wrote {PROFILER_OUTPUT}")
    print(f"  profiler-on overhead bound: "
          f"{payload['bounded_overhead_fraction']:.4%} of "
          f"{payload['baseline_seconds']}s learning "
          f"(measured {payload['measured_overhead_fraction']:.2%}, "
          f"budget {MAX_PROFILER_OVERHEAD:.0%})")

    assert payload["samples"] > 0, "profiler collected no samples"
    assert payload["rules_match_baseline"]
    assert payload["bounded_overhead_fraction"] <= MAX_PROFILER_OVERHEAD
    benchmark.extra_info.update(
        bounded_overhead_fraction=payload["bounded_overhead_fraction"]
    )
