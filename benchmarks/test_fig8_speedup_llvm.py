"""Bench: regenerate Figure 8 (speedups, LLVM-built guests)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8


def test_fig8_speedup_llvm(benchmark, context):
    result = run_once(benchmark, lambda: fig8.run(context))
    print()
    print(fig8.render(result))

    # Paper's headline: rules give a solid average speedup on the
    # reference workload (1.25X) with every benchmark improving ...
    ref_rules = result.mean("rules", "ref")
    assert 1.1 <= ref_rules <= 1.6
    assert all(
        per_bench[("rules", "ref")] > 1.0
        for per_bench in result.speedups.values()
    )
    # ... rules still win on the short test workload (low overhead) ...
    assert result.mean("rules", "test") > 1.0
    # ... while LLVM JIT loses heavily on test and only breaks roughly
    # even on ref (the crossover that motivates rule-based translation).
    assert result.mean("llvmjit", "test") < 0.75
    assert 0.85 <= result.mean("llvmjit", "ref") <= 1.15
    # Rules beat LLVM JIT everywhere.
    for per_bench in result.speedups.values():
        for workload in ("test", "ref"):
            assert per_bench[("rules", workload)] > \
                per_bench[("llvmjit", workload)]
    benchmark.extra_info["rules_ref_geomean"] = round(ref_rules, 3)
