"""Bench: rule translation overhead vs. TCG and LLVM JIT (Section 6.2).

The paper's claim: applying learned rules adds very little translation
overhead even for short-running workloads, while an LLVM JIT backend's
overhead is crippling there.
"""

from benchmarks.conftest import run_once
from repro.dbt.engine import DBTEngine


def test_translation_overhead(benchmark, context):
    name = "xalancbmk"  # the paper's shortest-running benchmark

    def measure():
        guest = context.build(name, "arm", workload="test")
        runs = {}
        for mode in ("qemu", "rules", "llvmjit"):
            store = context.rule_store_excluding(name) if mode == "rules" \
                else None
            runs[mode] = DBTEngine(guest, mode, store).run()
        return runs

    runs = run_once(benchmark, measure)
    print()
    for mode, result in runs.items():
        perf = result.stats.perf
        print(f"{mode:>8s}: translation={perf.translation_cycles:10.0f}  "
              f"execution={perf.exec_cycles:10.0f}")

    trans = {m: runs[m].stats.perf.translation_cycles for m in runs}
    # Rule-based translation costs the same order as plain TCG ...
    assert trans["rules"] < 4 * trans["qemu"]
    # ... while LLVM JIT costs an order of magnitude more.
    assert trans["llvmjit"] > 4 * trans["qemu"]
    # And the rules still produce the fastest host code.
    exec_cycles = {m: runs[m].stats.perf.exec_cycles for m in runs}
    assert exec_cycles["rules"] < exec_cycles["qemu"]
    assert exec_cycles["rules"] < exec_cycles["llvmjit"]
