"""Bench: regenerate Figure 9 (speedups, GCC-built guests)."""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9_speedup_gcc(benchmark, context):
    result = run_once(benchmark, lambda: fig9.run(context))
    print()
    print(fig9.render(result))

    # The rules were learned from LLVM-style builds only; they must
    # still deliver the reference-workload win on GCC-style guests
    # (paper: 1.21X — learning is compiler-insensitive).
    assert result.mean("rules", "ref") > 1.1
    assert all(
        per_bench[("rules", "ref")] > 1.0
        for per_bench in result.speedups.values()
    )
    assert result.mean("llvmjit", "test") < 0.75
    benchmark.extra_info["rules_ref_geomean"] = round(
        result.mean("rules", "ref"), 3
    )
