"""Ablation: source-line learning scope vs. basic-block scope.

The paper (Section 2) argues for the source *line* as the learning
scope; one reason is that "a large learning scope ... make[s] a rule
less likely to be applied in practice because it is rare to exactly
match a long sequence of guest binary code."  This bench learns rules
from whole machine basic blocks instead and applies both rule sets to a
*different* benchmark: the long block-scope rules barely ever match,
so their static coverage collapses.
"""

from benchmarks.conftest import run_once
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.verify import verify_candidate
from repro.guest_arm import isa as arm_isa
from repro.host_x86 import isa as x86_isa


def _machine_blocks(func, isa):
    blocks = []
    current = []
    for instr in func.instrs:
        if instr.line is None:
            continue
        current.append(instr)
        if isa.is_branch(instr):
            blocks.append(current)
            current = []
    if current:
        blocks.append(current)
    return blocks


def _block_scope_rules(context, name):
    guest_prog = context.build(name, "arm")
    host_prog = context.build(name, "x86")
    attempted = 0
    rules = []
    for fname, guest_func in guest_prog.functions.items():
        host_func = host_prog.functions.get(fname)
        if host_func is None or fname in guest_prog.runtime_functions:
            continue
        guest_blocks = _machine_blocks(guest_func, arm_isa)
        host_blocks = _machine_blocks(host_func, x86_isa)
        for gblock, hblock in zip(guest_blocks, host_blocks):
            attempted += 1
            if any(arm_isa.is_call(i) or arm_isa.is_indirect_branch(i)
                   for i in gblock):
                continue
            if any(x86_isa.is_call(i) or x86_isa.is_indirect_branch(i)
                   for i in hblock):
                continue
            if any(arm_isa.is_branch(i) for i in gblock[:-1]):
                continue
            if any(x86_isa.is_branch(i) for i in hblock[:-1]):
                continue
            gclean = [i for i in gblock
                      if not (arm_isa.is_branch(i)
                              and arm_isa.branch_condition(i) is None)]
            hclean = [i for i in hblock
                      if not (x86_isa.is_branch(i)
                              and x86_isa.branch_condition(i) is None)]
            if not gclean or not hclean:
                continue
            if any(arm_isa.is_predicated(i) for i in gclean) or \
                    any(x86_isa.is_predicated(i) for i in hclean):
                continue
            pair = SnippetPair(fname, gclean[0].line or 0, gclean, hclean)
            context_obj = analyze_pair(pair)
            mappings, failure = generate_mappings(context_obj)
            if failure is not None:
                continue
            for mapping in mappings:
                result = verify_candidate(context_obj, mapping)
                if result.rule is not None:
                    rules.append(result.rule)
                    break
    return attempted, rules


def _static_coverage(context, rules, target_name):
    from repro.dbt.engine import DBTEngine
    from repro.learning.store import RuleStore

    store = RuleStore.from_rules(list(rules))
    guest = context.build(target_name, "arm", workload="test")
    result = DBTEngine(guest, "rules", store).run()
    return result.stats.static_coverage


def test_ablation_scope(benchmark, context):
    source, target = "bzip2", "mcf"

    def ablate():
        line_rules = context.learning_outcome(source).rules
        _, block_rules = _block_scope_rules(context, source)
        return (
            _static_coverage(context, line_rules, target),
            _static_coverage(context, block_rules, target),
            len(line_rules),
            len(block_rules),
        )

    line_cov, block_cov, n_line, n_block = run_once(benchmark, ablate)
    print()
    print(f"line scope:  {n_line} rules -> {line_cov:.1%} static coverage "
          f"of {target}")
    print(f"block scope: {n_block} rules -> {block_cov:.1%} static coverage "
          f"of {target}")
    # Line-scope rules transfer to other programs; block-scope rules are
    # too long/specific to match foreign code.
    assert line_cov > 2 * block_cov
