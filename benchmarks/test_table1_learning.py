"""Bench: regenerate Table 1 (learning results) and check its shape."""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_table1_learning(benchmark, context):
    result = run_once(benchmark, lambda: table1.run(context))
    print()
    print(table1.render(result))

    totals = result.totals
    # Shape claims from the paper's Table 1:
    assert totals.rules > 0
    # Rules are learned from every benchmark.
    assert all(report.rules > 0 for report in result.reports.values())
    # Rg dominates verification failures (register allocation divergence).
    assert totals.verify_rg >= max(
        totals.verify_mm, totals.verify_br, totals.verify_other
    )
    # Yield in a plausible band around the paper's 24%.
    assert 0.05 <= result.yield_fraction <= 0.60
    # Learning a rule takes far less than the paper's 2 s bound.
    assert result.seconds_per_rule < 2.0
    # Verification dominates learning time (paper: ~95%).
    assert result.verify_time_share > 0.5
    benchmark.extra_info["rules"] = totals.rules
    benchmark.extra_info["yield"] = round(result.yield_fraction, 3)
