"""Ablation: the paper's opcode-mean hash vs. alternative rule indexes.

Counts how many rule-sequence comparison attempts each indexing scheme
performs while translating a benchmark — the cost the paper's Section 4
hash table is meant to bound.
"""

from benchmarks.conftest import run_once
from repro.guest_arm import isa as arm_isa
from repro.learning.rule import match_rule
from repro.learning.store import RuleMatch, RuleStore


class CountingStore(RuleStore):
    """Opcode-mean hash (the paper's scheme), counting comparisons."""

    comparisons = 0

    def match_at(self, instrs, start, limit=None):
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        ids = [arm_isa.opcode_id(i) for i in instrs[start:start + max_len]]
        prefix = [0]
        for opcode in ids:
            prefix.append(prefix[-1] + opcode)
        for length in range(max_len, 0, -1):
            key = prefix[length] // length
            for rule in self._buckets.get(key, ()):
                if rule.length != length:
                    continue
                type(self).comparisons += 1
                binding = match_rule(rule, instrs[start:start + length])
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None


class LinearStore(CountingStore):
    """No hash at all: every rule of each length is tried."""

    comparisons = 0

    def match_at(self, instrs, start, limit=None):
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        all_rules = self.all_rules()
        for length in range(max_len, 0, -1):
            for rule in all_rules:
                if rule.length != length:
                    continue
                type(self).comparisons += 1
                binding = match_rule(rule, instrs[start:start + length])
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None


def _translate_all(context, store_cls, name="gcc"):
    store_cls.comparisons = 0
    base = context.rule_store_excluding(name)
    store = store_cls.from_rules(base.all_rules())
    guest = context.build(name, "arm", workload="test")
    from repro.dbt.engine import DBTEngine

    result = DBTEngine(guest, "rules", store).run()
    return store_cls.comparisons, result.return_value


def test_ablation_hash(benchmark, context):
    def ablate():
        return {
            "opcode-mean": _translate_all(context, CountingStore),
            "linear-scan": _translate_all(context, LinearStore),
        }

    results = run_once(benchmark, ablate)
    print()
    for scheme, (count, _) in results.items():
        print(f"{scheme:>12s}: {count} rule comparisons")

    # Correctness is index-independent ...
    assert results["opcode-mean"][1] == results["linear-scan"][1]
    # ... and the paper's hash prunes most comparisons.
    assert results["opcode-mean"][0] * 3 < results["linear-scan"][0]
