"""Ablation: mnemonic-trie index vs. opcode-mean hash vs. linear scan.

Counts how many rule-sequence comparison attempts each indexing scheme
performs while translating a benchmark — the cost the paper's Section 4
hash table is meant to bound, and the cost the mnemonic-trie index
(DESIGN.md Section 9) bounds tighter still.  Every matcher funnels its
comparisons through ``RuleStore._compare``, so one counting subclass
measures them all.
"""

from benchmarks.conftest import run_once
from repro.learning.rule import match_rule
from repro.learning.store import RuleMatch, RuleStore


class CountingStore(RuleStore):
    """Counts rule-sequence comparisons for whichever matcher runs."""

    comparisons = 0

    def _compare(self, rule, instrs, start, length):
        type(self).comparisons += 1
        return super()._compare(rule, instrs, start, length)


class LinearStore(RuleStore):
    """No index at all: every rule of each length is tried."""

    comparisons = 0

    def match_at(self, instrs, start, limit=None):
        max_len = len(instrs) - start
        if limit is not None:
            max_len = min(max_len, limit)
        max_len = min(max_len, self._max_length)
        all_rules = self.all_rules()
        for length in range(max_len, 0, -1):
            for rule in all_rules:
                if rule.length != length:
                    continue
                type(self).comparisons += 1
                binding = match_rule(rule, instrs[start:start + length])
                if binding is not None:
                    return RuleMatch(rule, binding, length)
        return None


def _translate_all(context, store_cls, matcher, name="gcc"):
    store_cls.comparisons = 0
    base = context.rule_store_excluding(name)
    store = store_cls.from_rules(base.all_rules(), matcher=matcher)
    guest = context.build(name, "arm", workload="test")
    from repro.dbt.engine import DBTEngine

    result = DBTEngine(guest, "rules", store, cover="greedy").run()
    return store_cls.comparisons, result.return_value


def test_ablation_hash(benchmark, context):
    def ablate():
        return {
            "mnemonic-trie": _translate_all(context, CountingStore,
                                            "indexed"),
            "opcode-mean": _translate_all(context, CountingStore, "hash"),
            "linear-scan": _translate_all(context, LinearStore, "hash"),
        }

    results = run_once(benchmark, ablate)
    print()
    for scheme, (count, _) in results.items():
        print(f"{scheme:>13s}: {count} rule comparisons")

    # Correctness is index-independent ...
    assert len({ret for _, ret in results.values()}) == 1
    # ... the paper's hash prunes most comparisons ...
    assert results["opcode-mean"][0] * 3 < results["linear-scan"][0]
    # ... and the trie's candidates are mnemonic-exact, a subset of the
    # hash bucket's (opcode ids depend only on the base mnemonic).
    assert results["mnemonic-trie"][0] <= results["opcode-mean"][0]
