"""The ROBDD manager and backend."""

import pytest

from repro import ir
from repro.ir.evaluate import evaluate
from repro.solver.bdd import BddBackend, BddBudgetExceeded, BddManager
from repro.solver.gates import CircuitBuilder


class TestManager:
    def test_terminals(self):
        manager = BddManager()
        assert manager.TRUE == 1
        assert manager.FALSE == 0

    def test_var_node_reduced(self):
        manager = BddManager()
        v = manager.new_var_index()
        assert manager.var_node(v) == manager.var_node(v)  # hash-consed

    def test_not(self):
        manager = BddManager()
        node = manager.var_node(manager.new_var_index())
        assert manager.not_(manager.not_(node)) == node

    def test_and_or_terminals(self):
        manager = BddManager()
        node = manager.var_node(manager.new_var_index())
        assert manager.and_(node, manager.TRUE) == node
        assert manager.and_(node, manager.FALSE) == manager.FALSE
        assert manager.or_(node, manager.FALSE) == node
        assert manager.or_(node, manager.TRUE) == manager.TRUE

    def test_xor_self_is_false(self):
        manager = BddManager()
        node = manager.var_node(manager.new_var_index())
        assert manager.xor(node, node) == manager.FALSE

    def test_canonical_forms_coincide(self):
        manager = BddManager()
        a = manager.var_node(manager.new_var_index())
        b = manager.var_node(manager.new_var_index())
        demorgan_left = manager.not_(manager.and_(a, b))
        demorgan_right = manager.or_(manager.not_(a), manager.not_(b))
        assert demorgan_left == demorgan_right

    def test_satisfying_path(self):
        manager = BddManager()
        v0 = manager.new_var_index()
        v1 = manager.new_var_index()
        node = manager.and_(manager.var_node(v0),
                            manager.not_(manager.var_node(v1)))
        path = manager.satisfying_path(node)
        assert path == {v0: True, v1: False}

    def test_satisfying_path_of_false_is_none(self):
        manager = BddManager()
        assert manager.satisfying_path(manager.FALSE) is None

    def test_budget_enforced(self):
        manager = BddManager(node_budget=256)
        x = ir.sym(16, "x")
        y = ir.sym(16, "y")
        backend = BddBackend(manager, {"x": 16, "y": 16})
        circuit = CircuitBuilder(backend)
        with pytest.raises(BddBudgetExceeded):
            circuit.lower(ir.mul(x, y))  # var*var multiply blows up


class TestCircuitOverBdd:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (7, 9), (255, 1),
                                     (0xABCD, 0x1234)])
    def test_adder_matches_evaluator(self, a, b):
        x = ir.sym(16, "x")
        y = ir.sym(16, "y")
        expr = ir.add(x, y)
        manager = BddManager()
        backend = BddBackend(manager, {"x": 16, "y": 16})
        circuit = CircuitBuilder(backend)
        bits = circuit.lower(expr)
        # Check by restricting: build the BDD of expr == const.
        expected = evaluate(expr, {"x": a, "y": b})
        const_bits = circuit.const_word(16, expected)
        equal = circuit.eq_bit(bits, const_bits)
        # The equality BDD must be satisfiable with x=a, y=b.
        path = manager.satisfying_path(equal)
        assert path is not None

    def test_adder_bdd_is_polynomial_size(self):
        """Interleaved variable order keeps adders polynomial (roughly
        quadratic over all 32 output bits) — the whole point of the BDD
        engine.  A bad order would blow past this bound exponentially."""
        x = ir.sym(32, "x")
        y = ir.sym(32, "y")
        manager = BddManager()
        backend = BddBackend(manager, {"x": 32, "y": 32})
        circuit = CircuitBuilder(backend)
        circuit.lower(ir.add(x, y))
        assert manager.node_count < 20_000
