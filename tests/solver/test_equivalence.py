"""The equivalence portfolio: syntactic / random / BDD / SAT paths."""

from hypothesis import given, settings, strategies as st

from repro import ir
from repro.ir.evaluate import evaluate
from repro.solver import Verdict, check_equal, find_counterexample, prove_equal


X = ir.sym(32, "x")
Y = ir.sym(32, "y")


class TestKnownEquivalences:
    def test_lea_identity(self):
        arm = ir.sub(ir.add(X, Y), ir.bv(32, 1))
        x86 = ir.add(ir.add(X, Y), ir.bv(32, 0xFFFFFFFF))
        assert prove_equal(arm, x86)

    def test_xor_via_or_minus_and(self):
        assert prove_equal(
            ir.xor(X, Y), ir.sub(ir.or_(X, Y), ir.and_(X, Y))
        )

    def test_demorgan(self):
        assert prove_equal(
            ir.not_(ir.and_(X, Y)), ir.or_(ir.not_(X), ir.not_(Y))
        )

    def test_mod2_is_and1(self):
        assert prove_equal(ir.and_(X, ir.bv(32, 1)), ir.urem(X, ir.bv(32, 2)))

    def test_average_identity(self):
        # (x & y) + ((x ^ y) >> 1) == overflow-free average
        lhs = ir.add(ir.and_(X, Y), ir.lshr(ir.xor(X, Y), ir.bv(32, 1)))
        rhs = ir.add(
            ir.lshr(X, ir.bv(32, 1)),
            ir.add(ir.lshr(Y, ir.bv(32, 1)),
                   ir.and_(ir.and_(X, Y), ir.bv(32, 1))),
        )
        assert prove_equal(lhs, rhs)


class TestKnownInequivalences:
    def test_off_by_one(self):
        result = check_equal(ir.add(X, ir.bv(32, 1)), ir.add(X, ir.bv(32, 2)))
        assert result.verdict is Verdict.NOT_EQUAL
        assert result.counterexample is not None

    def test_sdiv_is_not_ashr(self):
        # Rounds differently for negative odd values.
        assert not prove_equal(
            ir.sdiv(X, ir.bv(32, 2)), ir.ashr(X, ir.bv(32, 1))
        )

    def test_sub_nz_is_not_slt(self):
        # The classic N-flag-vs-signed-less-than overflow trap.
        n_flag = ir.extract(31, 31, ir.sub(X, Y))
        assert not prove_equal(
            n_flag, ir.ite(ir.slt(X, Y), ir.bv(1, 1), ir.bv(1, 0))
        )

    def test_counterexample_is_genuine(self):
        a = ir.lshr(ir.add(X, Y), ir.bv(32, 1))  # drops the carry
        b = ir.add(ir.and_(X, Y), ir.lshr(ir.xor(X, Y), ir.bv(32, 1)))
        env = find_counterexample(a, b)
        assert env is not None
        assert evaluate(a, env) != evaluate(b, env)


class TestWidthHandling:
    def test_width_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            check_equal(ir.bv(8, 1), ir.bv(32, 1))

    def test_narrow_widths_use_sat_fallback(self):
        a8 = ir.sym(8, "a")
        b8 = ir.sym(8, "b")
        result = check_equal(
            ir.mul(a8, b8), ir.mul(b8, a8), bdd_budget=16
        )
        assert result.verdict is Verdict.EQUAL

    def test_budget_exhaustion_reports_unknown(self):
        z = ir.sym(32, "z")
        hard = ir.mul(ir.mul(X, Y), z)
        hard2 = ir.mul(X, ir.mul(Y, z))
        result = check_equal(hard, hard2, bdd_budget=5_000)
        assert result.verdict in (Verdict.EQUAL, Verdict.UNKNOWN)


@settings(max_examples=30, deadline=None)
@given(
    c1=st.integers(0, 0xFFFFFFFF),
    c2=st.integers(0, 0xFFFFFFFF),
)
def test_linear_forms_always_decided(c1, c2):
    """add/sub/const combinations never need the slow engines."""
    lhs = ir.add(ir.sub(X, ir.bv(32, c1)), ir.bv(32, c2))
    rhs = ir.add(X, ir.bv(32, (c2 - c1) & 0xFFFFFFFF))
    result = check_equal(lhs, rhs)
    assert result.verdict is Verdict.EQUAL
    assert result.method == "syntactic"


@settings(max_examples=20, deadline=None)
@given(shift=st.integers(1, 4), delta=st.integers(0, 255))
def test_scaled_index_addressing_equivalence(shift, delta):
    """ARM shifted-index vs x86 SIB scaling, arbitrary displacement."""
    arm = ir.add(ir.add(Y, ir.shl(X, ir.bv(32, shift))), ir.bv(32, delta))
    x86 = ir.add(ir.add(ir.mul(X, ir.bv(32, 1 << shift)), Y),
                 ir.bv(32, delta))
    assert prove_equal(arm, x86)
