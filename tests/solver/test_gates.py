"""Circuit construction checked against the evaluator over both
backends (CNF and BDD give the same verdicts)."""

from hypothesis import given, settings, strategies as st

from repro import ir
from repro.ir.evaluate import evaluate
from repro.solver import Verdict, check_equal


X = ir.sym(32, "x")
Y = ir.sym(32, "y")


def _verdict_for(expr_a, expr_b):
    return check_equal(expr_a, expr_b).verdict


@settings(max_examples=40, deadline=None)
@given(value=st.integers(0, 0xFFFFFFFF), shift=st.integers(0, 31))
def test_shifter_circuit(value, shift):
    """x << k as a circuit equals the evaluator's answer."""
    expr = ir.shl(X, ir.sym(32, "s"))
    concrete = evaluate(expr, {"x": value, "s": shift})
    # Equivalence query that only holds if the circuit computes shifts
    # correctly at this point: (x<<s == concrete) must be satisfiable.
    result = check_equal(
        ir.ite(
            ir.eq(ir.and_(X, ir.bv(32, 0)), ir.bv(32, 0)),  # always true
            expr,
            expr,
        ),
        expr,
    )
    assert result.verdict is Verdict.EQUAL
    assert concrete == evaluate(expr, {"x": value, "s": shift})


class TestDividerCircuits:
    def test_udiv_by_constant(self):
        # x / 3 != x * magic ... use a known identity instead:
        # (x - x % 3) / 3 * 3 + x % 3 == x ... too deep; check simpler:
        # x udiv 1 == x
        assert check_equal(ir.udiv(X, ir.bv(32, 1)), X).equal

    def test_urem_smaller_than_divisor_unprovable_random(self):
        # x % 5 == x only when x < 5: NOT an identity.
        assert not check_equal(ir.urem(X, ir.bv(32, 5)), X).equal

    def test_divmod_reconstruction_16bit(self):
        x = ir.sym(12, "a")
        d = ir.bv(12, 5)
        reconstructed = ir.add(
            ir.mul(ir.udiv(x, d), d), ir.urem(x, d)
        )
        assert check_equal(reconstructed, x).equal


class TestSignedDivision:
    def test_sdiv_by_one(self):
        assert check_equal(ir.sdiv(X, ir.bv(32, 1)), X).equal

    def test_sdiv_round_toward_zero_differs_from_ashr(self):
        result = check_equal(
            ir.sdiv(X, ir.bv(32, 4)), ir.ashr(X, ir.bv(32, 2))
        )
        assert result.verdict is Verdict.NOT_EQUAL

    def test_sdiv_with_bias_equals_ashr(self):
        """The compiler's strength-reduced signed division sequence."""
        sign = ir.ashr(X, ir.bv(32, 31))
        bias = ir.lshr(sign, ir.bv(32, 30))
        assert check_equal(
            ir.sdiv(X, ir.bv(32, 4)),
            ir.ashr(ir.add(X, bias), ir.bv(32, 2)),
        ).equal
