"""The CDCL SAT solver on hand-built and random formulas."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.sat import SatResult, Solver


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() is SatResult.SAT

    def test_unit_clause(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve() is SatResult.SAT
        assert solver.value(1) is True

    def test_contradicting_units(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SatResult.UNSAT

    def test_empty_clause_is_unsat(self):
        solver = Solver()
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    def test_tautology_ignored(self):
        solver = Solver()
        solver.add_clause([1, -1])
        assert solver.solve() is SatResult.SAT

    def test_simple_implication_chain(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() is SatResult.SAT
        assert solver.value(3) is True

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(list(clause))
        assert solver.solve() is SatResult.SAT
        for clause in clauses:
            assert any(solver.value(lit) for lit in clause)


class TestPigeonhole:
    """PHP(n+1, n) is classically UNSAT and exercises conflict analysis."""

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat(self, holes):
        pigeons = holes + 1
        solver = Solver()

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is SatResult.UNSAT


def _brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for assignment in range(1 << num_vars):
        def value(lit: int) -> bool:
            bit = bool(assignment >> (abs(lit) - 1) & 1)
            return bit if lit > 0 else not bit

        if all(any(value(lit) for lit in clause) for clause in clauses):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_random_3sat_matches_brute_force(data):
    num_vars = data.draw(st.integers(3, 8))
    num_clauses = data.draw(st.integers(1, 24))
    rng = random.Random(data.draw(st.integers(0, 2**31)))
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(width)
        ]
        clauses.append(clause)
    solver = Solver()
    for clause in clauses:
        solver.add_clause(list(clause))
    result = solver.solve()
    expected = _brute_force(num_vars, clauses)
    assert (result is SatResult.SAT) == expected
    if result is SatResult.SAT:
        for clause in clauses:
            assert any(solver.value(lit) for lit in clause)
