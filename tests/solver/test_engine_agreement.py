"""The BDD and CNF/SAT engines must agree on every query.

Runs random small-width expressions through both circuit backends and
compares verdicts with brute-force evaluation as referee.
"""

from hypothesis import given, settings, strategies as st

from repro import ir
from repro.ir.evaluate import evaluate
from repro.solver.bdd import BddBackend, BddManager
from repro.solver.bitblast import BitBlaster
from repro.solver.gates import CircuitBuilder
from repro.solver.sat import SatResult, Solver

WIDTH = 5


def _expr(draw, depth):
    choice = draw(st.integers(0, 8 if depth > 0 else 1))
    if choice == 0:
        return ir.bv(WIDTH, draw(st.integers(0, (1 << WIDTH) - 1)))
    if choice == 1:
        return ir.sym(WIDTH, draw(st.sampled_from(["a", "b"])))
    x = _expr(draw, depth - 1)
    y = _expr(draw, depth - 1)
    ops = [ir.add, ir.sub, ir.mul, ir.and_, ir.or_, ir.xor, ir.udiv]
    if choice - 2 < len(ops):
        return ops[choice - 2](x, y)
    return ir.shl(x, ir.bv(WIDTH, draw(st.integers(0, WIDTH))))


@st.composite
def small_expr_pair(draw):
    return _expr(draw, 3), _expr(draw, 3)


def _brute_equal(a, b) -> bool:
    for va in range(1 << WIDTH):
        for vb in range(1 << WIDTH):
            env = {"a": va, "b": vb}
            if evaluate(a, env) != evaluate(b, env):
                return False
    return True


def _bdd_equal(a, b) -> bool:
    manager = BddManager()
    backend = BddBackend(manager, {"a": WIDTH, "b": WIDTH})
    circuit = CircuitBuilder(backend)
    bits_a = circuit.lower(a)
    bits_b = circuit.lower(b)
    return all(
        manager.xor(x, y) == manager.FALSE for x, y in zip(bits_a, bits_b)
    )


def _sat_equal(a, b) -> bool:
    solver = Solver()
    blaster = BitBlaster(solver)
    bits_a = blaster.blast(a)
    bits_b = blaster.blast(b)
    solver.add_clause(
        [blaster.xor_bit(x, y) for x, y in zip(bits_a, bits_b)]
    )
    return solver.solve() is SatResult.UNSAT


@settings(max_examples=40, deadline=None)
@given(pair=small_expr_pair())
def test_engines_agree_with_brute_force(pair):
    a, b = pair
    truth = _brute_equal(a, b)
    assert _bdd_equal(a, b) == truth
    assert _sat_equal(a, b) == truth
