"""Shared chaos fixtures: a small corpus, its clean ground truth, and
digest classification helpers for deterministic fault targeting."""

import pytest

from repro.benchsuite import BENCHMARK_NAMES, build_learning_pair
from repro.learning.cache import VerificationCache
from repro.learning.pipeline import learn_corpus

#: Three benchmarks keep the chaos suite fast while still exercising
#: cross-benchmark dedup and multi-chunk pool scheduling.
CHAOS_BENCHMARKS = BENCHMARK_NAMES[:3]


@pytest.fixture(scope="session")
def chaos_builds():
    return {name: build_learning_pair(name) for name in CHAOS_BENCHMARKS}


@pytest.fixture(scope="session")
def clean_ground_truth(chaos_builds):
    """The uninterrupted sequential run: outcomes plus the verdict
    cache, whose digests chaos tests target for injection."""
    cache = VerificationCache()
    outcomes = learn_corpus(chaos_builds, cache=cache)
    return outcomes, cache


def failing_digests(cache: VerificationCache, count: int) -> list[str]:
    """Digests of candidates that did NOT yield a rule in the clean
    run.  Injecting crashes/hangs into these keeps the chaotic run's
    rule set identical to the clean one (the failure is merely
    reclassified as EC/TO), which is what the equivalence assertions
    rely on."""
    chosen = []
    for digest in cache.digests():
        outcome = cache.peek(digest)
        if outcome is not None and outcome.rule is None:
            chosen.append(digest)
            if len(chosen) == count:
                break
    if len(chosen) < count:
        pytest.skip(f"corpus has only {len(chosen)} failing candidates")
    return chosen


def rule_strings(outcomes) -> dict[str, list[str]]:
    return {
        name: [str(rule) for rule in outcome.rules]
        for name, outcome in outcomes.items()
    }
