"""Chaos tests for the crash-isolated parallel scheduler.

The acceptance bar: under injected worker crashes, in-worker
exceptions and hangs, parallel learning still completes, quarantines
exactly the injected candidates as EC/TO, and produces the same rule
set as the clean sequential run.
"""

import pytest

from repro.faults.deadline import DeadlineBudget
from repro.faults.plan import FaultPlan, fault_plan_scope
from repro.learning.parallel import (
    ResolutionGapError,
    _make_replay_resolver,
    learn_corpus_parallel,
)
from repro.learning.pipeline import learn_corpus
from repro.learning.verify import VerifyFailure
from repro.obs.metrics import MetricsRegistry, set_metrics, get_metrics

from .conftest import failing_digests, rule_strings

#: Small chunks force multi-chunk scheduling even on this tiny corpus.
CHUNK = 4


@pytest.fixture(autouse=True)
def fresh_metrics():
    set_metrics(MetricsRegistry())
    yield
    set_metrics(None)


def _total(outcomes, field):
    return sum(getattr(o.report, field) for o in outcomes.values())


class TestCrashIsolation:
    def test_worker_crash_is_quarantined_as_ec(self, chaos_builds,
                                               clean_ground_truth):
        clean, cache = clean_ground_truth
        poison = failing_digests(cache, 1)
        plan = FaultPlan(crash_digests=frozenset(poison))
        with fault_plan_scope(plan):
            chaotic = learn_corpus_parallel(chaos_builds, jobs=2,
                                            chunk_size=CHUNK,
                                            backoff_seconds=0.0)
        # Same rules as the clean run: the poison candidate was a
        # failing one, so only its failure classification moved to EC.
        assert rule_strings(chaotic) == rule_strings(clean)
        assert _total(chaotic, "verify_ec") == 1
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("learning.pool.restarts", 0) >= 1
        assert counters.get("learning.pool.quarantined", 0) == 1

    def test_injected_exception_is_retried_then_quarantined(
            self, chaos_builds, clean_ground_truth):
        clean, cache = clean_ground_truth
        bad = failing_digests(cache, 1)
        plan = FaultPlan(raise_digests=frozenset(bad))
        with fault_plan_scope(plan):
            chaotic = learn_corpus_parallel(chaos_builds, jobs=2,
                                            chunk_size=CHUNK,
                                            backoff_seconds=0.0)
        assert rule_strings(chaotic) == rule_strings(clean)
        assert _total(chaotic, "verify_ec") == 1
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("learning.pool.retries", 0) >= 1
        # A deterministic failure survives its retries and is bisected
        # down to the single poison candidate (pool never breaks).
        assert counters.get("learning.pool.bisections", 0) >= 1
        assert counters.get("learning.pool.restarts", 0) == 0

    def test_injected_hang_times_out_as_to(self, chaos_builds,
                                           clean_ground_truth):
        clean, cache = clean_ground_truth
        hung = failing_digests(cache, 1)
        plan = FaultPlan(hang_digests=frozenset(hung))
        with fault_plan_scope(plan):
            chaotic = learn_corpus_parallel(
                chaos_builds, jobs=2, chunk_size=CHUNK,
                budget=DeadlineBudget(max_steps=100_000),
                backoff_seconds=0.0,
            )
        assert rule_strings(chaotic) == rule_strings(clean)
        assert _total(chaotic, "verify_to") == 1
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("learning.worker.timeouts", 0) >= 1

    def test_combined_chaos_converges(self, chaos_builds,
                                      clean_ground_truth):
        clean, cache = clean_ground_truth
        victims = failing_digests(cache, 3)
        plan = FaultPlan(
            crash_digests=frozenset(victims[:1]),
            raise_digests=frozenset(victims[1:2]),
            hang_digests=frozenset(victims[2:3]),
        )
        with fault_plan_scope(plan):
            chaotic = learn_corpus_parallel(
                chaos_builds, jobs=2, chunk_size=CHUNK,
                budget=DeadlineBudget(max_steps=100_000),
                backoff_seconds=0.0,
            )
        assert rule_strings(chaotic) == rule_strings(clean)
        assert _total(chaotic, "verify_ec") == 2
        assert _total(chaotic, "verify_to") == 1

    def test_no_faults_matches_sequential_exactly(self, chaos_builds):
        # Cacheless on both sides: signatures must match field by field.
        sequential = learn_corpus(chaos_builds)
        parallel = learn_corpus_parallel(chaos_builds, jobs=2,
                                         chunk_size=CHUNK)
        assert rule_strings(parallel) == rule_strings(sequential)
        for name in chaos_builds:
            assert parallel[name].report.count_signature() == \
                sequential[name].report.count_signature()


class TestEcOutcomesStayOutOfTheCache:
    def test_quarantined_verdicts_are_not_persisted(self, chaos_builds,
                                                    clean_ground_truth,
                                                    tmp_path):
        from repro.learning.cache import VerificationCache

        clean, cache = clean_ground_truth
        poison = failing_digests(cache, 1)
        chaos_cache = VerificationCache.at_dir(tmp_path)
        plan = FaultPlan(crash_digests=frozenset(poison))
        with fault_plan_scope(plan):
            learn_corpus_parallel(chaos_builds, jobs=2, chunk_size=CHUNK,
                                  cache=chaos_cache,
                                  backoff_seconds=0.0)
        # The EC verdict is a property of this run, not the candidate:
        # a fresh run must re-verify it (and succeed).
        reloaded = VerificationCache.at_dir(tmp_path)
        assert poison[0] not in reloaded
        retried = learn_corpus(chaos_builds, cache=reloaded)
        assert rule_strings(retried) == rule_strings(clean)
        assert _total(retried, "verify_ec") == 0


class TestReplayResolver:
    def test_resolution_gap_is_diagnostic(self, chaos_builds):
        from repro.learning.direction import ARM_TO_X86
        from repro.learning.pipeline import (
            LearningReport,
            _extract_stage,
            _paramize_stage,
        )

        name = next(iter(chaos_builds))
        guest, host = chaos_builds[name]
        report = LearningReport(benchmark=name)
        pairs = _extract_stage(guest, host, ARM_TO_X86, report)
        candidates = _paramize_stage(pairs, ARM_TO_X86, report)
        assert candidates
        resolver = _make_replay_resolver({}, name)
        with pytest.raises(ResolutionGapError) as excinfo:
            resolver(candidates[0])
        message = str(excinfo.value)
        assert name in message
        assert candidates[0].digest[:16] in message
