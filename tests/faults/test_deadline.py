"""Deadline mechanics and the TO (timeout) outcome."""

import time

import pytest

from repro.faults.deadline import (
    Deadline,
    DeadlineBudget,
    DeadlineExceeded,
    active_deadline,
    deadline_scope,
    tick,
)
from repro.faults.plan import simulated_hang
from repro.learning.canon import resolve_candidate
from repro.learning.direction import ARM_TO_X86
from repro.learning.pipeline import (
    LearningReport,
    _extract_stage,
    _paramize_stage,
)
from repro.learning.verify import VerifyFailure

from .conftest import CHAOS_BENCHMARKS


class TestDeadline:
    def test_step_budget_raises_after_max_steps(self):
        deadline = DeadlineBudget(max_steps=3).start()
        deadline.tick()
        deadline.tick()
        deadline.tick()
        with pytest.raises(DeadlineExceeded):
            deadline.tick()

    def test_wall_clock_budget(self):
        deadline = Deadline(DeadlineBudget(max_seconds=0.01))
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded):
            deadline.tick()

    def test_unbounded_budget(self):
        assert not DeadlineBudget().bounded
        assert DeadlineBudget(max_steps=1).bounded
        assert DeadlineBudget(max_seconds=1.0).bounded

    def test_module_tick_is_noop_without_active_deadline(self):
        assert active_deadline() is None
        tick()  # must not raise

    def test_scope_installs_and_restores(self):
        outer = Deadline(DeadlineBudget(max_steps=100))
        inner = Deadline(DeadlineBudget(max_steps=5))
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_simulated_hang_without_deadline_fails_fast(self):
        with pytest.raises(RuntimeError, match="no bounded deadline"):
            simulated_hang()

    def test_simulated_hang_exhausts_bounded_deadline(self):
        with deadline_scope(Deadline(DeadlineBudget(max_steps=50))):
            with pytest.raises(DeadlineExceeded):
                simulated_hang()


class TestTimeoutOutcome:
    def test_zero_step_budget_times_out_real_candidates(self, chaos_builds):
        guest, host = chaos_builds[CHAOS_BENCHMARKS[0]]
        report = LearningReport(benchmark="t")
        pairs = _extract_stage(guest, host, ARM_TO_X86, report)
        candidates = _paramize_stage(pairs, ARM_TO_X86, report)
        assert candidates
        budget = DeadlineBudget(max_steps=0)
        outcomes = [
            resolve_candidate(c.context, c.mappings, budget=budget)
            for c in candidates
        ]
        timeouts = [o for o in outcomes
                    if o.failure is VerifyFailure.TIMEOUT]
        # Any candidate whose verification consults the solver at all
        # must time out under a zero budget.
        assert timeouts
        for outcome in timeouts:
            assert outcome.rule is None

    def test_generous_budget_changes_nothing(self, chaos_builds):
        guest, host = chaos_builds[CHAOS_BENCHMARKS[0]]
        report = LearningReport(benchmark="t")
        pairs = _extract_stage(guest, host, ARM_TO_X86, report)
        candidates = _paramize_stage(pairs, ARM_TO_X86, report)
        budget = DeadlineBudget(max_steps=10_000_000)
        for candidate in candidates[:5]:
            bounded = resolve_candidate(candidate.context,
                                        candidate.mappings, budget=budget)
            unbounded = resolve_candidate(candidate.context,
                                          candidate.mappings)
            assert (bounded.rule is None) == (unbounded.rule is None)
            assert bounded.failure == unbounded.failure
            assert bounded.calls == unbounded.calls
