"""The differential execution guard: corrupt-rule quarantine and
baseline-correct self-healing."""

import pytest

from repro.dbt.engine import DBTEngine, DBTError
from repro.dbt.guard import GuardPolicy
from repro.faults.plan import corrupt_rule
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source

TRAINER = """
int scratch[32];
int work(int *p, int n, int bias) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    int v = p[i];
    acc = acc + v - 1;
    acc = acc ^ (v << 2);
    if (acc > 10000) {
      acc -= 10000;
    }
    p[i] = acc & 255;
    i += 1;
  }
  return acc + bias;
}
int main(void) {
  int i = 0;
  while (i < 32) {
    scratch[i] = i * 13 + 7;
    i += 1;
  }
  return work(scratch, 32, 5);
}
"""


@pytest.fixture(scope="module")
def guest():
    return compile_source(TRAINER, "arm", 2, "llvm")


@pytest.fixture(scope="module")
def learned_rules(guest):
    host = compile_source(TRAINER, "x86", 2, "llvm")
    outcome = learn_rules(guest, host, benchmark="trainer")
    assert outcome.rules, "trainer must yield rules"
    return outcome.rules


@pytest.fixture(scope="module")
def baseline(guest):
    return DBTEngine(guest, "qemu").run().return_value


class TestGuardPolicy:
    def test_check_first(self):
        policy = GuardPolicy(check_first=2)
        assert policy.should_check(0)
        assert policy.should_check(1)
        assert not policy.should_check(2)
        assert not policy.should_check(500)

    def test_check_interval(self):
        policy = GuardPolicy(check_first=1, check_interval=10)
        assert policy.should_check(0)
        assert not policy.should_check(5)
        assert policy.should_check(9)   # the 10th dispatch
        assert policy.should_check(19)

    def test_guard_requires_rules_mode(self, guest):
        with pytest.raises(DBTError, match="guard"):
            DBTEngine(guest, "qemu", guard=GuardPolicy())


class TestGuardCleanRules:
    def test_verified_rules_pass_the_guard(self, guest, learned_rules,
                                           baseline):
        store = RuleStore.from_rules(learned_rules)
        engine = DBTEngine(guest, "rules", store, guard=GuardPolicy())
        result = engine.run()
        assert result.return_value == baseline
        assert engine.guard_stats.checks > 0
        assert engine.guard_stats.divergences == 0
        assert not engine.quarantined_rules
        # The guard must not perturb the dynamic accounting.
        unguarded = DBTEngine(
            guest, "rules", RuleStore.from_rules(learned_rules)
        ).run()
        assert result.stats.count_fields() == unguarded.stats.count_fields()


class TestGuardQuarantine:
    def _corrupted_store(self, learned_rules):
        """All learned rules, with one applied rule's host template
        flipped (the injection the guard exists to catch)."""
        for index, rule in enumerate(learned_rules):
            try:
                bad = corrupt_rule(rule)
            except ValueError:
                continue
            rules = list(learned_rules)
            rules[index] = bad
            return RuleStore.from_rules(rules), bad
        pytest.skip("no corruptible rule learned")

    def test_corrupt_rule_is_quarantined_and_result_is_baseline(
            self, guest, learned_rules, baseline):
        store, bad = self._corrupted_store(learned_rules)
        engine = DBTEngine(guest, "rules", store, guard=GuardPolicy())
        result = engine.run()
        assert result.return_value == baseline
        if bad in engine.quarantined_rules:
            # The corrupted rule was actually applied somewhere; the
            # guard must have caught and removed it.
            assert engine.guard_stats.divergences >= 1
            assert engine.guard_stats.retranslations >= 1
            assert store.remove(bad) is False  # already uninstalled
        else:
            # The corruption kept the rule from matching any block:
            # nothing to catch, nothing quarantined.
            assert engine.guard_stats.divergences == 0

    def test_without_guard_corrupt_rule_changes_behaviour(
            self, guest, learned_rules, baseline):
        """The failure mode the guard defends against is real: the same
        corrupted store, unguarded, miscomputes (when the bad rule is
        exercised)."""
        store, bad = self._corrupted_store(learned_rules)
        unguarded = DBTEngine(guest, "rules", store).run()
        guarded_store, _ = self._corrupted_store(learned_rules)
        engine = DBTEngine(guest, "rules", guarded_store,
                           guard=GuardPolicy())
        guarded = engine.run()
        assert guarded.return_value == baseline
        if unguarded.return_value != baseline:
            # Corruption was live: only the guard restored correctness.
            assert engine.guard_stats.divergences >= 1

    def test_quarantine_survives_across_runs(self, guest, learned_rules,
                                             baseline):
        store, bad = self._corrupted_store(learned_rules)
        engine = DBTEngine(guest, "rules", store, guard=GuardPolicy())
        first = engine.run()
        divergences = engine.guard_stats.divergences
        second = engine.run()
        assert first.return_value == baseline
        assert second.return_value == baseline
        # The rule is gone from the store, its blocks retranslated:
        # the second run must not re-diverge.
        assert engine.guard_stats.divergences == divergences
