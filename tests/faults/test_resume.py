"""Checkpoint/resume: the outcome journal and kill-resume equivalence."""

import json

import pytest

from repro.faults.plan import FaultPlan, InjectedAbort, fault_plan_scope
from repro.learning.cache import SEMANTICS_VERSION
from repro.learning.canon import CandidateOutcome
from repro.learning.journal import OutcomeJournal
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import learn_corpus
from repro.learning.verify import VerifyFailure

from .conftest import rule_strings


class TestJournalMechanics:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OutcomeJournal(path)
        journal.record("d1", CandidateOutcome(
            failure=VerifyFailure.REGISTERS, calls=3))
        journal.record("d2", CandidateOutcome(
            failure=VerifyFailure.TIMEOUT, calls=0))
        journal.close()

        reloaded = OutcomeJournal(path)
        assert reloaded.recovered == 2
        assert "d1" in reloaded
        assert reloaded.get("d1").failure is VerifyFailure.REGISTERS
        assert reloaded.get("d1").calls == 3
        assert reloaded.get("d2").failure is VerifyFailure.TIMEOUT

    def test_record_is_idempotent(self, tmp_path):
        journal = OutcomeJournal(tmp_path / "j.jsonl")
        journal.record("d", CandidateOutcome(calls=1))
        journal.record("d", CandidateOutcome(calls=99))
        journal.close()
        reloaded = OutcomeJournal(journal.path)
        assert len(reloaded) == 1
        assert reloaded.get("d").calls == 1

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OutcomeJournal(path)
        journal.record("ok", CandidateOutcome(calls=2))
        journal.close()
        with open(path, "a") as fp:
            fp.write('{"digest": "torn", "outco')  # crash mid-append

        reloaded = OutcomeJournal(path)
        assert reloaded.recovered == 1
        assert reloaded.skipped == 1
        assert "ok" in reloaded
        assert "torn" not in reloaded

    def test_foreign_header_discards_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as fp:
            fp.write(json.dumps({"format": "something-else"}) + "\n")
            fp.write(json.dumps({"digest": "d", "outcome": {}}) + "\n")
        journal = OutcomeJournal(path)
        assert len(journal) == 0
        assert not path.exists()

    def test_stale_semantics_discards_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OutcomeJournal(path,
                                 semantics_version=SEMANTICS_VERSION + 1)
        journal.record("d", CandidateOutcome(calls=1))
        journal.close()
        reloaded = OutcomeJournal(path)  # current semantics
        assert len(reloaded) == 0

    def test_clear_removes_file(self, tmp_path):
        journal = OutcomeJournal(tmp_path / "j.jsonl")
        journal.record("d", CandidateOutcome(calls=1))
        journal.clear()
        assert not journal.path.exists()
        assert len(journal) == 0


class TestKillResumeEquivalence:
    def test_aborted_run_resumes_to_identical_results(self, chaos_builds,
                                                      tmp_path):
        sequential = learn_corpus(chaos_builds)

        journal = OutcomeJournal.at_dir(tmp_path)
        plan = FaultPlan(abort_after_chunks=1)
        with fault_plan_scope(plan):
            with pytest.raises(InjectedAbort):
                learn_corpus_parallel(chaos_builds, jobs=2, chunk_size=4,
                                      journal=journal)
        journal.close()
        settled_before_kill = len(journal)
        assert settled_before_kill > 0

        resumed_journal = OutcomeJournal.at_dir(tmp_path)
        assert resumed_journal.recovered == settled_before_kill
        resumed = learn_corpus_parallel(chaos_builds, jobs=2, chunk_size=4,
                                        journal=resumed_journal)

        # The resumed run is indistinguishable from an uninterrupted
        # one: same rules, same Table 1 counts, same call accounting.
        assert rule_strings(resumed) == rule_strings(sequential)
        for name in chaos_builds:
            assert resumed[name].report.count_signature() == \
                sequential[name].report.count_signature()

    def test_sequential_resume_skips_settled_candidates(self, chaos_builds,
                                                        tmp_path):
        name = next(iter(chaos_builds))
        builds = {name: chaos_builds[name]}
        full_journal = OutcomeJournal.at_dir(tmp_path)
        first = learn_corpus(builds, journal=full_journal)
        full_journal.close()

        # A second run over the same journal replays every verdict:
        # identical report, no new journal growth.
        resumed_journal = OutcomeJournal.at_dir(tmp_path)
        assert resumed_journal.recovered == len(full_journal)
        second = learn_corpus(builds, journal=resumed_journal)
        assert rule_strings(second) == rule_strings(first)
        assert second[name].report.count_signature() == \
            first[name].report.count_signature()
        assert len(resumed_journal) == resumed_journal.recovered
