"""x86 AT&T parser + printer round trips."""

import pytest

from repro.host_x86 import parse_instruction, parse_program
from repro.host_x86.printer import format_instruction
from repro.isa.operands import Imm, Label, Mem, Reg


class TestOperands:
    def test_reg_to_reg(self):
        instr = parse_instruction("movl %eax, %edx")
        assert instr.operands == (Reg("eax"), Reg("edx"))

    def test_immediate(self):
        assert parse_instruction("addl $5, %eax").operands[0] == Imm(5)
        assert parse_instruction("movl $-1, %eax").operands[0] == Imm(-1)
        assert parse_instruction("movl $0x70f0000, %ecx").operands[0] == \
            Imm(0x70F0000)

    def test_full_sib(self):
        instr = parse_instruction("movl -0x4(%ecx,%eax,4), %eax")
        assert instr.operands[0] == Mem(Reg("ecx"), Reg("eax"), 4, -4)

    def test_bare_base(self):
        assert parse_instruction("movl (%edi), %eax").operands[0] == \
            Mem(base=Reg("edi"))

    def test_disp_only(self):
        mem = parse_instruction("movl 0x7f000000(), %eax").operands[0]
        assert mem == Mem(base=None, disp=0x7F000000)

    def test_index_only_scaled(self):
        mem = parse_instruction("movl 0x100000(,%eax,4), %edx").operands[0]
        assert mem == Mem(base=None, index=Reg("eax"), scale=4,
                          disp=0x100000)

    def test_low8(self):
        instr = parse_instruction("movzbl %al, %eax")
        assert instr.operands[0] == Reg("al")

    def test_jump_and_call(self):
        assert parse_instruction("jne .L1").operands == (Label(".L1"),)
        assert parse_instruction("call func").operands == (Label("func"),)

    def test_setcc(self):
        instr = parse_instruction("setae %dl")
        assert instr.mnemonic == "setae"
        assert instr.operands == (Reg("dl"),)

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            parse_instruction("vaddps %xmm0, %xmm1")

    def test_annotations(self):
        instr = parse_instruction("movl (%esi), %eax  # line=9 var=buf")
        assert instr.line == 9
        assert instr.operands[0].var == "buf"


class TestProgram:
    def test_labels(self):
        program = parse_program("""
        f:
            movl $0, %eax
        .loop:
            addl $1, %eax
            cmpl $10, %eax
            jl .loop
            ret
        """)
        assert program.labels == {"f": 0, ".loop": 1}
        assert len(program.instructions) == 5


class TestRoundTrip:
    CASES = [
        "movl %eax, %edx",
        "addl $5, %eax",
        "leal -0x4(%ecx,%eax,4), %eax",
        "movl (%edi), %eax",
        "movzbl %al, %eax",
        "movb %dl, (%esi)",
        "cmpl %ecx, %edx",
        "jne .L1",
        "sete %al",
        "cmovge %ecx, %eax",
        "shll $3, %edx",
        "sarl %cl, %edx",
        "idivl %ebx",
        "cltd",
        "ret",
        "pushl %ebp",
        "popl %ebp",
        "negl %eax",
        "testl %eax, %eax",
        "incl %esi",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        instr = parse_instruction(text)
        assert parse_instruction(format_instruction(instr)) == instr
