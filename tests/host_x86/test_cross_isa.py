"""Cross-ISA semantic agreements the learner's verification relies on."""

from hypothesis import given, strategies as st

from repro.dbt.machine import ConcreteState
from repro.guest_arm import execute as execute_arm
from repro.guest_arm import parse_instruction as parse_arm
from repro.guest_arm.semantics import conditions as arm_conditions
from repro.host_x86 import execute as execute_x86
from repro.host_x86 import parse_instruction as parse_x86
from repro.host_x86.semantics import conditions as x86_conditions
from repro.isa.alu import ConcreteALU

ALU = ConcreteALU()

# ARM condition <-> x86 condition correspondence after a compare.
_COND_PAIRS = [
    ("eq", "e"), ("ne", "ne"), ("lt", "l"), ("ge", "ge"),
    ("gt", "g"), ("le", "le"), ("lo", "b"), ("hs", "ae"),
    ("hi", "a"), ("ls", "be"), ("mi", "s"), ("pl", "ns"),
]


@given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
def test_compare_conditions_agree(a, b):
    """After cmp / cmpl on the same operands, every ARM condition
    evaluates identically to its x86 counterpart — even though the C/CF
    polarity differs (the paper's Section 5 subtlety)."""
    arm_state = ConcreteState()
    arm_state.set_reg("r0", a)
    arm_state.set_reg("r1", b)
    execute_arm(parse_arm("cmp r0, r1"), arm_state, ALU)

    x86_state = ConcreteState()
    x86_state.set_reg("eax", a)
    x86_state.set_reg("ecx", b)
    execute_x86(parse_x86("cmpl %ecx, %eax"), x86_state, ALU)

    for arm_cond, x86_cond in _COND_PAIRS:
        assert arm_conditions(arm_cond, arm_state, ALU) == \
            x86_conditions(x86_cond, x86_state, ALU), (arm_cond, a, b)
    # ... and the carry flags themselves are INVERSES after subtraction.
    assert arm_state.get_flag("C") == 1 - x86_state.get_flag("CF")


@given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
def test_add_sub_agree(a, b):
    """add/sub produce identical register results on both ISAs."""
    arm_state = ConcreteState()
    arm_state.set_reg("r1", a)
    arm_state.set_reg("r2", b)
    execute_arm(parse_arm("add r0, r1, r2"), arm_state, ALU)
    execute_arm(parse_arm("sub r3, r1, r2"), arm_state, ALU)

    x86_state = ConcreteState()
    x86_state.set_reg("eax", a)
    execute_x86(parse_x86(f"addl ${b}, %eax"), x86_state, ALU)
    assert arm_state.get_reg("r0") == x86_state.get_reg("eax")

    x86_state.set_reg("edx", a)
    execute_x86(parse_x86(f"subl ${b}, %edx"), x86_state, ALU)
    assert arm_state.get_reg("r3") == x86_state.get_reg("edx")


@given(a=st.integers(0, 0xFFFFFFFF), k=st.integers(1, 3))
def test_lea_equals_add_shift(a, k):
    """The Figure 1 family: ARM add with shifted operand == x86 lea."""
    arm_state = ConcreteState()
    arm_state.set_reg("r1", 1000)
    arm_state.set_reg("r2", a)
    execute_arm(parse_arm(f"add r0, r1, r2, lsl #{k}"), arm_state, ALU)

    x86_state = ConcreteState()
    x86_state.set_reg("ecx", 1000)
    x86_state.set_reg("eax", a)
    execute_x86(parse_x86(f"leal (%ecx,%eax,{1 << k}), %edx"),
                x86_state, ALU)
    assert arm_state.get_reg("r0") == x86_state.get_reg("edx")


@given(value=st.integers(0, 0xFFFFFFFF))
def test_movzbl_equals_and_255(value):
    arm_state = ConcreteState()
    arm_state.set_reg("r0", value)
    execute_arm(parse_arm("and r0, r0, #255"), arm_state, ALU)

    x86_state = ConcreteState()
    x86_state.set_reg("eax", value)
    execute_x86(parse_x86("movzbl %al, %eax"), x86_state, ALU)
    assert arm_state.get_reg("r0") == x86_state.get_reg("eax")
