"""x86 opcode metadata: defs/uses/flags tables."""

import pytest

from repro.host_x86 import parse_instruction as parse
from repro.host_x86.isa import (
    branch_condition,
    defined_flags,
    defined_registers,
    is_branch,
    is_call,
    is_indirect_branch,
    is_predicated,
    is_return,
    opcode_id,
    used_flags,
    used_registers,
)


class TestClassification:
    def test_branches(self):
        assert is_branch(parse("jmp .L"))
        assert is_branch(parse("jne .L"))
        assert is_branch(parse("call f"))
        assert is_branch(parse("ret"))
        assert not is_branch(parse("cmovne %eax, %ecx"))
        assert not is_branch(parse("sete %al"))

    def test_call_return(self):
        assert is_call(parse("call f"))
        assert is_return(parse("ret"))
        assert is_indirect_branch(parse("ret"))
        assert not is_indirect_branch(parse("jmp .L"))

    def test_predication_is_cmov(self):
        assert is_predicated(parse("cmovge %eax, %ecx"))
        assert not is_predicated(parse("movl %eax, %ecx"))

    def test_branch_condition(self):
        assert branch_condition(parse("jae .L")) == "ae"
        assert branch_condition(parse("jmp .L")) is None


class TestDefsUses:
    @pytest.mark.parametrize("text,defs,uses", [
        ("movl %eax, %ecx", ("ecx",), ("eax",)),
        ("movl $5, %ecx", ("ecx",), ()),
        ("movl (%esi), %eax", ("eax",), ("esi",)),
        ("movl %eax, (%esi)", (), ("eax", "esi")),
        ("addl %eax, %ecx", ("ecx",), ("eax", "ecx")),
        ("cmpl %eax, %ecx", (), ("eax", "ecx")),
        ("leal (%esi,%edi,2), %eax", ("eax",), ("esi", "edi")),
        ("negl %eax", ("eax",), ("eax",)),
        ("incl %eax", ("eax",), ("eax",)),
        ("shll $3, %edx", ("edx",), ("edx",)),
        ("sarl %cl, %edx", ("edx",), ("ecx", "edx")),
        ("movzbl %al, %edx", ("edx",), ("eax",)),
        ("movb %cl, (%esi)", (), ("ecx", "esi")),
        ("sete %al", ("eax",), ("eax",)),
        ("cmove %eax, %ecx", ("ecx",), ("eax", "ecx")),
        ("cltd", ("edx",), ("eax",)),
        ("idivl %ebx", ("eax", "edx"), ("eax", "edx", "ebx")),
        ("pushl %eax", ("esp",), ("esp", "eax")),
        ("popl %eax", ("esp", "eax"), ("esp",)),
        ("ret", ("esp",), ("esp",)),
    ])
    def test_table(self, text, defs, uses):
        instr = parse(text)
        assert defined_registers(instr) == defs
        assert used_registers(instr) == uses


class TestFlags:
    def test_full_writers(self):
        assert set(defined_flags(parse("addl %eax, %ecx"))) == \
            {"OF", "SF", "ZF", "CF"}
        assert set(defined_flags(parse("cmpl %eax, %ecx"))) == \
            {"OF", "SF", "ZF", "CF"}

    def test_inc_preserves_cf(self):
        assert "CF" not in defined_flags(parse("incl %eax"))
        assert "OF" in defined_flags(parse("incl %eax"))

    def test_mov_and_lea_touch_nothing(self):
        assert defined_flags(parse("movl %eax, %ecx")) == ()
        assert defined_flags(parse("leal (%esi), %eax")) == ()

    @pytest.mark.parametrize("cc,flags", [
        ("e", {"ZF"}), ("b", {"CF"}), ("l", {"SF", "OF"}),
        ("le", {"ZF", "SF", "OF"}), ("a", {"CF", "ZF"}), ("o", {"OF"}),
    ])
    def test_condition_reads(self, cc, flags):
        assert set(used_flags(parse(f"j{cc} .L"))) == flags
        assert set(used_flags(parse(f"set{cc} %al"))) == flags
        assert set(used_flags(parse(f"cmov{cc} %eax, %ecx"))) == flags


class TestOpcodeIds:
    def test_distinct(self):
        assert opcode_id(parse("addl %eax, %ecx")) != \
            opcode_id(parse("subl %eax, %ecx"))

    def test_stable(self):
        assert opcode_id(parse("movl %eax, %ecx")) == \
            opcode_id(parse("movl $0, %edx"))
