"""x86 semantics over the concrete ALU (EFLAGS, memory, control)."""

import pytest

from repro.dbt.machine import ConcreteState
from repro.host_x86 import execute, parse_instruction as parse
from repro.isa.alu import ConcreteALU
from repro.isa.state import BranchKind

ALU = ConcreteALU()


def run(state, *lines):
    outcome = None
    for line in lines:
        outcome = execute(parse(line), state, ALU)
    return outcome


@pytest.fixture
def state():
    return ConcreteState()


class TestDataMoves:
    def test_mov_imm(self, state):
        run(state, "movl $42, %eax")
        assert state.get_reg("eax") == 42

    def test_mov_mem_roundtrip(self, state):
        state.set_reg("esi", 0x1000)
        run(state, "movl $7, %eax", "movl %eax, 0x34(%esi)",
            "movl 0x34(%esi), %edx")
        assert state.get_reg("edx") == 7

    def test_movzbl(self, state):
        state.set_reg("eax", 0x1234FF)
        run(state, "movzbl %al, %eax")
        assert state.get_reg("eax") == 0xFF

    def test_movsbl(self, state):
        state.set_reg("eax", 0x80)
        run(state, "movsbl %al, %edx")
        assert state.get_reg("edx") == 0xFFFFFF80

    def test_movb_preserves_high_bytes(self, state):
        state.set_reg("eax", 0xAABBCCDD)
        state.set_reg("ecx", 0x11)
        run(state, "movb %cl, %al")
        assert state.get_reg("eax") == 0xAABBCC11

    def test_lea_does_not_touch_memory_or_flags(self, state):
        state.set_reg("ecx", 0x100)
        state.set_reg("eax", 4)
        state.set_flag("ZF", 1)
        run(state, "leal -0x4(%ecx,%eax,4), %edx")
        assert state.get_reg("edx") == 0x10C
        assert state.get_flag("ZF") == 1
        assert state.memory == {}


class TestArithmeticFlags:
    def test_sub_borrow_sets_cf(self, state):
        state.set_reg("eax", 3)
        run(state, "subl $5, %eax")
        assert state.get_reg("eax") == 0xFFFFFFFE
        assert state.get_flag("CF") == 1  # borrow (opposite of ARM C)
        assert state.get_flag("SF") == 1

    def test_cmp_sets_but_does_not_write(self, state):
        state.set_reg("eax", 5)
        run(state, "cmpl $5, %eax")
        assert state.get_reg("eax") == 5
        assert state.get_flag("ZF") == 1
        assert state.get_flag("CF") == 0

    def test_add_carry_and_overflow(self, state):
        state.set_reg("eax", 0x7FFFFFFF)
        run(state, "addl $1, %eax")
        assert state.get_flag("OF") == 1
        assert state.get_flag("CF") == 0
        state.set_reg("eax", 0xFFFFFFFF)
        run(state, "addl $1, %eax")
        assert state.get_flag("CF") == 1

    def test_logic_clears_cf_of(self, state):
        state.set_flag("CF", 1)
        state.set_flag("OF", 1)
        state.set_reg("eax", 3)
        run(state, "andl $1, %eax")
        assert state.get_flag("CF") == 0
        assert state.get_flag("OF") == 0

    def test_inc_preserves_cf(self, state):
        state.set_flag("CF", 1)
        state.set_reg("eax", 1)
        run(state, "incl %eax")
        assert state.get_flag("CF") == 1
        assert state.get_reg("eax") == 2

    def test_shl_cf_is_last_bit_out(self, state):
        state.set_reg("eax", 0x80000001)
        run(state, "shll $1, %eax")
        assert state.get_flag("CF") == 1
        assert state.get_reg("eax") == 2

    def test_sar_rounds_toward_minus_infinity(self, state):
        state.set_reg("eax", -7 & 0xFFFFFFFF)
        run(state, "sarl $1, %eax")
        assert state.get_reg("eax") == -4 & 0xFFFFFFFF

    def test_shift_by_cl_zero_preserves_flags(self, state):
        state.set_flag("ZF", 1)
        state.set_flag("CF", 1)
        state.set_reg("ecx", 0)
        state.set_reg("eax", 5)
        run(state, "shll %cl, %eax")
        assert state.get_reg("eax") == 5
        assert state.get_flag("ZF") == 1
        assert state.get_flag("CF") == 1


class TestSetccCmov:
    def test_sete(self, state):
        state.set_reg("eax", 5)
        state.set_reg("edx", 0xAABBCC00)
        run(state, "cmpl $5, %eax", "sete %dl")
        assert state.get_reg("edx") == 0xAABBCC01

    def test_seto_after_overflow(self, state):
        state.set_reg("eax", 0x80000000)
        run(state, "cmpl $1, %eax", "seto %al")
        assert state.get_reg("eax") & 0xFF == 1

    def test_cmov_taken_and_not(self, state):
        state.set_reg("eax", 1)
        state.set_reg("ecx", 42)
        state.set_reg("edx", 7)
        run(state, "cmpl $1, %eax", "cmove %ecx, %edx")
        assert state.get_reg("edx") == 42
        run(state, "cmpl $2, %eax", "cmove %eax, %edx")
        assert state.get_reg("edx") == 42  # unchanged


class TestDivision:
    def test_cltd_idivl(self, state):
        state.set_reg("eax", 100)
        state.set_reg("ebx", 7)
        run(state, "cltd", "idivl %ebx")
        assert state.get_reg("eax") == 14
        assert state.get_reg("edx") == 2

    def test_negative_dividend(self, state):
        state.set_reg("eax", -100 & 0xFFFFFFFF)
        state.set_reg("ebx", 7)
        run(state, "cltd", "idivl %ebx")
        assert state.get_reg("eax") == -14 & 0xFFFFFFFF
        assert state.get_reg("edx") == -2 & 0xFFFFFFFF


class TestControl:
    def test_jcc_taken(self, state):
        state.set_reg("eax", 2)
        run(state, "cmpl $5, %eax")
        outcome = run(state, "jl .L1")
        assert outcome.branch.cond == 1
        assert outcome.branch.target.name == ".L1"

    def test_jmp_unconditional(self, state):
        outcome = run(state, "jmp .L9")
        assert outcome.branch.cond == 1

    def test_push_pop(self, state):
        state.set_reg("esp", 0x2000)
        state.set_reg("eax", 99)
        run(state, "pushl %eax", "popl %edx")
        assert state.get_reg("edx") == 99
        assert state.get_reg("esp") == 0x2000

    def test_ret_pops_target(self, state):
        state.set_reg("esp", 0x2000)
        state.store(0x2000, 0x1234, 4)
        outcome = run(state, "ret")
        assert outcome.branch.kind is BranchKind.RETURN
        assert outcome.branch.target == 0x1234
        assert state.get_reg("esp") == 0x2004

    @pytest.mark.parametrize("cc,a,b,taken", [
        ("e", 5, 5, True), ("ne", 5, 5, False),
        ("l", 3, 5, True), ("ge", 3, 5, False),
        ("b", 1, 2, True), ("ae", 2, 2, True),
        ("a", 3, 2, True), ("be", 2, 2, True),
        ("g", 5, 3, True), ("le", 5, 3, False),
        ("s", 1, 2, True), ("ns", 2, 1, True),
    ])
    def test_condition_table(self, state, cc, a, b, taken):
        state.set_reg("eax", a)
        state.set_reg("ecx", b)
        run(state, "cmpl %ecx, %eax")  # computes eax - ecx
        outcome = run(state, f"j{cc} .t")
        assert bool(outcome.branch.cond) == taken
