"""Graceful shutdown and learn-failure observability.

``repro-serve`` must treat SIGTERM (what supervisors and the fleet
gate send) like SIGINT: drain the listener, finish any in-flight
learning round, and still run the post-loop persistence path (cache
save, metrics dump).  Background learning failures must be counted
and surfaced, never swallowed.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import RuleServiceClient
from repro.service.repo import RuleRepository
from repro.service.server import (
    AsyncRuleServer,
    RuleService,
    remove_stale_socket,
)

GAP = {
    "digest": "f" * 64,
    "direction": "arm-x86",
    "text": "stub window",
    "mnemonics": ["add"],
}


def spawn_server(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH="src")
    socket_path = str(tmp_path / "rules.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server",
         "--repo", str(tmp_path / "repo"),
         "--socket", socket_path, "--metrics", *extra],
        cwd="/root/repo", env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        with RuleServiceClient(socket_path=socket_path, retries=20,
                               backoff_base=0.05) as client:
            assert client.ping()["ok"] is True
    except Exception:
        proc.kill()
        proc.communicate()
        raise
    return proc, socket_path


class TestSigtermDrain:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_and_persists(self, tmp_path, signum):
        proc, _ = spawn_server(tmp_path)
        proc.send_signal(signum)
        try:
            _, stderr = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode == 0
        assert "draining (signal received)" in stderr
        # The --metrics dump only prints after asyncio.run returns —
        # proof the post-loop persistence path ran on this signal.
        assert "metrics" in stderr.lower()
        # The default verification cache was saved on the same path.
        assert (tmp_path / "repo" / "verify-cache").exists()

    def test_sigterm_mid_session_keeps_reported_gaps_clean(
            self, tmp_path):
        proc, socket_path = spawn_server(tmp_path)
        with RuleServiceClient(socket_path=socket_path) as client:
            response = client.request("report_gaps", gaps=[GAP])
            assert response["new"] == 1
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=30)
        assert proc.returncode == 0

    def test_stale_socket_is_reclaimed_after_kill(self, tmp_path):
        proc, socket_path = spawn_server(tmp_path)
        proc.kill()  # SIGKILL: no cleanup, socket file left behind
        proc.communicate()
        assert os.path.exists(socket_path)

        proc2, _ = spawn_server(tmp_path)
        proc2.send_signal(signal.SIGTERM)
        proc2.communicate(timeout=30)
        assert proc2.returncode == 0

    def test_remove_stale_socket_leaves_live_servers_alone(
            self, tmp_path, loop_thread):
        service = RuleService(RuleRepository(tmp_path / "repo"))
        server = AsyncRuleServer(service, auto_learn=False)
        path = str(tmp_path / "live.sock")
        loop_thread.call(server.start_unix(path))
        try:
            remove_stale_socket(path)
            assert os.path.exists(path)
            with RuleServiceClient(socket_path=path) as client:
                assert client.ping()["ok"] is True
        finally:
            loop_thread.call(server.close())


class BoomLearner:
    """A learner whose rounds always explode."""

    def learn(self, pending):
        raise RuntimeError("solver exploded")


class SlowLearner:
    """A learner slow enough for drain to have to wait for it."""

    def __init__(self):
        self.rounds = 0

    def learn(self, pending):
        time.sleep(0.4)
        self.rounds += 1

        class Round:
            rules = []
            gaps = len(pending)
            matched_candidates = 0
            verify_calls = 0

        return Round()


class TestLearnTaskObservability:
    def test_auto_learn_failure_is_counted_not_swallowed(
            self, tmp_path, loop_thread, capsys):
        service = RuleService(RuleRepository(tmp_path / "repo"),
                              BoomLearner())
        server = AsyncRuleServer(service, auto_learn=True,
                                 auto_learn_delay=0.01)
        path = str(tmp_path / "rules.sock")
        loop_thread.call(server.start_unix(path))
        try:
            with RuleServiceClient(socket_path=path) as client:
                client.request("report_gaps", gaps=[GAP])
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if service.learn_errors:
                        break
                    time.sleep(0.05)
                assert service.learn_errors == 1
                health = client.health()
                assert health["learn_errors"] == 1
                # The server keeps serving after a failed round.
                assert client.ping()["ok"] is True
        finally:
            loop_thread.call(server.close())

    def test_drain_waits_for_inflight_learning(self, tmp_path,
                                               loop_thread):
        learner = SlowLearner()
        service = RuleService(RuleRepository(tmp_path / "repo"),
                              learner)
        server = AsyncRuleServer(service, auto_learn=True,
                                 auto_learn_delay=0.01)
        path = str(tmp_path / "rules.sock")
        loop_thread.call(server.start_unix(path))
        with RuleServiceClient(socket_path=path) as client:
            client.request("report_gaps", gaps=[GAP])

        # Give the coalescing delay a moment to fire, then drain: the
        # scheduled round must complete, not be cancelled.
        time.sleep(0.05)
        loop_thread.call(server.drain())
        assert learner.rounds == 1
        assert service.learn_rounds == 1

    def test_drain_is_idempotent_and_close_after_drain(
            self, tmp_path, loop_thread):
        service = RuleService(RuleRepository(tmp_path / "repo"))
        server = AsyncRuleServer(service, auto_learn=False)
        path = str(tmp_path / "rules.sock")
        loop_thread.call(server.start_unix(path))
        loop_thread.call(server.drain())
        loop_thread.call(server.drain())
        loop_thread.call(server.close())

    def test_cancelled_round_is_not_an_error(self, tmp_path,
                                             loop_thread):
        service = RuleService(RuleRepository(tmp_path / "repo"),
                              SlowLearner())
        server = AsyncRuleServer(service, auto_learn=True,
                                 auto_learn_delay=5.0)
        path = str(tmp_path / "rules.sock")
        loop_thread.call(server.start_unix(path))
        with RuleServiceClient(socket_path=path) as client:
            client.request("report_gaps", gaps=[GAP])

        async def cancel_pending():
            server._scheduled.cancel()
            await asyncio.sleep(0)

        loop_thread.call(cancel_pending())
        time.sleep(0.05)
        assert service.learn_errors == 0
        loop_thread.call(server.close())
