"""Length-prefixed JSON framing: round trips and malformed frames."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.obs.trace import SpanContext
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    attach_trace,
    decode_payload,
    encode_frame,
    error_response,
    extract_trace,
    ok_response,
    read_message,
    recv_message,
    send_message,
    write_message,
)


class TestFrames:
    def test_roundtrip(self):
        message = {"op": "ping", "nested": {"xs": [1, 2, 3]}}
        frame = encode_frame(message)
        header, payload = frame[:4], frame[4:]
        assert struct.unpack(">I", header)[0] == len(payload)
        assert decode_payload(payload) == message

    def test_oversize_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")

    def test_envelopes(self):
        assert ok_response(x=1) == {"ok": True, "x": 1}
        err = error_response("boom")
        assert err["ok"] is False and err["error"] == "boom"


class TestSyncSocket:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            received = []

            def reader():
                while True:
                    message = recv_message(b)
                    if message is None:
                        return
                    received.append(message)

            thread = threading.Thread(target=reader)
            thread.start()
            send_message(a, {"op": "one"})
            send_message(a, {"op": "two", "gaps": []})
            a.close()
            thread.join(timeout=5)
            assert received == [{"op": "one"}, {"op": "two", "gaps": []}]
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"only a few bytes")
            a.close()
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            b.close()

    def test_oversize_header_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_truncated_header_raises(self):
        # EOF after a *partial* header is corruption, not a clean
        # close: only zero bytes between frames means EOF-ok.
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100)[:2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()


class TestAsyncStreams:
    def test_async_roundtrip(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            a, b = socket.socketpair()
            a.setblocking(False)
            b.setblocking(False)
            reader, writer = await asyncio.open_connection(sock=b)
            _, peer = await asyncio.open_connection(sock=a)
            await write_message(peer, {"op": "hello", "n": 7})
            message = await read_message(reader)
            peer.close()
            await peer.wait_closed()
            eof = await read_message(reader)
            writer.close()
            await writer.wait_closed()
            return message, eof

        message, eof = asyncio.run(scenario())
        assert message == {"op": "hello", "n": 7}
        assert eof is None

    @staticmethod
    def _read_raw(raw: bytes):
        """Feed raw bytes + EOF to the async reader, return/raise its
        result — the same corruption cases the sync transport gets."""
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_message(reader)

        return asyncio.run(scenario())

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            self._read_raw(struct.pack(">I", 100)[:2])

    def test_truncated_payload_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read_raw(struct.pack(">I", 100) + b"only a few bytes")

    def test_oversize_announced_frame_raises(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            self._read_raw(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_clean_eof_between_frames_is_none(self):
        assert self._read_raw(b"") is None

    def test_undecodable_payload_raises(self):
        payload = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            self._read_raw(struct.pack(">I", len(payload)) + payload)


class TestTraceEnvelope:
    def test_attach_and_extract_roundtrip(self):
        context = SpanContext(trace_id="t" * 16, span_id="s" * 16)
        message = attach_trace({"op": "ping"}, context.to_wire())
        assert message["trace"] == context.to_wire()
        extracted = extract_trace(message)
        assert extracted == context
        # extract always strips transport metadata off the envelope.
        assert "trace" not in message

    def test_attach_none_is_noop(self):
        message = attach_trace({"op": "ping"}, None)
        assert "trace" not in message

    def test_extract_absent_or_garbage_is_none(self):
        assert extract_trace({"op": "ping"}) is None
        assert extract_trace({"op": "ping", "trace": "junk"}) is None
        assert extract_trace("not a dict") is None

    def test_trace_field_survives_framing(self):
        context = SpanContext(trace_id="a" * 16, span_id="b" * 16)
        frame = encode_frame(attach_trace({"op": "flush"},
                                          context.to_wire()))
        decoded = decode_payload(frame[4:])
        assert extract_trace(decoded) == context
        assert decoded == {"op": "flush"}
