"""Live telemetry e2e: stats op, repro-top, and the gap trace id.

Drives a real unix-socket server (the ServerThread harness from the
e2e suite) and checks the observability surface added around it:

* the ``stats`` op carries the windowed :class:`ServiceTelemetry`
  snapshot (gap/rule rates, per-op frame latencies, queue depth) next
  to the legacy flat fields;
* ``repro-top --once`` renders a live dashboard from that payload over
  the same socket (and ``--json`` emits it raw);
* one trace id follows a gap across the whole loop — capture at the
  client's translate-time miss, arrival and settlement on the server,
  and the hot-install that closes it — which is the join the
  multi-file stitch report depends on.
"""

import io

import pytest

from repro.dbt.engine import DBTEngine
from repro.obs import top
from repro.obs.trace import read_trace, tracing
from repro.service.client import RuleServiceClient
from repro.service.learner import OnlineLearner
from repro.service.repo import RuleRepository
from repro.service.server import RuleService

from tests.service.test_service_e2e import ServerThread


@pytest.fixture
def server(tmp_path, mcf_pair):
    repo = RuleRepository(tmp_path / "repo")
    learner = OnlineLearner({"mcf": mcf_pair})
    service = RuleService(repo, learner)
    thread = ServerThread(service, str(tmp_path / "rules.sock"))
    yield thread
    thread.stop()


def _drive_gap_cycle(server, mcf_pair):
    guest, _ = mcf_pair
    with RuleServiceClient(socket_path=server.path) as client:
        engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
        engine.run()
        assert client.report_gaps() > 0
        client.flush()
        result = client.sync(engine)
        assert result.rules_installed > 0
    return engine


class TestStatsTelemetry:
    def test_stats_carry_telemetry_snapshot(self, server, mcf_pair):
        _drive_gap_cycle(server, mcf_pair)
        with RuleServiceClient(socket_path=server.path) as client:
            client.stats()
            stats = client.stats()
        telemetry = stats["telemetry"]
        assert telemetry["uptime_seconds"] > 0
        assert telemetry["gaps"]["lifetime"] > 0
        assert telemetry["rules"]["lifetime"] > 0
        assert telemetry["queue_depth"] == 0
        ops = telemetry["ops"]
        # an op's timing lands after its response, so the first stats
        # call is visible by the second one
        for op in ("report_gaps", "flush", "stats"):
            assert ops[op]["count"] >= 1
            assert set(ops[op]["quantiles_ms"]) == {"p50", "p95", "p99"}
        # legacy flat fields stay for old consumers
        assert stats["gaps_unique"] == stats["gaps"]["seen"]
        assert stats["gaps"]["pending"] == 0
        assert stats["gaps"]["settled"] > 0


class TestReproTop:
    def test_once_renders_live_snapshot(self, server, mcf_pair, capsys):
        _drive_gap_cycle(server, mcf_pair)
        assert top.main(["--socket", server.path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "rules published" in out
        assert "report_gaps" in out
        assert "uptime" in out

    def test_once_json_payload(self, server, mcf_pair, capsys):
        import json

        _drive_gap_cycle(server, mcf_pair)
        assert top.main(["--socket", server.path, "--once",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["telemetry"]["gaps"]["lifetime"] > 0

    def test_dead_socket_exits_nonzero(self, tmp_path, capsys):
        assert top.main(["--socket", str(tmp_path / "nope.sock"),
                         "--once"]) == 1
        assert capsys.readouterr().err


class TestGapTraceId:
    def test_one_trace_id_spans_the_whole_loop(self, server, mcf_pair):
        sink = io.StringIO()
        with tracing(sink):
            _drive_gap_cycle(server, mcf_pair)
        records = read_trace(io.StringIO(sink.getvalue()))
        by_name = {}
        for record in records:
            if record.trace_id:
                by_name.setdefault(record.name, set()).add(
                    record.trace_id
                )
        captures = by_name.get("service.gap_capture", set())
        assert captures
        # The in-process server shares this tracer, so its side of the
        # loop lands in the same file: every settled gap's id must be
        # one that a capture minted (same for arrivals).
        assert by_name["service.gap_received"] <= captures
        settled = by_name["service.gap_settled"]
        assert settled and settled <= captures

    def test_settled_gap_names_installed_bundle(self, server, mcf_pair):
        sink = io.StringIO()
        with tracing(sink):
            _drive_gap_cycle(server, mcf_pair)
        records = read_trace(io.StringIO(sink.getvalue()))
        bundles = {
            r.fields.get("bundle") for r in records
            if r.name == "service.gap_settled" and r.fields.get("bundle")
        }
        installed = {
            r.fields.get("digest") for r in records
            if r.name == "dbt.hot_install" and r.fields.get("digest")
        }
        assert bundles
        # every bundle a gap settled into was hot-installed back
        assert bundles <= installed
