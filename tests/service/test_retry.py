"""Client failover: retry across restarts, degrade instead of raise.

The scenarios a fleet makes routine: the server dies between two
requests, dies and comes back mid-sync, or is down long enough that
the retry budget runs out — in which case an *attached* engine must
keep translating with its last-synced rules instead of erroring out
of ``run()``.
"""

import time

import pytest

from repro.dbt.engine import DBTEngine
from repro.learning.store import RuleStore
from repro.service.client import RuleServiceClient
from repro.service.learner import OnlineLearner
from repro.service.repo import RuleRepository
from repro.service.server import AsyncRuleServer, RuleService


class Server:
    """A killable/restartable server on the shared loop thread.

    Restarts rebuild the transport around the *same* service object
    (repository, gap state survive — only connections die), matching a
    supervisor bouncing the process with a durable repo directory.
    """

    def __init__(self, loop_thread, tmp_path, learner=None,
                 unix: bool = True) -> None:
        self.lt = loop_thread
        self.service = RuleService(
            RuleRepository(tmp_path / "repo"), learner
        )
        self.unix = unix
        self.path = str(tmp_path / "rules.sock")
        self.port: int | None = None
        self.server: AsyncRuleServer | None = None
        self.start()

    def start(self) -> None:
        self.server = AsyncRuleServer(self.service, auto_learn=False)
        if self.unix:
            self.lt.call(self.server.start_unix(self.path))
        else:
            async def start_tcp():
                await self.server.start_tcp("127.0.0.1", self.port or 0)
                return self.server._server.sockets[0].getsockname()[1]

            self.port = self.lt.call(start_tcp())

    def kill(self) -> None:
        self.lt.call(self.server.abort())

    def stop(self) -> None:
        if self.server is not None:
            self.lt.call(self.server.close())
            self.server = None

    def client(self, **kwargs) -> RuleServiceClient:
        if self.unix:
            return RuleServiceClient(socket_path=self.path, **kwargs)
        return RuleServiceClient(address=("127.0.0.1", self.port),
                                 **kwargs)


@pytest.fixture
def server(loop_thread, tmp_path):
    srv = Server(loop_thread, tmp_path)
    yield srv
    srv.stop()


def run_and_report(client, pair):
    guest, _ = pair
    engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
    engine.run()
    return engine


class TestRetry:
    def test_zero_retries_preserves_single_shot(self, server):
        with server.client() as client:
            assert client.ping()["ok"] is True
            server.kill()
            with pytest.raises(OSError):
                client.ping()

    def test_request_survives_restart_between_requests(self, server):
        with server.client(retries=4, backoff_base=0.02) as client:
            assert client.ping()["ok"] is True
            server.kill()
            server.start()
            assert client.ping()["ok"] is True

    def test_retry_budget_exhausts_when_server_stays_down(self, server):
        with server.client(retries=2, backoff_base=0.01) as client:
            client.ping()
            server.kill()
            with pytest.raises(OSError):
                client.ping()

    def test_constructor_waits_for_slow_server(self, loop_thread,
                                               tmp_path):
        srv = Server(loop_thread, tmp_path)
        try:
            srv.kill()

            import threading

            def restart_soon():
                time.sleep(0.3)
                srv.start()

            thread = threading.Thread(target=restart_soon)
            thread.start()
            try:
                with pytest.raises(OSError):
                    srv.client(retries=0)
                with srv.client(retries=8,
                                backoff_base=0.05) as client:
                    assert client.ping()["ok"] is True
            finally:
                thread.join()
        finally:
            srv.stop()

    def test_report_gaps_recovers_idempotently(self, loop_thread,
                                               tmp_path, mcf_pair):
        srv = Server(loop_thread, tmp_path)
        try:
            with srv.client(retries=5, backoff_base=0.02) as client:
                engine = run_and_report(client, mcf_pair)
                srv.kill()
                srv.start()
                # The drained batch uploads over a fresh connection;
                # server-side digest dedup makes any repeat harmless.
                sent = client.report_gaps()
                assert sent > 0
                assert srv.service.gaps.pending == sent
                assert engine.last_run is not None
        finally:
            srv.stop()

    def test_sync_recovers_mid_restart(self, loop_thread, tmp_path,
                                       mcf_pair, mcf_rules):
        srv = Server(loop_thread, tmp_path)
        try:
            srv.service.repo.publish(list(mcf_rules), "arm-x86")
            guest, _ = mcf_pair
            with srv.client(retries=5, backoff_base=0.02) as client:
                engine = DBTEngine(guest, "rules", RuleStore())
                first = client.sync(engine)
                assert first.rules_installed > 0

                srv.kill()
                srv.start()
                again = client.sync(engine)
                # Reconnected transparently; installed digests are
                # remembered client-side so nothing reinstalls.
                assert again.bundles == 0
                assert again.generation == first.generation
        finally:
            srv.stop()

    def test_tcp_transport_retries_too(self, loop_thread, tmp_path):
        srv = Server(loop_thread, tmp_path, unix=False)
        try:
            with srv.client(retries=4, backoff_base=0.02) as client:
                assert client.ping()["ok"] is True
                srv.kill()
                srv.start()
                assert client.ping()["ok"] is True
        finally:
            srv.stop()

    def test_backoff_is_deterministic_per_endpoint(self):
        a = RuleServiceClient.__new__(RuleServiceClient)
        b = RuleServiceClient.__new__(RuleServiceClient)
        for stub in (a, b):
            stub.backoff_base = 0.05
            stub.backoff_max = 2.0
            stub.backoff_jitter = 0.25
            import random

            stub._rng = random.Random(repr(("/tmp/x.sock", None)))
        assert [a._backoff(i) for i in range(6)] == \
            [b._backoff(i) for i in range(6)]
        capped = a._backoff(30)
        assert capped <= 2.0 * 1.25


class TestDegradedMode:
    def test_attached_engine_never_raises_while_down(
            self, loop_thread, tmp_path, mcf_pair):
        learner = OnlineLearner({"mcf": mcf_pair})
        srv = Server(loop_thread, tmp_path, learner=learner)
        try:
            guest, _ = mcf_pair
            with srv.client(retries=1, backoff_base=0.01) as client:
                engine = DBTEngine(guest, "rules")
                client.attach(engine, every=64, flush=True)
                first = engine.run()
                assert client.generation > 0
                assert client.degraded is False
                rules_before = len(engine.rule_store)
                assert rules_before > 0

                # Service gone: the run completes on stale rules.
                srv.kill()
                second = engine.run()
                assert second.return_value == first.return_value
                assert client.degraded is True
                assert len(engine.rule_store) == rules_before

                # Service back: a later tick recovers automatically.
                srv.start()
                third = engine.run()
                assert third.return_value == first.return_value
                assert client.degraded is False
        finally:
            srv.stop()


class TestServerResilience:
    def test_server_survives_abrupt_client_close(self, server):
        client = server.client()
        client.ping()
        # Close without a goodbye mid-connection; the server must keep
        # serving other clients.
        client._sock.close()
        client._sock = None
        with server.client() as fresh:
            assert fresh.ping()["ok"] is True

    def test_half_written_frame_then_close(self, server):
        import socket as socket_module

        raw = socket_module.socket(socket_module.AF_UNIX,
                                   socket_module.SOCK_STREAM)
        raw.connect(server.path)
        raw.sendall(b"\x00\x00\x10")  # truncated length prefix
        raw.close()
        with server.client() as fresh:
            assert fresh.ping()["ok"] is True
