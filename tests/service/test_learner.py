"""Gap-driven online learning: candidate selection and verdict reuse."""

from repro.learning.cache import VerificationCache
from repro.service.gaps import canonical_gap
from repro.service.learner import OnlineLearner, _has_window


class TestHasWindow:
    def test_contiguous_only(self):
        haystack = ("ldr", "add", "str", "cmp", "bne")
        assert _has_window(haystack, ("add", "str"))
        assert _has_window(haystack, ("ldr",))
        assert _has_window(haystack, haystack)
        assert not _has_window(haystack, ("ldr", "str"))
        assert not _has_window(haystack, ())
        assert not _has_window(("add",), ("add", "str"))


def _gaps_for(program, count=64):
    """Canonical gaps covering the program's whole guest text."""
    code = program.code
    gaps = []
    for start in range(0, len(code), 4):
        window = code[start : start + 8]
        if window:
            gaps.append(canonical_gap(window))
    return gaps[:count] if count else gaps


class TestOnlineLearner:
    def test_staging_happens_once(self, mcf_pair):
        learner = OnlineLearner({"mcf": (mcf_pair[0], mcf_pair[1])})
        first = learner.staged_candidates()
        assert first
        assert learner.staged_candidates() is first

    def test_whole_program_gaps_recover_offline_rules(
            self, mcf_pair, mcf_rules):
        guest, host = mcf_pair
        learner = OnlineLearner({"mcf": (guest, host)})
        gaps = _gaps_for(guest, count=0)
        round_ = learner.learn(gaps)
        assert round_.matched_candidates > 0
        # Gaps spanning the full guest text select at least every
        # candidate offline learning would turn into a rule.
        assert set(mcf_rules) <= set(round_.rules)

    def test_irrelevant_gaps_select_nothing(self, mcf_pair):
        learner = OnlineLearner({"mcf": (mcf_pair[0], mcf_pair[1])})
        bogus = canonical_gap(mcf_pair[0].code[:1])
        bogus = type(bogus)(
            digest=bogus.digest, direction="arm-x86",
            text=bogus.text, mnemonics=("no_such_mnemonic",),
        )
        round_ = learner.learn([bogus])
        assert round_.matched_candidates == 0
        assert round_.rules == []

    def test_memo_prevents_reverification(self, mcf_pair):
        guest, host = mcf_pair
        learner = OnlineLearner({"mcf": (guest, host)})
        gaps = _gaps_for(guest, count=0)
        first = learner.learn(gaps)
        assert first.resolved > 0
        second = learner.learn(gaps)
        assert second.resolved == 0
        assert second.verify_calls == 0
        assert sorted(second.rules, key=str) == \
            sorted(first.rules, key=str)

    def test_persistent_cache_spans_learners(self, mcf_pair, tmp_path):
        guest, host = mcf_pair
        cache = VerificationCache.at_dir(tmp_path / "cache")
        gaps = _gaps_for(guest, count=0)
        first = OnlineLearner({"mcf": (guest, host)}, cache=cache)
        round1 = first.learn(gaps)
        assert round1.resolved > 0

        reopened = VerificationCache.at_dir(tmp_path / "cache")
        second = OnlineLearner({"mcf": (guest, host)}, cache=reopened)
        round2 = second.learn(gaps)
        assert round2.resolved == 0
        assert sorted(round2.rules, key=str) == \
            sorted(round1.rules, key=str)

    def test_rules_rebound_to_corpus_origin(self, mcf_pair):
        guest, host = mcf_pair
        learner = OnlineLearner({"mcf": (guest, host)})
        round_ = learner.learn(_gaps_for(guest, count=0))
        assert round_.rules
        assert all(rule.origin == "mcf" for rule in round_.rules)
