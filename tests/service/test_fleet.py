"""The sharded rule-service fleet: ring, routing, churn, catch-up.

Everything runs in-process: N real ``AsyncRuleServer`` shards plus a
``FleetCoordinator`` share one background event loop, clients talk
real unix sockets, and a shard "kill" is ``AsyncRuleServer.abort()``
(listener and live connections dropped without draining — exactly
what a crash looks like to the coordinator).  The subprocess flavour
of the same scenarios lives in ``scripts/fleet_gate.py``.
"""

import time

import pytest

from repro.dbt.engine import DBTEngine
from repro.learning.store import RuleStore
from repro.service.client import RuleServiceClient, ServiceError
from repro.service.fleet import (
    FleetCoordinator,
    HashRing,
    ShardLink,
    parse_shard,
)
from repro.service.learner import OnlineLearner
from repro.service.repo import RuleRepository
from repro.service.server import AsyncRuleServer, RuleService


def wait_until(predicate, timeout: float = 20.0,
               interval: float = 0.05, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def fake_gap(index: int) -> dict:
    return {
        "digest": f"{index:064x}",
        "direction": "arm-x86",
        "text": f"window {index}",
        "mnemonics": ["add", "sub"],
    }


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"key-{i}" for i in range(200)]
        one = HashRing(["a", "b", "c"])
        two = HashRing(["a", "b", "c"])
        assert [one.shard_for(k) for k in keys] == \
            [two.shard_for(k) for k in keys]

    def test_balanced_at_default_vnodes(self):
        ring = HashRing(["a", "b", "c"])
        counts = {"a": 0, "b": 0, "c": 0}
        total = 3000
        for i in range(total):
            counts[ring.shard_for(f"key-{i}")] += 1
        for shard, count in counts.items():
            assert count > total * 0.2, (shard, counts)
            assert count < total * 0.5, (shard, counts)

    def test_removal_only_remaps_departed_shards_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.shard_for(k) for k in keys}
        ring.remove("c")
        for key in keys:
            if before[key] != "c":
                assert ring.shard_for(key) == before[key]
            else:
                assert ring.shard_for(key) in {"a", "b", "d"}

    def test_membership_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            HashRing([], vnodes=0)
        empty = HashRing([])
        with pytest.raises(ValueError):
            empty.shard_for("key")

    def test_parse_shard_specs(self):
        unix = parse_shard("a=/tmp/a.sock")
        assert unix.shard_id == "a"
        assert unix.socket_path == "/tmp/a.sock"
        tcp = parse_shard("b=localhost:7000")
        assert tcp.address == ("localhost", 7000)
        with pytest.raises(ValueError):
            parse_shard("no-address")


class Shard:
    """One in-process shard on the shared loop."""

    def __init__(self, loop_thread, tmp_path, shard_id: str,
                 learner=None) -> None:
        self.lt = loop_thread
        self.base = tmp_path
        self.shard_id = shard_id
        self.path = str(tmp_path / f"{shard_id}.sock")
        self.learner = learner
        self.incarnation = 0
        self.service: RuleService | None = None
        self.server: AsyncRuleServer | None = None

    @property
    def repo_dir(self):
        return self.base / f"{self.shard_id}-repo-{self.incarnation}"

    def start(self, fresh: bool = False) -> None:
        if fresh:
            self.incarnation += 1
        self.service = RuleService(
            RuleRepository(self.repo_dir), self.learner
        )
        self.server = AsyncRuleServer(self.service, auto_learn=False)
        self.lt.call(self.server.start_unix(self.path))

    def kill(self) -> None:
        self.lt.call(self.server.abort())

    def stop(self) -> None:
        if self.server is not None:
            self.lt.call(self.server.close())
            self.server = None


class Fleet:
    """Shards + coordinator + journal, all on one loop thread."""

    def __init__(self, loop_thread, tmp_path, shard_ids,
                 learners=None, start_shards=True) -> None:
        self.lt = loop_thread
        learners = learners or {}
        self.shards = {
            shard_id: Shard(loop_thread, tmp_path, shard_id,
                            learner=learners.get(shard_id))
            for shard_id in shard_ids
        }
        if start_shards:
            for shard in self.shards.values():
                shard.start()
        links = [
            ShardLink(shard_id, socket_path=shard.path)
            for shard_id, shard in self.shards.items()
        ]
        self.coordinator = FleetCoordinator(
            str(tmp_path / "journal"), links
        )
        self.path = str(tmp_path / "fleet.sock")
        self.lt.call(self.coordinator.start(
            socket_path=self.path, reconnect_interval=0.05,
        ))

    def client(self, **kwargs) -> RuleServiceClient:
        return RuleServiceClient(socket_path=self.path, **kwargs)

    def stop(self) -> None:
        self.lt.call(self.coordinator.close())
        for shard in self.shards.values():
            shard.stop()


class TestFleetRouting:
    def test_ping_announces_the_fleet(self, loop_thread, tmp_path):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b", "c"])
        try:
            with fleet.client() as client:
                info = client.ping()
                assert info["fleet"] is True
                assert info["shards"] == 3
        finally:
            fleet.stop()

    def test_gap_reports_partition_by_ring(self, loop_thread, tmp_path):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b", "c"])
        try:
            gaps = [fake_gap(i) for i in range(12)]
            expected: dict[str, int] = {}
            for gap in gaps:
                owner = fleet.coordinator.ring.shard_for(gap["digest"])
                expected[owner] = expected.get(owner, 0) + 1
            with fleet.client() as client:
                response = client.request("report_gaps", gaps=gaps)
            assert response["accepted"] == 12
            assert response["queued"] == 0
            for shard_id, shard in fleet.shards.items():
                assert shard.service.gaps.pending == \
                    expected.get(shard_id, 0), shard_id
        finally:
            fleet.stop()

    def test_gap_without_digest_is_rejected(self, loop_thread,
                                            tmp_path):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"])
        try:
            with fleet.client() as client:
                with pytest.raises(ServiceError):
                    client.request("report_gaps",
                                   gaps=[{"direction": "arm-x86"}])
                assert client.ping()["ok"] is True
        finally:
            fleet.stop()


class TestShardChurn:
    def test_gaps_queue_while_down_and_redeliver(self, loop_thread,
                                                 tmp_path):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"])
        try:
            # Find a gap owned by shard a, then kill a.
            gap = next(
                fake_gap(i) for i in range(64)
                if fleet.coordinator.ring.shard_for(
                    fake_gap(i)["digest"]) == "a"
            )
            fleet.shards["a"].kill()
            with fleet.client() as client:
                response = client.request("report_gaps", gaps=[gap])
                assert response["accepted"] == 1
                assert response["queued"] == 1

                health = client.health()
                assert health["alive"] is True
                assert health["ready"] is True  # b still serves
                assert health["shards"]["a"]["alive"] is False
                assert health["shards"]["a"]["queued_gaps"] == 1
                assert health["shards"]["a"]["kills_observed"] == 1

                # Same digest again: deduped in the queue.
                again = client.request("report_gaps", gaps=[gap])
                assert again["queued"] == 0

                fleet.shards["a"].start()
                wait_until(
                    lambda: client.health()["ready_shards"] == 2,
                    message="shard a back to ready",
                )
                wait_until(
                    lambda: fleet.shards["a"].service.gaps.pending == 1,
                    message="queued gap redelivered",
                )
        finally:
            fleet.stop()

    def test_forwarded_gaps_survive_fresh_restart(self, loop_thread,
                                                  tmp_path):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"])
        try:
            gap = next(
                fake_gap(i) for i in range(64)
                if fleet.coordinator.ring.shard_for(
                    fake_gap(i)["digest"]) == "a"
            )
            with fleet.client() as client:
                response = client.request("report_gaps", gaps=[gap])
                assert response["queued"] == 0
                assert fleet.shards["a"].service.gaps.pending == 1

                # The shard dies with the gap in its in-memory
                # aggregator and comes back empty; the coordinator's
                # routed backlog re-reports it on reattach.
                fleet.shards["a"].kill()
                wait_until(
                    lambda: not client.health()["shards"]["a"]["alive"],
                    message="coordinator noticing the kill",
                )
                fleet.shards["a"].start(fresh=True)
                wait_until(
                    lambda: fleet.shards["a"].service.gaps.pending == 1,
                    message="routed gap redelivered after restart",
                )
        finally:
            fleet.stop()

    def test_catch_up_replays_journal_into_fresh_shard(
            self, loop_thread, tmp_path, mcf_rules):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"],
                      start_shards=False)
        try:
            fleet.shards["a"].start()
            fleet.shards["a"].service.repo.publish(
                list(mcf_rules), "arm-x86"
            )
            with fleet.client() as client:
                # A delta sync folds shard a's bundle into the journal.
                wait_until(
                    lambda: client.health()["shards"]["a"]["ready"],
                    message="shard a attached",
                )
                delta = client.request("delta", since=0)
                assert delta["generation"] >= 1
                assert len(delta["entries"]) == 1
                journal_bundles = len(fleet.coordinator.repo.entries())
                assert journal_bundles == 1

                # Shard b starts empty; the reconnect loop catches it
                # up from the journal before marking it ready.
                fleet.shards["b"].start()
                wait_until(
                    lambda: client.health()["ready_shards"] == 2,
                    message="shard b caught up",
                )
                assert len(fleet.shards["b"].service.repo.entries()) == 1
                assert fleet.coordinator.catchups >= 2

                # b re-offering the replayed bundle publishes nothing
                # new to the fleet (rule-identity dedup).
                after = client.request("delta", since=0)
                assert after["generation"] == delta["generation"]
                assert len(fleet.coordinator.repo.entries()) == \
                    journal_bundles
        finally:
            fleet.stop()

    def test_generation_monotone_across_fresh_restart(
            self, loop_thread, tmp_path, mcf_pair, mcf_rules,
            libquantum_rules):
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"])
        try:
            guest, _ = mcf_pair
            fleet.shards["a"].service.repo.publish(
                list(mcf_rules), "arm-x86"
            )
            with fleet.client() as client:
                engine = DBTEngine(guest, "rules", RuleStore())
                generations = []
                first = client.sync(engine)
                assert first.rules_installed > 0
                generations.append(first.generation)

                # Kill a and bring it back with an empty directory —
                # the catch-up replay restores its rule set, and the
                # fleet view neither regresses nor duplicates.
                fleet.shards["a"].kill()
                wait_until(
                    lambda: not client.health()["shards"]["a"]["alive"],
                    message="coordinator noticing the kill",
                )
                fleet.shards["a"].start(fresh=True)
                wait_until(
                    lambda: client.health()["ready_shards"] == 2,
                    message="shard a caught up after fresh restart",
                )
                assert len(
                    fleet.shards["a"].service.repo.entries()
                ) >= 1
                second = client.sync(engine)
                assert second.bundles == 0
                generations.append(second.generation)

                # New rules from shard b advance the fleet generation.
                fleet.shards["b"].service.repo.publish(
                    list(libquantum_rules), "arm-x86"
                )
                third = client.sync(engine)
                assert third.bundles >= 1
                generations.append(third.generation)

            assert generations == sorted(generations)
            assert generations[0] == generations[1]
            assert generations[2] > generations[1]
        finally:
            fleet.stop()


class TestFleetEndToEnd:
    def test_coverage_parity_through_coordinator(
            self, loop_thread, tmp_path, mcf_pair, mcf_rules):
        # Every shard stages the full corpus: gaps are sharded, so any
        # shard must be able to learn whichever gaps it is routed.
        learners = {
            shard_id: OnlineLearner({"mcf": mcf_pair})
            for shard_id in ("a", "b")
        }
        fleet = Fleet(loop_thread, tmp_path, ["a", "b"],
                      learners=learners)
        try:
            guest, _ = mcf_pair
            with fleet.client() as client:
                engine = DBTEngine(guest, "rules",
                                   gap_sink=client.recorder)
                first = engine.run()
                assert engine.last_run.dynamic_coverage == 0.0

                assert client.report_gaps() > 0
                flushed = client.flush()
                assert flushed["published"] is True
                assert flushed["shards_flushed"] == 2

                result = client.sync(engine)
                assert result.rules_installed > 0

                second = engine.run()
                assert second.return_value == first.return_value
                online = engine.last_run.dynamic_coverage

            offline_engine = DBTEngine(
                guest, "rules", RuleStore.from_rules(list(mcf_rules))
            )
            offline_engine.run()
            offline = offline_engine.last_run.dynamic_coverage
            assert online == pytest.approx(offline, abs=0.01)
        finally:
            fleet.stop()
