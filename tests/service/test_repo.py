"""Content-addressed repository: bundles, manifests, delta sync."""

import json

import pytest

from repro.learning.cache import SEMANTICS_VERSION
from repro.service.repo import (
    BundleError,
    RuleRepository,
    bundle_digest,
    make_bundle,
    sign_payload,
    verify_bundle,
    verify_manifest,
)


class TestBundles:
    def test_digest_is_stable_under_rule_order(self, mcf_rules):
        forward = make_bundle(list(mcf_rules), "arm-x86")
        backward = make_bundle(list(reversed(mcf_rules)), "arm-x86")
        assert bundle_digest(forward) == bundle_digest(backward)

    def test_verify_roundtrip(self, mcf_rules):
        document = make_bundle(list(mcf_rules), "arm-x86")
        restored = verify_bundle(document, bundle_digest(document))
        assert sorted(restored, key=str) == \
            sorted(set(mcf_rules), key=str)

    def test_tampered_bundle_rejected(self, mcf_rules):
        document = make_bundle(list(mcf_rules), "arm-x86")
        digest = bundle_digest(document)
        document["rules"] = document["rules"][:-1]
        with pytest.raises(BundleError):
            verify_bundle(document, digest)

    def test_foreign_document_rejected(self):
        with pytest.raises(BundleError):
            verify_bundle({"format": "something-else", "rules": []},
                          bundle_digest({"format": "something-else",
                                         "rules": []}))


class TestManifest:
    def test_signature_roundtrip(self, tmp_path, mcf_rules):
        repo = RuleRepository(tmp_path / "repo")
        repo.publish(list(mcf_rules), "arm-x86")
        manifest = repo.manifest()
        payload = verify_manifest(manifest, repo.key)
        assert payload["generation"] == 1
        assert len(payload["bundles"]) == 1

    def test_forged_signature_rejected(self, tmp_path, mcf_rules):
        repo = RuleRepository(tmp_path / "repo")
        repo.publish(list(mcf_rules), "arm-x86")
        manifest = repo.manifest()
        manifest["payload"]["generation"] = 99
        with pytest.raises(BundleError):
            verify_manifest(manifest, repo.key)
        with pytest.raises(BundleError):
            verify_manifest(repo.manifest(), b"wrong key")

    def test_sign_payload_depends_on_content(self):
        key = b"k" * 32
        assert sign_payload({"a": 1}, key) != sign_payload({"a": 2}, key)


class TestRepository:
    def test_publish_and_reload(self, tmp_path, mcf_rules):
        root = tmp_path / "repo"
        repo = RuleRepository(root)
        ref = repo.publish(list(mcf_rules), "arm-x86")
        assert ref is not None
        assert ref.generation == 1
        assert ref.semantics == SEMANTICS_VERSION

        reloaded = RuleRepository(root)
        assert reloaded.generation == 1
        assert sorted(reloaded.all_rules("arm-x86"), key=str) == \
            sorted(repo.all_rules("arm-x86"), key=str)

    def test_republish_is_noop(self, tmp_path, mcf_rules):
        repo = RuleRepository(tmp_path / "repo")
        assert repo.publish(list(mcf_rules), "arm-x86") is not None
        assert repo.publish(list(mcf_rules), "arm-x86") is None
        assert repo.generation == 1
        # ... even across a restart (the known set is rebuilt from disk)
        reloaded = RuleRepository(tmp_path / "repo")
        assert reloaded.publish(list(mcf_rules), "arm-x86") is None

    def test_overlapping_publish_is_minimal_delta(
            self, tmp_path, mcf_rules, libquantum_rules):
        repo = RuleRepository(tmp_path / "repo")
        repo.publish(list(mcf_rules), "arm-x86")
        mixed = list(mcf_rules) + list(libquantum_rules)
        ref = repo.publish(mixed, "arm-x86")
        genuinely_new = set(libquantum_rules) - set(mcf_rules)
        if genuinely_new:
            assert ref is not None
            assert ref.rules == len(genuinely_new)
        else:
            assert ref is None

    def test_delta_since(self, tmp_path, mcf_rules, libquantum_rules):
        repo = RuleRepository(tmp_path / "repo")
        first = repo.publish(list(mcf_rules), "arm-x86")
        second = repo.publish(list(libquantum_rules), "arm-x86")
        assert [r.digest for r in repo.delta_since(0)] == [
            ref.digest for ref in (first, second) if ref is not None
        ]
        if second is not None:
            assert [r.digest for r in repo.delta_since(first.generation)] \
                == [second.digest]
            assert repo.delta_since(second.generation) == []

    def test_unknown_bundle(self, tmp_path):
        repo = RuleRepository(tmp_path / "repo")
        with pytest.raises(BundleError):
            repo.load_bundle("0" * 64)

    def test_bundle_files_are_content_addressed(self, tmp_path,
                                                mcf_rules):
        repo = RuleRepository(tmp_path / "repo")
        ref = repo.publish(list(mcf_rules), "arm-x86")
        path = tmp_path / "repo" / "bundles" / f"{ref.digest}.json"
        with open(path) as fp:
            document = json.load(fp)
        assert bundle_digest(document) == ref.digest
