"""Service observability ops: ``metrics`` exposition, SLO + profile.

Covers the production-observability wiring around the rule service:

* the new ``metrics`` op ships the full observability frame (metrics
  snapshot, windowed telemetry, SLO report, live profile) in one
  request, and ``python -m repro.obs.export`` renders it over the
  wire as valid Prometheus text;
* with an :class:`~repro.obs.slo.SloEngine` attached, every handled
  frame feeds per-op burn-rate accounting and the report rides in
  both ``stats`` and ``metrics``;
* with the sampling profiler running, its snapshot rides along too,
  and ``repro-top`` renders SLO and profiler panels from the same
  payload.
"""

import pytest

from repro.obs import top
from repro.obs.export import main as export_main
from repro.obs.export import parse_exposition, render_exposition
from repro.obs.profiler import SamplingProfiler, phase, set_profiler
from repro.obs.slo import SloEngine
from repro.service.client import RuleServiceClient
from repro.service.repo import RuleRepository
from repro.service.server import RuleService

from tests.service.test_service_e2e import ServerThread

# Every op breaches: sub-microsecond latency budget, tiny windows.
STRICT_SLO = """
[[objective]]
name = "ping-latency"
kind = "latency"
source = "op:ping"
threshold_ms = 0.000001
target = 0.99
windows = [5, 30]
min_events = 3
"""


@pytest.fixture(autouse=True)
def fresh_profiler():
    set_profiler(None)
    yield
    set_profiler(None)


def make_service(tmp_path, slo=None) -> RuleService:
    return RuleService(RuleRepository(tmp_path / "repo"), slo=slo)


class TestMetricsOp:
    def test_frame_carries_metrics_and_telemetry(self, tmp_path):
        service = make_service(tmp_path)
        service.handle({"op": "ping"})
        response = service.handle({"op": "metrics"})
        assert response["ok"]
        assert "counters" in response["metrics"]
        assert "ping" in response["telemetry"]["ops"]
        assert "slo" not in response
        assert "profile" not in response

    def test_slo_and_profile_ride_when_enabled(self, tmp_path):
        engine = SloEngine.from_toml_text(STRICT_SLO)
        service = make_service(tmp_path, slo=engine)
        profiler = SamplingProfiler(hz=50)
        set_profiler(profiler)
        profiler.start()
        try:
            for _ in range(5):
                service.handle({"op": "ping"})
            # The timer thread may not fire inside this sub-millisecond
            # window; take one deterministic sample.
            with phase("service.op.ping"):
                profiler.sample_once()
            response = service.handle({"op": "metrics"})
        finally:
            profiler.stop()
        assert response["slo"]["breaches"] == ["ping-latency"]
        assert response["profile"]["kind"] == "profile"
        stats = service.handle({"op": "stats"})
        assert stats["slo"]["ok"] is False
        assert stats["profile"]["kind"] == "profile"

    def test_frame_renders_as_valid_prometheus_text(self, tmp_path):
        engine = SloEngine.from_toml_text(STRICT_SLO)
        service = make_service(tmp_path, slo=engine)
        for _ in range(5):
            service.handle({"op": "ping"})
        response = service.handle({"op": "metrics"})
        text = render_exposition(
            metrics=response["metrics"],
            telemetry=response["telemetry"],
            slo=response["slo"],
        )
        names = {name for name, _, _ in parse_exposition(text)}
        assert "repro_service_op_latency_ms" in names
        assert "repro_slo_breach" in names


class TestExportOverTheWire:
    def test_export_cli_fetches_and_validates(self, tmp_path, capsys):
        service = make_service(
            tmp_path, slo=SloEngine.from_toml_text(STRICT_SLO)
        )
        server = ServerThread(service, str(tmp_path / "rules.sock"))
        try:
            with RuleServiceClient(socket_path=server.path) as client:
                for _ in range(5):
                    client.ping()
                frame = client.metrics()
            assert frame["ok"]
            assert export_main(
                ["--socket", server.path, "--validate"]
            ) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "repro_slo_breach" in out
        assert "repro_service_op_latency_ms" in out
        parse_exposition(out)


class TestReproTopPanels:
    def drive(self, tmp_path):
        engine = SloEngine.from_toml_text(STRICT_SLO)
        service = make_service(tmp_path, slo=engine)
        profiler = SamplingProfiler(hz=50)
        set_profiler(profiler)
        profiler.start()
        try:
            for _ in range(5):
                service.handle({"op": "ping"})
            with phase("service.op.ping"):
                profiler.sample_once()
        finally:
            profiler.stop()
        return service.handle({"op": "stats"})

    def test_render_includes_slo_and_profile_panels(self, tmp_path):
        stats = self.drive(tmp_path)
        rendered = top.render(stats)
        assert "SLOs — 1 BREACHING: ping-latency" in rendered
        assert "ping-latency" in rendered
        assert "profile:" in rendered

    def test_render_without_panels_unchanged(self, tmp_path):
        service = make_service(tmp_path)
        service.handle({"op": "ping"})
        rendered = top.render(service.handle({"op": "stats"}))
        assert "SLOs" not in rendered
        assert "profile:" not in rendered
