"""Idempotent store installs and live-engine hot-install semantics."""

from repro.dbt.engine import DBTEngine
from repro.learning.store import RuleStore


class TestStoreInstall:
    def test_insert_dedups(self, mcf_rules):
        store = RuleStore()
        rule = mcf_rules[0]
        assert store.insert(rule) is True
        assert store.insert(rule) is False
        assert len(store) == 1

    def test_install_is_idempotent(self, mcf_rules):
        store = RuleStore()
        first = store.install(list(mcf_rules))
        again = store.install(list(mcf_rules))
        assert len(first) == len(set(mcf_rules))
        assert again == []
        assert len(store) == len(set(mcf_rules))

    def test_repeated_install_keeps_buckets_flat(self, mcf_rules):
        store = RuleStore()
        store.install(list(mcf_rules))
        sizes = {key: len(bucket)
                 for key, bucket in store._buckets.items()}
        for _ in range(3):
            store.install(list(mcf_rules))
        assert {key: len(bucket)
                for key, bucket in store._buckets.items()} == sizes


class TestEngineHotInstall:
    def test_hot_install_then_rerun_matches_prebuilt(
            self, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        live = DBTEngine(guest, "rules")
        baseline = live.run()
        assert live.last_run.dynamic_coverage == 0.0

        installed, invalidated = live.hot_install(list(mcf_rules))
        assert installed == len(set(mcf_rules))
        assert invalidated > 0
        rerun = live.run()
        assert rerun.return_value == baseline.return_value

        prebuilt = DBTEngine(
            guest, "rules", RuleStore.from_rules(list(mcf_rules))
        )
        prebuilt.run()
        assert live.last_run.dynamic_coverage == \
            prebuilt.last_run.dynamic_coverage

    def test_hot_install_is_idempotent(self, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        engine = DBTEngine(guest, "rules")
        engine.run()
        first, _ = engine.hot_install(list(mcf_rules))
        assert first == len(set(mcf_rules))
        second, invalidated = engine.hot_install(list(mcf_rules))
        assert second == 0
        assert invalidated == 0
        assert len(engine.rule_store) == len(set(mcf_rules))

    def test_hot_install_only_invalidates_matching_blocks(
            self, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        engine = DBTEngine(guest, "rules")
        engine.run()
        cached_before = set(engine._cache)
        _, invalidated = engine.hot_install(list(mcf_rules))
        assert invalidated <= len(cached_before)
        # fully-uncovered blocks with no rule window stay cached
        assert set(engine._cache) <= cached_before

    def test_static_coverage_not_skewed_by_reinstall(
            self, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        engine = DBTEngine(guest, "rules")
        engine.run()
        engine.hot_install(list(mcf_rules))
        engine.run()
        coverage = engine.stats.static_coverage
        engine.hot_install(list(mcf_rules))
        engine.run()
        assert engine.stats.static_coverage == coverage

    def test_quarantined_rules_not_readmitted(self, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        engine = DBTEngine(guest, "rules")
        engine.run()
        engine.quarantined_rules.add(mcf_rules[0])
        installed, _ = engine.hot_install(list(mcf_rules))
        unique = set(mcf_rules)
        assert installed == len(unique) - 1
        assert mcf_rules[0] not in engine.rule_store.all_rules()
