"""Gap capture, canonicalization, and server-side aggregation."""

from repro.service.gaps import (
    Gap,
    GapAggregator,
    GapRecorder,
    canonical_gap,
)
from repro.minic.compile import compile_source

SOURCE = """
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 10) {
    s = s + i * 3;
    i += 1;
  }
  return s;
}
"""


def _instrs():
    program = compile_source(SOURCE, "arm", 2, "llvm")
    return program.code


class TestCanonicalGap:
    def test_same_window_same_digest(self):
        instrs = _instrs()
        assert canonical_gap(instrs[:4]) == canonical_gap(instrs[:4])

    def test_different_windows_differ(self):
        instrs = _instrs()
        a = canonical_gap(instrs[:4])
        b = canonical_gap(instrs[1:5])
        assert a.digest != b.digest

    def test_direction_is_part_of_identity(self):
        instrs = _instrs()
        assert canonical_gap(instrs[:4], "arm-x86").digest != \
            canonical_gap(instrs[:4], "x86-arm").digest

    def test_json_roundtrip(self):
        gap = canonical_gap(_instrs()[:4])
        assert Gap.from_json(gap.to_json()) == gap


class TestGapRecorder:
    def test_dedups_identical_windows(self):
        instrs = _instrs()
        recorder = GapRecorder()
        for _ in range(5):
            recorder(instrs[:4])
        recorder(instrs[2:6])
        assert len(recorder) == 2
        report = recorder.drain()
        counts = {item["digest"]: item["count"] for item in report}
        assert sorted(counts.values(), reverse=True) == [5, 1]

    def test_drained_gaps_never_reupload(self):
        instrs = _instrs()
        recorder = GapRecorder()
        recorder(instrs[:4])
        assert len(recorder.drain()) == 1
        recorder(instrs[:4])
        assert recorder.drain() == []

    def test_empty_window_ignored(self):
        recorder = GapRecorder()
        recorder([])
        assert len(recorder) == 0


class TestGapAggregator:
    def _report(self, *windows):
        instrs = _instrs()
        return [
            dict(canonical_gap(instrs[a:b]).to_json(), count=1)
            for a, b in windows
        ]

    def test_absorb_dedups_across_reports(self):
        agg = GapAggregator()
        assert agg.absorb(self._report((0, 4), (2, 6))) == 2
        assert agg.absorb(self._report((0, 4), (3, 7))) == 1
        assert agg.pending == 3
        assert agg.reported == 4

    def test_take_pending_settles(self):
        agg = GapAggregator()
        agg.absorb(self._report((0, 4)))
        taken = agg.take_pending()
        assert len(taken) == 1
        assert agg.pending == 0
        assert agg.settled == 1
        # settled gaps are never re-queued
        agg.absorb(self._report((0, 4)))
        assert agg.pending == 0
        assert agg.take_pending() == []
