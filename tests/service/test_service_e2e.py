"""End-to-end rule service: gaps -> online learning -> hot-install.

The acceptance demo for PR 4: a client with an *empty* rule store runs
a benchmark, reports its translation gaps, the server learns rules for
them from its staged corpus and publishes a bundle, the client
hot-installs it into the live engine, and the second run's dynamic
rule coverage lands within 1% of offline leave-nothing-out learning.
Both sync flavours are exercised: cold-start full-manifest sync and
incremental delta sync.
"""

import asyncio
import threading

import pytest

from repro.dbt.engine import DBTEngine
from repro.learning.cache import SEMANTICS_VERSION
from repro.learning.store import RuleStore
from repro.service.client import RuleServiceClient, ServiceError
from repro.service.learner import OnlineLearner
from repro.service.repo import RuleRepository
from repro.service.server import AsyncRuleServer, RuleService


class ServerThread:
    """A live unix-socket rule server on a background event loop."""

    def __init__(self, service: RuleService, path: str) -> None:
        self.service = service
        self.path = path
        self.loop = asyncio.new_event_loop()
        self.server = AsyncRuleServer(service, auto_learn=False)
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start_unix(path))
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def stop(self) -> None:
        async def shutdown() -> None:
            await self.server.close()

        asyncio.run_coroutine_threadsafe(shutdown(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def server(tmp_path, mcf_pair, libquantum_pair):
    repo = RuleRepository(tmp_path / "repo")
    learner = OnlineLearner({
        "mcf": mcf_pair,
        "libquantum": libquantum_pair,
    })
    service = RuleService(repo, learner)
    thread = ServerThread(service, str(tmp_path / "rules.sock"))
    yield thread
    thread.stop()


def _client(server, **kwargs):
    return RuleServiceClient(socket_path=server.path, **kwargs)


def _offline_coverage(pair, rules):
    guest, _ = pair
    engine = DBTEngine(guest, "rules", RuleStore.from_rules(list(rules)))
    engine.run()
    return engine.last_run.dynamic_coverage


class TestEndToEnd:
    def test_gap_learn_install_cycle(self, server, mcf_pair, mcf_rules):
        guest, _ = mcf_pair
        with _client(server) as client:
            info = client.ping()
            assert info["direction"] == "arm-x86"
            assert info["semantics"] == SEMANTICS_VERSION

            engine = DBTEngine(guest, "rules",
                               gap_sink=client.recorder)
            first = engine.run()
            assert engine.last_run.dynamic_coverage == 0.0

            assert client.report_gaps() > 0
            flushed = client.flush()
            assert flushed["published"] is True

            result = client.sync(engine)
            assert result.cold is True
            assert result.rules_installed > 0
            assert result.blocks_invalidated > 0

            second = engine.run()
            assert second.return_value == first.return_value
            online = engine.last_run.dynamic_coverage
            offline = _offline_coverage(mcf_pair, mcf_rules)
            assert online == pytest.approx(offline, abs=0.01)

    def test_cold_then_delta_sync(self, server, mcf_pair,
                                  libquantum_pair):
        mcf_guest, _ = mcf_pair
        lq_guest, _ = libquantum_pair
        with _client(server) as mcf_client, _client(server) as lq_client:
            # client A: report mcf gaps, learn, cold-sync.
            mcf_engine = DBTEngine(mcf_guest, "rules",
                                   gap_sink=mcf_client.recorder)
            mcf_engine.run()
            mcf_client.report_gaps()
            mcf_client.flush()
            cold = mcf_client.sync(mcf_engine)
            assert cold.cold is True and cold.bundles >= 1
            generation_after_cold = cold.generation

            # client B cold-syncs the same bundles concurrently.
            lq_engine = DBTEngine(lq_guest, "rules",
                                  gap_sink=lq_client.recorder)
            lq_engine.run()
            b_cold = lq_client.sync(lq_engine)
            assert b_cold.cold is True
            assert b_cold.generation == generation_after_cold

            # client B's gaps trigger a second publish ...
            lq_client.report_gaps()
            assert lq_client.flush()["published"] is True

            # ... which reaches client A through an incremental delta.
            delta = mcf_client.sync(mcf_engine)
            assert delta.cold is False
            assert delta.generation > generation_after_cold
            assert delta.bundles >= 1
            # already-installed bundles never re-transfer
            assert set(delta.digests).isdisjoint(set(cold.digests))

            # a further delta sync is empty (nothing new published)
            assert mcf_client.sync(mcf_engine).bundles == 0

    def test_sync_is_idempotent_across_reconnects(self, server,
                                                  mcf_pair):
        guest, _ = mcf_pair
        with _client(server) as client:
            engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
            engine.run()
            client.report_gaps()
            client.flush()
            first = client.sync(engine)
            assert first.rules_installed > 0

        # a fresh client (new connection, generation 0) re-fetches the
        # manifest but the engine-side install stays idempotent.
        with _client(server) as fresh:
            again = fresh.sync(engine)
            assert again.cold is True
            assert again.rules_installed == 0
            assert again.blocks_invalidated == 0

    def test_manifest_signature_verification(self, server, mcf_pair):
        guest, _ = mcf_pair
        key = server.service.repo.key
        with _client(server, manifest_key=key) as client:
            engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
            engine.run()
            client.report_gaps()
            client.flush()
            result = client.sync(engine)
            assert result.rules_installed > 0

    def test_mid_run_hot_install_via_attach(self, server, mcf_pair,
                                            mcf_rules):
        guest, _ = mcf_pair
        with _client(server) as client:
            engine = DBTEngine(guest, "rules")
            client.attach(engine, every=64, flush=True)
            first = engine.run()
            # the attach tick reported, learned, and installed mid-run
            assert client.generation > 0
            assert len(engine.rule_store) > 0

            second = engine.run()
            assert second.return_value == first.return_value
            online = engine.last_run.dynamic_coverage
            offline = _offline_coverage(mcf_pair, mcf_rules)
            assert online == pytest.approx(offline, abs=0.01)

    def test_unknown_ops_and_bundles_error_cleanly(self, server):
        with _client(server) as client:
            with pytest.raises(ServiceError):
                client.request("no_such_op")
            with pytest.raises(ServiceError):
                client.fetch_rules("0" * 64)
            # the connection survives server-side errors
            assert client.ping()["ok"] is True

    def test_stats_reflect_activity(self, server, mcf_pair):
        guest, _ = mcf_pair
        with _client(server) as client:
            engine = DBTEngine(guest, "rules", gap_sink=client.recorder)
            engine.run()
            client.report_gaps()
            client.flush()
            stats = client.stats()
            assert stats["gaps_unique"] > 0
            assert stats["gaps_pending"] == 0
            assert stats["learn_rounds"] == 1
            assert stats["bundles_published"] >= 1
