"""Shared fixtures and harnesses for the rule-service tests."""

import asyncio
import threading

import pytest

from repro.benchsuite import build_learning_pair
from repro.learning.pipeline import learn_rules


class LoopThread:
    """An asyncio event loop running forever on a daemon thread.

    The fleet and retry tests start/stop asyncio servers from
    synchronous test code; ``call(coro)`` runs one coroutine on the
    loop and blocks for its result.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "loop thread failed to start"

    def call(self, coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop
        ).result(timeout)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def loop_thread():
    thread = LoopThread()
    yield thread
    thread.stop()


@pytest.fixture(scope="session")
def mcf_pair():
    return build_learning_pair("mcf")


@pytest.fixture(scope="session")
def libquantum_pair():
    return build_learning_pair("libquantum")


@pytest.fixture(scope="session")
def mcf_rules(mcf_pair):
    guest, host = mcf_pair
    return learn_rules(guest, host, benchmark="mcf").rules


@pytest.fixture(scope="session")
def libquantum_rules(libquantum_pair):
    guest, host = libquantum_pair
    return learn_rules(guest, host, benchmark="libquantum").rules
