"""Shared fixtures for the rule-service tests."""

import pytest

from repro.benchsuite import build_learning_pair
from repro.learning.pipeline import learn_rules


@pytest.fixture(scope="session")
def mcf_pair():
    return build_learning_pair("mcf")


@pytest.fixture(scope="session")
def libquantum_pair():
    return build_learning_pair("libquantum")


@pytest.fixture(scope="session")
def mcf_rules(mcf_pair):
    guest, host = mcf_pair
    return learn_rules(guest, host, benchmark="mcf").rules


@pytest.fixture(scope="session")
def libquantum_rules(libquantum_pair):
    guest, host = libquantum_pair
    return learn_rules(guest, host, benchmark="libquantum").rules
