"""Canonical candidate keys: pre-verification dedup identity."""

from repro.learning.canon import (
    candidate_digest,
    candidate_key,
    immexpr_text,
    mapping_signature,
    resolve_candidate,
    snippet_text,
)
from repro.learning.paramize import (
    InitialMapping,
    analyze_pair,
    generate_mappings,
)
from repro.minic import compile_source

SOURCE = """
int main(void) {
  int a = 3;
  int b = 5;
  int c = a + b;
  int d = c + b;
  return d;
}
"""


def _candidates(source):
    guest = compile_source(source, "arm", 2, "llvm")
    host = compile_source(source, "x86", 2, "llvm")
    from repro.learning.extract import extract_pairs

    result = []
    for pair in extract_pairs(guest, host).pairs:
        context = analyze_pair(pair)
        mappings, failure = generate_mappings(context)
        if failure is None:
            result.append((context, mappings))
    return result


class TestKeyIdentity:
    def test_identical_snippets_share_a_key(self):
        first = _candidates(SOURCE)
        second = _candidates(SOURCE)
        assert [candidate_digest(c, m) for c, m in first] == \
            [candidate_digest(c, m) for c, m in second]

    def test_key_covers_direction_and_both_snippets(self):
        (context, mappings), *_ = _candidates(SOURCE)
        key = candidate_key(context, mappings)
        assert context.direction.name in key
        assert snippet_text(context.pair.guest) in key
        assert snippet_text(context.pair.host) in key

    def test_different_immediates_differ(self):
        first = {candidate_digest(c, m) for c, m in _candidates(SOURCE)}
        changed = {
            candidate_digest(c, m)
            for c, m in _candidates(SOURCE.replace("int b = 5", "int b = 9"))
        }
        assert first != changed

    def test_line_and_function_do_not_matter(self):
        # The same statement on different lines / in different functions
        # canonicalizes identically (that is the whole point of dedup).
        shifted = "\n\n\n" + SOURCE
        assert [candidate_digest(c, m) for c, m in _candidates(SOURCE)] == \
            [candidate_digest(c, m) for c, m in _candidates(shifted)]


class TestMappingSignature:
    def test_signature_is_insertion_order_independent(self):
        a = InitialMapping({"r0": "eax", "r1": "ecx"}, {})
        b = InitialMapping({"r1": "ecx", "r0": "eax"}, {})
        assert mapping_signature(a) == mapping_signature(b)

    def test_signature_distinguishes_mappings(self):
        a = InitialMapping({"r0": "eax"}, {})
        b = InitialMapping({"r0": "ecx"}, {})
        assert mapping_signature(a) != mapping_signature(b)

    def test_immexpr_text_nested(self):
        expr = ("add", ("slot", "ig0"), ("const", 4))
        assert immexpr_text(expr) == "(add (slot ig0) (const 4))"


class TestResolveCandidate:
    def test_counts_solver_calls(self):
        for context, mappings in _candidates(SOURCE):
            outcome = resolve_candidate(context, mappings)
            assert 1 <= outcome.calls <= len(mappings)
            if outcome.rule is not None:
                assert outcome.failure is None
            else:
                assert outcome.failure is not None

    def test_deterministic_verdicts(self):
        first = [resolve_candidate(c, m) for c, m in _candidates(SOURCE)]
        second = [resolve_candidate(c, m) for c, m in _candidates(SOURCE)]
        for a, b in zip(first, second):
            assert (a.rule is None) == (b.rule is None)
            assert a.failure == b.failure
            assert a.calls == b.calls
