"""Address normalization: linear forms over live-in registers."""

from repro.guest_arm import isa as arm_isa
from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import isa as x86_isa
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.addrnorm import LinForm, SlotNamer, analyze_snippet


def analyze_arm(*lines):
    namer = SlotNamer("ig")
    accesses, forms = analyze_snippet(
        [parse_arm(line) for line in lines], arm_isa, namer
    )
    return accesses, forms, namer


def analyze_x86(*lines):
    namer = SlotNamer("ih")
    accesses, forms = analyze_snippet(
        [parse_x86(line) for line in lines], x86_isa, namer
    )
    return accesses, forms, namer


class TestLinForm:
    def test_plus_and_cancel(self):
        a = LinForm(regs={"r0": 1}, const=4)
        b = LinForm(regs={"r0": 1, "r1": 2})
        merged = a.plus(b, -1)
        assert merged.regs == {"r1": -2}
        assert merged.const == 4

    def test_scaled(self):
        form = LinForm(regs={"r0": 1}, slots={"ig0": 1}, const=3)
        scaled = form.scaled(4)
        assert scaled.regs == {"r0": 4}
        assert scaled.slots == {"ig0": 4}
        assert scaled.const == 12


class TestArmNormalization:
    def test_figure_2a(self):
        """add r0, r1, r0 lsl 2; ldr r0, [r0, #-4]  =>  r1 + r0*4 + disp."""
        accesses, _, namer = analyze_arm(
            "add r0, r1, r0, lsl #2", "ldr r0, [r0, #-4]"
        )
        (access,) = accesses
        assert access.form.regs == {"r1": 1, "r0": 4}
        # The displacement is a slot valued -4.
        (slot_name, coeff), = access.form.slots.items()
        assert coeff == 1
        assert namer.values[slot_name] == (-4) & 0xFFFFFFFF

    def test_mov_imm_feeds_address(self):
        accesses, _, namer = analyze_arm(
            "mov r1, #1048576", "ldr r3, [r1, r2, lsl #2]"
        )
        (access,) = accesses
        assert access.form.regs == {"r2": 4}
        assert sum(
            namer.values[slot] * c for slot, c in access.form.slots.items()
        ) == 1048576

    def test_opaque_after_load(self):
        accesses, _, _ = analyze_arm("ldr r1, [r5]", "ldr r4, [r1]")
        assert not accesses[0].form.is_opaque
        assert accesses[1].form.is_opaque

    def test_store_flagged(self):
        accesses, _, _ = analyze_arm("str r0, [r1]")
        assert accesses[0].is_store

    def test_byte_access_size(self):
        accesses, _, _ = analyze_arm("ldrb r0, [r1]")
        assert accesses[0].size == 1


class TestX86Normalization:
    def test_full_sib(self):
        accesses, _, namer = analyze_x86("movl -0x4(%ecx,%eax,4), %eax")
        (access,) = accesses
        assert access.form.regs == {"ecx": 1, "eax": 4}
        (slot, _), = access.form.slots.items()
        assert namer.values[slot] == (-4) & 0xFFFFFFFF

    def test_lea_is_not_an_access_but_tracks_form(self):
        accesses, forms, _ = analyze_x86(
            "leal (%ecx,%eax,2), %edx", "movl (%edx), %esi"
        )
        (access,) = accesses  # only the movl
        assert access.form.regs == {"ecx": 1, "eax": 2}

    def test_add_chain_tracked(self):
        accesses, _, _ = analyze_x86(
            "movl %ebx, %edx", "addl %ecx, %edx", "movl (%edx), %eax"
        )
        (access,) = accesses
        assert access.form.regs == {"ebx": 1, "ecx": 1}

    def test_matching_guest_host_forms_align(self):
        """The central property: paired accesses normalize to forms with
        equal coefficient multisets."""
        guest, _, _ = analyze_arm(
            "add r0, r1, r0, lsl #2", "ldr r0, [r0, #-4]"
        )
        host, _, _ = analyze_x86("movl -0x4(%ecx,%eax,4), %eax")
        guest_coeffs = sorted(guest[0].form.regs.values())
        host_coeffs = sorted(host[0].form.regs.values())
        assert guest_coeffs == host_coeffs == [1, 4]
