"""Initial-mapping generation heuristics (Section 3.2)."""

from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.extract import SnippetPair
from repro.learning.paramize import (
    ParamFailure,
    analyze_pair,
    generate_mappings,
    live_in_registers,
)
from repro.guest_arm import isa as arm_isa


def make_pair(guest_lines, host_lines):
    return SnippetPair(
        "t", 1,
        [parse_arm(line) for line in guest_lines],
        [parse_x86(line) for line in host_lines],
    )


def mappings_for(guest_lines, host_lines):
    context = analyze_pair(make_pair(guest_lines, host_lines))
    return generate_mappings(context)


class TestLiveIn:
    def test_use_before_def(self):
        instrs = [parse_arm("add r0, r1, r2"), parse_arm("sub r3, r0, r1")]
        assert live_in_registers(instrs, arm_isa) == ("r1", "r2")

    def test_redefined_after_use_still_live_in(self):
        instrs = [parse_arm("add r0, r0, r1")]
        assert live_in_registers(instrs, arm_isa) == ("r0", "r1")


class TestAddressMapping:
    def test_figure_2a_mapping(self):
        maps, failure = mappings_for(
            ["add r0, r1, r0, lsl #2", "ldr r0, [r0, #-4]"],
            ["movl -0x4(%ecx,%eax,4), %eax"],
        )
        assert failure is None
        assert maps[0].reg_map == {"r1": "ecx", "r0": "eax"}

    def test_figure_2b_base_mapping(self):
        maps, failure = mappings_for(
            ["ldr r1, [r5]", "ldr r4, [r1]"],
            ["movl (%edi), %eax", "movl (%eax), %esi"],
        )
        assert failure is None
        assert maps[0].reg_map == {"r5": "edi"}


class TestOperationMapping:
    def test_figure_3a_produces_correct_candidate(self):
        maps, failure = mappings_for(
            ["sub r0, r8, r4", "add r0, r1, r0"],
            ["movl %ebp, %ecx", "subl %esi, %ecx", "addl %eax, %ecx"],
        )
        assert failure is None
        expected = {"r1": "eax", "r8": "ebp", "r4": "esi"}
        assert expected in [m.reg_map for m in maps]

    def test_permutations_bounded(self):
        maps, failure = mappings_for(
            ["add r0, r1, r2"],
            ["movl %ecx, %eax", "addl %edx, %eax"],
        )
        assert failure is None
        assert 1 <= len(maps) <= 5

    def test_different_live_in_counts_fail(self):
        maps, failure = mappings_for(
            ["add r0, r1, r2"],              # two live-ins
            ["movl $3, %eax"],               # zero live-ins
        )
        assert failure is ParamFailure.LIVE_IN


class TestMemoryPairing:
    def test_count_mismatch(self):
        maps, failure = mappings_for(
            ["mov r0, r1"],
            ["movl 0x4(%esp), %eax"],
        )
        assert failure is ParamFailure.MEM_COUNT

    def test_name_mismatch(self):
        pair = make_pair(["ldr r0, [r1]  @ var=alpha"],
                         ["movl (%esi), %eax  # var=beta"])
        context = analyze_pair(pair)
        _, failure = generate_mappings(context)
        assert failure is ParamFailure.MEM_NAME

    def test_size_mismatch_counts_as_name_failure(self):
        maps, failure = mappings_for(
            ["ldrb r0, [r1]"],
            ["movl (%esi), %eax"],
        )
        assert failure is ParamFailure.MEM_NAME


class TestImmediateRelations:
    def test_identity_relation(self):
        maps, _ = mappings_for(["mov r0, #42"], ["movl $42, %eax"])
        assert any(
            ast == ("slot", "ig0") for ast in maps[0].imm_asts.values()
        )

    def test_or_relation_figure_4b(self):
        maps, _ = mappings_for(
            ["mov r1, #983040", "orr r1, r1, #117440512"],
            ["movl $0x70f0000, %ecx"],
        )
        asts = list(maps[0].imm_asts.values())
        assert any(ast[0] == "or" for ast in asts)

    def test_additive_inverse_relation(self):
        maps, _ = mappings_for(
            ["sub r0, r0, #14"],
            ["addl $-14, %eax"],
        )
        assert any(ast[0] == "neg" for ast in maps[0].imm_asts.values())

    def test_unrelated_immediate_left_concrete(self):
        maps, _ = mappings_for(
            ["and r0, r0, #255"],
            ["movzbl %al, %eax"],
        )
        # 255 has no host counterpart; it must not become a wildcard.
        assert "ig0" not in maps[0].guest_param_slots

    def test_offset_delta_figure_4a(self):
        maps, _ = mappings_for(
            ["str r1, [r6]"],
            ["movl %eax, 0x34(%esi)"],
        )
        (ast,) = maps[0].imm_asts.values()
        # host disp = guest disp + 0x34
        assert ast == ("add", ("slot", "ig0"), ("const", 0x34)) or \
            ast[0] in ("slot", "add")
