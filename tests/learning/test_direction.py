"""Direction registry and constraint functions."""

import pytest

from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.direction import (
    ARM_TO_X86,
    DIRECTIONS,
    X86_TO_ARM,
    HostConstraintError,
    arm_host_constraints,
    x86_host_constraints,
)


class TestRegistry:
    def test_both_directions_registered(self):
        assert set(DIRECTIONS) == {"arm-x86", "x86-arm"}

    def test_flag_partners_are_inverses(self):
        forward = ARM_TO_X86.flag_partners
        backward = X86_TO_ARM.flag_partners
        assert {v: k for k, v in forward.items()} == backward

    def test_opcode_ids_come_from_guest_isa(self):
        arm_add = parse_arm("add r0, r0, #1")
        x86_add = parse_x86("addl $1, %eax")
        assert ARM_TO_X86.guest_opcode_id(arm_add) > 0
        assert X86_TO_ARM.guest_opcode_id(x86_add) > 0
        with pytest.raises(Exception):
            ARM_TO_X86.guest_opcode_id(x86_add)

    def test_low8_assignment(self):
        assert ARM_TO_X86.host_has_low8 and not ARM_TO_X86.guest_has_low8
        assert X86_TO_ARM.guest_has_low8 and not X86_TO_ARM.host_has_low8


class TestX86Constraints:
    def test_valid_scales(self):
        for scale in (1, 2, 4, 8):
            x86_host_constraints(
                parse_x86(f"movl (%esi,%edi,{scale}), %eax")
            )

    def test_invalid_scale(self):
        from repro.isa.instruction import Instruction
        from repro.isa.operands import Mem, Reg

        instr = Instruction(
            "movl",
            (Mem(base=Reg("esi"), index=Reg("edi"), scale=16), Reg("eax")),
        )
        with pytest.raises(HostConstraintError):
            x86_host_constraints(instr)


class TestArmConstraints:
    @pytest.mark.parametrize("value", [0, 255, 0xFF00, 0xFF000000, 0x3FC00])
    def test_encodable(self, value):
        arm_host_constraints(parse_arm(f"add r0, r0, #{value}"))

    @pytest.mark.parametrize("value", [257, 0x12345678, 0x101])
    def test_unencodable(self, value):
        with pytest.raises(HostConstraintError):
            arm_host_constraints(parse_arm(f"add r0, r0, #{value}"))

    def test_mov_wide_pseudo_allowed_range_check_applies(self):
        # Our ISA models mov with arbitrary imm as a movw/movt pair, but
        # rule-host assembly still enforces the single-instruction rule.
        with pytest.raises(HostConstraintError):
            arm_host_constraints(parse_arm("mov r0, #0x12345678"))
