"""Rule matching / binding / deduplication (Section 4)."""

from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.rule import dedup_rules, match_rule
from repro.learning.store import RuleStore
from repro.learning.verify import verify_candidate


def learn_rule(guest_lines, host_lines):
    pair = SnippetPair(
        "t", 1,
        [parse_arm(line) for line in guest_lines],
        [parse_x86(line) for line in host_lines],
    )
    context = analyze_pair(pair)
    mappings, failure = generate_mappings(context)
    assert failure is None
    for mapping in mappings:
        result = verify_candidate(context, mapping)
        if result.rule is not None:
            return result.rule
    raise AssertionError("rule did not verify")


LEA_RULE = learn_rule(
    ["add r1, r1, r0", "sub r1, r1, #1"],
    ["leal -1(%edx,%eax), %edx"],
)


class TestMatching:
    def test_matches_same_registers(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r1, r1, r0"), parse_arm("sub r1, r1, #1"),
        ])
        assert binding is not None

    def test_matches_renamed_registers(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7"), parse_arm("sub r5, r5, #1"),
        ])
        assert binding is not None
        assert set(binding.regs.values()) == {"r5", "r7"}

    def test_matches_different_immediate(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7"), parse_arm("sub r5, r5, #99"),
        ])
        assert binding is not None
        assert 99 in binding.slots.values()

    def test_rejects_inconsistent_destination(self):
        # add writes r5 but sub operates on r6: params can't bind.
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7"), parse_arm("sub r6, r6, #1"),
        ])
        assert binding is None

    def test_rejects_wrong_mnemonic(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7"), parse_arm("add r5, r5, #1"),
        ])
        assert binding is None

    def test_rejects_wrong_shape(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7, lsl #1"), parse_arm("sub r5, r5, #1"),
        ])
        assert binding is None

    def test_length_mismatch(self):
        assert match_rule(LEA_RULE, [parse_arm("add r1, r1, r0")]) is None

    def test_immediate_binding_used_by_host(self):
        binding = match_rule(LEA_RULE, [
            parse_arm("add r5, r5, r7"), parse_arm("sub r5, r5, #7"),
        ])
        # host disp = -bound immediate
        from repro.isa.operands import Mem

        (mem_op,) = [op for op in LEA_RULE.host[0].operands
                     if isinstance(op, Mem)]
        disp = (mem_op.disp + binding.immediate(mem_op.disp_param)) \
            & 0xFFFFFFFF if mem_op.disp_param else mem_op.disp
        assert disp == (-7) & 0xFFFFFFFF

    def test_aliasing_allowed_when_single_writer(self):
        rule = learn_rule(["add r0, r1, r2"],
                          ["movl %ecx, %eax", "addl %edx, %eax"])
        binding = match_rule(rule, [parse_arm("add r3, r4, r4")])
        assert binding is not None


class TestLabelBinding:
    def test_branch_target_bound(self):
        rule = learn_rule(["cmp r2, r3", "beq .L1"],
                          ["cmpl %ecx, %edx", "je .L1"])
        binding = match_rule(rule, [
            parse_arm("cmp r9, r10"), parse_arm("beq .elsewhere"),
        ])
        assert binding is not None
        assert binding.label == ".elsewhere"


class TestDedup:
    def test_keeps_smallest_host_count(self):
        fat = learn_rule(["add r0, r1, r2"],
                         ["movl %ecx, %eax", "addl %edx, %eax"])
        slim = learn_rule(["add r0, r1, r2"], ["leal (%ecx,%edx), %eax"])
        kept = dedup_rules([fat, slim])
        assert len(kept) == 1
        assert len(kept[0].host) == 1


class TestStore:
    def test_longest_first(self):
        short = learn_rule(["add r1, r1, r0"],
                           ["addl %eax, %edx"])
        store = RuleStore.from_rules([LEA_RULE, short])
        match = store.match_at([
            parse_arm("add r1, r1, r0"), parse_arm("sub r1, r1, #1"),
        ], 0)
        assert match is not None
        assert match.length == 2

    def test_falls_back_to_shorter(self):
        short = learn_rule(["add r1, r1, r0"], ["addl %eax, %edx"])
        store = RuleStore.from_rules([LEA_RULE, short])
        match = store.match_at([
            parse_arm("add r1, r1, r0"), parse_arm("mov r2, r3"),
        ], 0)
        assert match is not None
        assert match.length == 1

    def test_limit_parameter(self):
        store = RuleStore.from_rules([LEA_RULE])
        match = store.match_at([
            parse_arm("add r1, r1, r0"), parse_arm("sub r1, r1, #1"),
        ], 0, limit=1)
        assert match is None

    def test_no_match(self):
        store = RuleStore.from_rules([LEA_RULE])
        assert store.match_at([parse_arm("mvn r0, r1")], 0) is None

    def test_hash_key_is_opcode_mean(self):
        assert LEA_RULE.hash_key() == (
            sum([1, 2]) // 2  # add=1, sub=2 in the ARM opcode table
        )
