"""leave_one_out / dedup_rules: determinism, exclusion, collapse."""

from repro.isa.instruction import Instruction
from repro.isa.operands import Reg
from repro.learning.pipeline import LearningOutcome, leave_one_out
from repro.learning.rule import Rule, dedup_rules


def _rule(mnemonic: str, origin: str, host_len: int = 1,
          line: int = 0) -> Rule:
    return Rule(
        guest=(Instruction(mnemonic, (Reg("p0"), Reg("p0"), Reg("p1"))),),
        host=tuple(
            Instruction("addl", (Reg("p1"), Reg("p0")))
            for _ in range(host_len)
        ),
        params=("p0", "p1"),
        written_params=("p0",),
        temps=(),
        origin=origin,
        line=line,
    )


def _outcomes() -> dict[str, LearningOutcome]:
    return {
        "alpha": LearningOutcome(
            rules=[_rule("add", "alpha"), _rule("sub", "alpha")]
        ),
        "beta": LearningOutcome(
            rules=[_rule("add", "beta"), _rule("eor", "beta")]
        ),
        "gamma": LearningOutcome(rules=[_rule("orr", "gamma")]),
    }


class TestLeaveOneOut:
    def test_excluded_benchmark_contributes_nothing(self):
        rules = leave_one_out(_outcomes(), "alpha")
        assert all(rule.origin != "alpha" for rule in rules)
        # The other benchmarks all still contribute.
        assert {rule.origin for rule in rules} == {"beta", "gamma"}

    def test_unknown_exclusion_keeps_everything(self):
        rules = leave_one_out(_outcomes(), "not-a-benchmark")
        mnemonics = {rule.guest[0].mnemonic for rule in rules}
        assert mnemonics == {"add", "sub", "eor", "orr"}

    def test_deterministic_order(self):
        first = leave_one_out(_outcomes(), "gamma")
        second = leave_one_out(_outcomes(), "gamma")
        assert [str(rule) for rule in first] == [str(rule) for rule in second]
        assert [rule.origin for rule in first] == \
            [rule.origin for rule in second]

    def test_cross_benchmark_duplicates_collapse(self):
        # "add" appears in alpha and beta; leaving gamma out must keep
        # exactly one copy (the first in corpus order: alpha's).
        rules = leave_one_out(_outcomes(), "gamma")
        adds = [rule for rule in rules if rule.guest[0].mnemonic == "add"]
        assert len(adds) == 1
        assert adds[0].origin == "alpha"


class TestDedupRules:
    def test_preserves_first_seen_order(self):
        rules = [_rule("add", "a"), _rule("sub", "a"), _rule("add", "b"),
                 _rule("eor", "a")]
        deduped = dedup_rules(rules)
        assert [rule.guest[0].mnemonic for rule in deduped] == \
            ["add", "sub", "eor"]

    def test_same_input_order_same_output_order(self):
        rules = [_rule("sub", "a"), _rule("add", "a"), _rule("add", "b")]
        assert [str(r) for r in dedup_rules(list(rules))] == \
            [str(r) for r in dedup_rules(list(rules))]

    def test_keeps_the_shortest_host_sequence(self):
        long = _rule("add", "long", host_len=3)
        short = _rule("add", "short", host_len=1)
        deduped = dedup_rules([long, short])
        assert len(deduped) == 1
        assert deduped[0].origin == "short"
        assert len(deduped[0].host) == 1

    def test_ties_keep_the_first(self):
        first = _rule("add", "first", line=10)
        second = _rule("add", "second", line=20)
        deduped = dedup_rules([first, second])
        assert len(deduped) == 1
        assert deduped[0].origin == "first"

    def test_empty(self):
        assert dedup_rules([]) == []
