"""Symbolic verification of rule candidates (Section 3.3)."""

import pytest

from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.verify import VerifyFailure, verify_candidate


def learn(guest_lines, host_lines, allow_param_failure=False):
    pair = SnippetPair(
        "t", 1,
        [parse_arm(line) for line in guest_lines],
        [parse_x86(line) for line in host_lines],
    )
    context = analyze_pair(pair)
    mappings, failure = generate_mappings(context)
    if failure is not None:
        assert allow_param_failure, failure
        from repro.learning.verify import VerifyResult

        return VerifyResult(rule=None, failure=None, detail=str(failure))
    last = None
    for mapping in mappings:
        last = verify_candidate(context, mapping)
        if last.rule is not None:
            return last
    return last


class TestAccepts:
    def test_figure1_lea(self):
        result = learn(
            ["add r1, r1, r0", "sub r1, r1, #1"],
            ["leal -1(%edx,%eax), %edx"],
        )
        assert result.rule is not None
        assert result.rule.length == 2
        assert len(result.rule.host) == 1

    def test_parameterized_immediate_holds_for_all_values(self):
        result = learn(["add r0, r0, #12"], ["addl $12, %eax"])
        rule = result.rule
        assert rule is not None
        # The immediate is a wildcard slot, not the literal 12.
        from repro.isa.operands import SymImm

        assert any(isinstance(op, SymImm) for op in rule.guest[0].operands)

    def test_memory_store_rule(self):
        result = learn(["str r1, [r6]"], ["movl %eax, 0x34(%esi)"])
        assert result.rule is not None

    def test_branch_rule_with_cc_info(self):
        result = learn(
            ["cmp r2, r3", "blo .L"],
            ["cmpl %ecx, %edx", "jb .L"],
        )
        rule = result.rule
        assert rule is not None
        assert rule.has_branch
        assert rule.cc_info.get("Z") == "direct"
        assert rule.cc_info.get("C") == "inverted"  # ARM C = NOT x86 CF
        assert rule.guest_flags_written == ("N", "Z", "C", "V")

    def test_host_temp_register(self):
        # Host needs a scratch the guest doesn't have.
        result = learn(
            ["sub r0, r8, r4", "add r0, r1, r0"],
            ["movl %ebp, %ecx", "subl %esi, %ecx", "addl %eax, %ecx"],
        )
        assert result.rule is not None


class TestRejects:
    def test_wrong_operation(self):
        result = learn(["add r0, r0, r1"], ["subl %ecx, %eax"])
        assert result.rule is None
        assert result.failure is VerifyFailure.REGISTERS

    def test_wrong_immediate_relation(self):
        result = learn(["add r0, r0, #5"], ["addl $6, %eax"])
        assert result.rule is None

    def test_different_branch_conditions(self):
        result = learn(
            ["cmp r2, r3", "blt .L"],
            ["cmpl %ecx, %edx", "jb .L"],  # signed vs unsigned!
        )
        assert result.rule is None
        assert result.failure is VerifyFailure.BRANCH

    def test_branch_condition_signedness_overflow_case(self):
        # N-flag (mi) is NOT signed-less-than; jl uses SF^OF.
        result = learn(
            ["cmp r2, r3", "bmi .L"],
            ["cmpl %ecx, %edx", "jl .L"],
        )
        assert result.rule is None

    def test_store_value_mismatch_rejected(self):
        # Rejected in parameterization already (live-in count mismatch);
        # either way no rule may come out of this pair.
        result = learn(["str r1, [r6]"], ["movl $0, (%esi)"],
                       allow_param_failure=True)
        assert result.rule is None

    def test_missing_store_on_host_rejected(self):
        result = learn(
            ["str r1, [r6]", "add r0, r1, r1"],
            ["leal (%eax,%eax), %ecx"],
            allow_param_failure=True,
        )
        assert result.rule is None

    def test_store_value_mismatch_in_verification(self):
        # Host stores the un-doubled value: rejected during symbolic
        # verification (as a memory or register mismatch, depending on
        # which check trips first).
        strict = learn(
            ["add r0, r1, r1", "str r0, [r6]"],
            ["leal (%eax,%eax), %ecx", "movl %eax, (%esi)"],
        )
        assert strict.rule is None
        assert strict.failure in (VerifyFailure.MEMORY,
                                  VerifyFailure.REGISTERS)

    def test_pure_memory_mismatch(self):
        # Identical register behaviour, only the stored VALUE differs.
        strict = learn(
            ["str r1, [r6]", "str r1, [r6, #4]"],
            ["movl %eax, (%esi)", "movl %esi, 0x4(%esi)"],
        )
        assert strict.rule is None
        assert strict.failure is VerifyFailure.MEMORY


class TestFlagAnalysis:
    def test_adds_carry_is_direct(self):
        result = learn(
            ["adds r0, r0, r1"],
            ["addl %ecx, %eax"],
        )
        rule = result.rule
        assert rule is not None
        # After addition, ARM C == x86 CF (both are the carry out).
        assert rule.cc_info.get("C") == "direct"
        assert rule.cc_info.get("V") == "direct"
        assert rule.cc_info.get("N") == "direct"
        assert rule.cc_info.get("Z") == "direct"

    def test_unemulated_flags_reported(self):
        # testl computes flags of AND; ARM cmp computes flags of SUB.
        result = learn(["cmp r0, #0", "beq .L"],
                       ["testl %eax, %eax", "je .L"])
        rule = result.rule
        assert rule is not None
        # Z and N agree (x - 0), but C is borrow-of-0 vs cleared-by-test:
        # ARM C after cmp #0 is always 1; x86 CF after test is 0.
        assert rule.cc_info.get("C") == "inverted" or \
            "C" in rule.unemulated_flags
