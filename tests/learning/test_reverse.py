"""Reverse-direction learning (x86 guest -> ARM host) and Section 5
host-ISA constraints."""

import pytest

from repro.host_x86 import parse_instruction as parse_x86
from repro.guest_arm import parse_instruction as parse_arm
from repro.learning import (
    X86_TO_ARM,
    HostConstraintError,
    instantiate_host,
    learn_rules,
    match_rule,
)
from repro.learning.direction import arm_host_constraints
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.store import RuleStore
from repro.learning.verify import verify_candidate
from repro.minic import compile_source

SOURCE = """
int a[16];
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 16) {
    a[i] = i * 4 + 2;
    s = s + a[i] - 1;
    i += 1;
  }
  return s;
}
"""


def learn_reverse(guest_lines, host_lines):
    pair = SnippetPair(
        "t", 1,
        [parse_x86(line) for line in guest_lines],
        [parse_arm(line) for line in host_lines],
    )
    context = analyze_pair(pair, X86_TO_ARM)
    mappings, failure = generate_mappings(context)
    assert failure is None, failure
    for mapping in mappings:
        result = verify_candidate(context, mapping)
        if result.rule is not None:
            return result.rule
    raise AssertionError(f"no rule: {result.failure} {result.detail}")


class TestReverseLearning:
    def test_whole_program(self):
        x86 = compile_source(SOURCE, "x86", 2, "llvm")
        arm = compile_source(SOURCE, "arm", 2, "llvm")
        outcome = learn_rules(x86, arm, direction=X86_TO_ARM)
        assert outcome.report.rules > 0
        assert all(r.direction == "x86-arm" for r in outcome.rules)

    def test_figure_4b_reversed(self):
        """The paper: 'the same mapping could be concluded even if x86
        is the guest ISA and ARM is the host ISA'."""
        rule = learn_reverse(
            ["movl $0x70f0000, %ecx"],
            ["mov r1, #983040", "orr r1, r1, #117440512"],
        )
        assert rule.length == 1
        assert len(rule.host) == 2

    def test_lea_reversed(self):
        rule = learn_reverse(
            ["leal -1(%edx,%eax), %edx"],
            ["add r1, r1, r0", "sub r1, r1, #1"],
        )
        assert rule.direction == "x86-arm"

    def test_movzbl_reversed_binds_low8(self):
        rule = learn_reverse(
            ["movzbl %al, %eax"],
            ["and r0, r0, #255"],
        )
        # Guest template uses a low-byte parameter; match against a
        # different low8 register binds the parent.
        binding = match_rule(rule, [parse_x86("movzbl %cl, %ecx")])
        assert binding is not None
        assert binding.regs["p0"] == "ecx"

    def test_branch_reversed_flags(self):
        rule = learn_reverse(
            ["cmpl %ecx, %edx", "jb .L"],
            ["cmp r2, r3", "blo .L"],
        )
        assert rule.has_branch
        # x86 guest CF is emulated (inverted) by ARM host C.
        assert rule.cc_info.get("CF") == "inverted"
        assert rule.cc_info.get("ZF") == "direct"

    def test_store_direction_homogeneous(self):
        forward = learn_rules(
            compile_source(SOURCE, "arm", 2, "llvm"),
            compile_source(SOURCE, "x86", 2, "llvm"),
        ).rules
        reverse = learn_rules(
            compile_source(SOURCE, "x86", 2, "llvm"),
            compile_source(SOURCE, "arm", 2, "llvm"),
            direction=X86_TO_ARM,
        ).rules
        store = RuleStore.from_rules(forward)
        with pytest.raises(ValueError):
            store.insert(reverse[0])


class TestArmHostConstraints:
    def test_encodable_immediate_ok(self):
        arm_host_constraints(parse_arm("add r0, r0, #255"))
        arm_host_constraints(parse_arm("mov r0, #0xff000000"))

    def test_unencodable_immediate_rejected(self):
        with pytest.raises(HostConstraintError):
            arm_host_constraints(parse_arm("add r0, r0, #0x12345678"))

    def test_offset_range(self):
        arm_host_constraints(parse_arm("ldr r0, [r1, #4095]"))
        with pytest.raises(HostConstraintError):
            arm_host_constraints(parse_arm("ldr r0, [r1, #4096]"))

    def test_shift_amounts_exempt(self):
        arm_host_constraints(parse_arm("lsl r0, r1, #17"))

    def test_instantiation_checks_immediates(self):
        """Section 5: assembling a reverse rule with an immediate the
        ARM encoding cannot express must fail loudly."""
        rule = learn_reverse(["addl $12, %eax"], ["add r0, r0, #12"])
        good = match_rule(rule, [parse_x86("addl $200, %eax")])
        assert good is not None
        instrs = instantiate_host(rule, good, {"p0": "r4"})
        assert str(instrs[0]) == "add r4, r4, #200"

        bad = match_rule(rule, [parse_x86("addl $305419896, %eax")])
        assert bad is not None  # matching succeeds ...
        with pytest.raises(HostConstraintError):  # ... assembling fails
            instantiate_host(rule, bad, {"p0": "r4"})


class TestEngineGuard:
    def test_dbt_rejects_reverse_store(self):
        from repro.dbt.engine import DBTEngine, DBTError

        source = """
        int main(void) {
          int s = 0;
          int i = 0;
          while (i < 4) {
            s = s + i - 1;
            i += 1;
          }
          return s;
        }
        """
        reverse_rules = learn_rules(
            compile_source(source, "x86"),
            compile_source(source, "arm"),
            direction=X86_TO_ARM,
        ).rules
        store = RuleStore.from_rules(reverse_rules)
        guest = compile_source(source, "arm")
        with pytest.raises(DBTError):
            DBTEngine(guest, "rules", store)
