"""Rule repository serialization round trips."""

import pytest

from repro.learning import learn_rules
from repro.learning.serialize import (
    RuleFormatError,
    dumps_rules,
    loads_rules,
)
from repro.learning.store import RuleStore
from repro.minic import compile_source

SOURCE = """
int a[8];
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 8) {
    a[i] = i * 4 + 1;
    s = s + a[i] - 1;
    i += 1;
  }
  return s;
}
"""


@pytest.fixture(scope="module")
def rules():
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host, benchmark="ser").rules


class TestRoundTrip:
    def test_rules_survive_roundtrip(self, rules):
        text = dumps_rules(rules)
        restored = loads_rules(text)
        assert restored == rules

    def test_metadata_preserved(self, rules):
        restored = loads_rules(dumps_rules(rules))
        for before, after in zip(rules, restored):
            assert after.origin == before.origin
            assert after.cc_info == before.cc_info
            assert after.line == before.line
            assert after.temps == before.temps

    def test_restored_rules_still_translate(self, rules):
        from repro.dbt.direct import run_arm_program
        from repro.dbt.engine import run_dbt

        restored = loads_rules(dumps_rules(rules))
        store = RuleStore.from_rules(restored)
        guest = compile_source(SOURCE, "arm", 2, "llvm")
        expected = run_arm_program(guest).return_value
        result = run_dbt(guest, "rules", store)
        assert result.return_value == expected
        assert result.stats.dynamic_coverage > 0

    def test_hash_keys_stable(self, rules):
        restored = loads_rules(dumps_rules(rules))
        for before, after in zip(rules, restored):
            assert after.hash_key() == before.hash_key()


class TestErrors:
    def test_not_a_repository(self):
        with pytest.raises(RuleFormatError):
            loads_rules('{"format": "something-else", "version": 1}')

    def test_wrong_version(self):
        with pytest.raises(RuleFormatError):
            loads_rules(
                '{"format": "repro-dbt-rules", "version": 99, "rules": []}'
            )

    def test_missing_field(self):
        with pytest.raises(RuleFormatError):
            loads_rules(
                '{"format": "repro-dbt-rules", "version": 1,'
                ' "rules": [{"guest": []}]}'
            )


class TestCli:
    def test_learn_cli(self, tmp_path, capsys):
        from repro.learning.cli import main

        source_file = tmp_path / "p.c"
        source_file.write_text(SOURCE)
        output = tmp_path / "rules.json"
        assert main([str(source_file), "-o", str(output), "--print"]) == 0
        assert output.exists()
        restored = loads_rules(output.read_text())
        assert restored
