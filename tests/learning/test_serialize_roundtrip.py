"""Property test: ``rule_from_json(rule_to_json(r)) == r`` everywhere.

Exercises the codec across two real learned corpora (every rule the
pipeline produces for mcf and libquantum) plus hand-built rules hitting
the operand corners a small corpus may not reach: nested immediate
ASTs, parameterized memory displacements, shifted registers, labels,
and negative immediates.
"""

import pytest

from repro.benchsuite import build_learning_pair
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg, SymImm
from repro.learning.pipeline import learn_rules
from repro.learning.rule import Rule
from repro.learning.serialize import (
    rule_from_json,
    rule_to_json,
)


def _assert_roundtrip(rule: Rule) -> None:
    restored = rule_from_json(rule_to_json(rule))
    assert restored == rule
    # equality ignores provenance metadata; check it separately
    assert restored.origin == rule.origin
    assert restored.line == rule.line
    assert restored.cc_info == rule.cc_info
    # a second trip must be a fixed point
    assert rule_to_json(restored) == rule_to_json(rule)


@pytest.mark.parametrize("bench", ["mcf", "libquantum"])
def test_learned_corpus_roundtrips(bench):
    guest, host = build_learning_pair(bench)
    rules = learn_rules(guest, host, benchmark=bench).rules
    assert rules, f"{bench} learned no rules"
    for rule in rules:
        _assert_roundtrip(rule)


def _rule(guest, host, **kwargs) -> Rule:
    defaults = dict(
        params=("p0",),
        written_params=("p0",),
        temps=(),
        origin="edge",
        line=1,
    )
    defaults.update(kwargs)
    return Rule(guest=tuple(guest), host=tuple(host), **defaults)


EDGE_RULES = [
    # nested immediate AST on both sides
    _rule(
        [Instruction("add", (Reg("p0"), Reg("p0"),
                             SymImm(("slot", "ig0"))))],
        [Instruction("add", (Reg("p0"),
                             SymImm(("add", ("slot", "ig0"),
                                     ("const", 4)))))],
    ),
    # deeply nested unary/binary AST with negative literal
    _rule(
        [Instruction("sub", (Reg("p0"), Reg("p0"),
                             SymImm(("neg", ("slot", "ig0")))))],
        [Instruction("sub", (Reg("p0"),
                             SymImm(("mul", ("not", ("slot", "ig0")),
                                     ("const", -8)))))],
    ),
    # parameterized memory displacement (disp + disp_param AST)
    _rule(
        [Instruction("ldr", (Reg("p0"),
                             Mem(base=Reg("p1"), disp=-16,
                                 disp_param=("slot", "ig0"))))],
        [Instruction("mov", (Reg("p0"),
                             Mem(base=Reg("p1"), index=Reg("p2"),
                                 scale=4, disp=8,
                                 disp_param=("add", ("slot", "ig0"),
                                             ("const", 12)))))],
        params=("p0", "p1", "p2"),
    ),
    # base-less absolute memory operand
    _rule(
        [Instruction("ldr", (Reg("p0"), Mem(disp=0x1000)))],
        [Instruction("mov", (Reg("p0"), Mem(disp=0x1000)))],
    ),
    # every shift kind on the flexible second operand
    *[
        _rule(
            [Instruction("add", (Reg("p0"), Reg("p0"),
                                 ShiftedReg(Reg("p1"), shift, 3)))],
            [Instruction("lea", (Reg("p0"),
                                 Mem(base=Reg("p0"), index=Reg("p1"),
                                     scale=8)))],
            params=("p0", "p1"),
        )
        for shift in ("lsl", "lsr", "asr")
    ],
    # branch rule with a label operand and condition-code metadata
    _rule(
        [Instruction("cmp", (Reg("p0"), Imm(0))),
         Instruction("bne", (Label("L42"),))],
        [Instruction("cmp", (Reg("p0"), Imm(0))),
         Instruction("jne", (Label("L42"),))],
        written_params=(),
        guest_flags_written=("N", "Z", "C", "V"),
        cc_info={"Z": "direct", "N": "inverted"},
        has_branch=True,
    ),
    # negative and extreme immediates
    _rule(
        [Instruction("mov", (Reg("p0"), Imm(-(2 ** 31))))],
        [Instruction("mov", (Reg("p0"), Imm(2 ** 31 - 1)))],
    ),
    # host-only scratch registers
    _rule(
        [Instruction("mul", (Reg("p0"), Reg("p0"), Reg("p1")))],
        [Instruction("mov", (Reg("t0"), Reg("p1"))),
         Instruction("imul", (Reg("p0"), Reg("t0")))],
        params=("p0", "p1"),
        temps=("t0",),
    ),
]


@pytest.mark.parametrize("index", range(len(EDGE_RULES)))
def test_edge_case_rules_roundtrip(index):
    _assert_roundtrip(EDGE_RULES[index])


def test_empty_metadata_roundtrips():
    rule = _rule(
        [Instruction("nop", ())],
        [Instruction("nop", ())],
        params=(),
        written_params=(),
        origin="",
        line=0,
    )
    _assert_roundtrip(rule)
