"""Parallel learning: equivalence, dedup savings, cache acceptance.

These tests pin the PR's acceptance criteria on the full benchsuite
corpus: the parallel path is byte-identical to the sequential one
(rule sets and every deterministic report field), pre-verification
dedup saves solver invocations even on a cold run, and a warm
persistent cache eliminates >= 90% of them.
"""

import pytest

from repro.benchsuite import BENCHMARK_NAMES, build_learning_pair
from repro.learning.cache import VerificationCache
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import learn_corpus


@pytest.fixture(scope="module")
def builds():
    return {name: build_learning_pair(name) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="module")
def sequential(builds):
    return learn_corpus(builds)


def _total(outcomes, field):
    return sum(getattr(o.report, field) for o in outcomes.values())


class TestEquivalence:
    def test_parallel_matches_sequential_on_full_corpus(self, builds,
                                                        sequential):
        parallel = learn_corpus_parallel(builds, jobs=2)
        assert list(parallel) == list(sequential)
        for name in builds:
            assert parallel[name].rules == sequential[name].rules
            assert [str(rule) for rule in parallel[name].rules] == \
                [str(rule) for rule in sequential[name].rules]
            assert parallel[name].report.count_signature() == \
                sequential[name].report.count_signature()

    def test_jobs_one_falls_back_to_sequential(self, builds, sequential):
        fallback = learn_corpus_parallel(builds, jobs=1)
        for name in builds:
            assert fallback[name].rules == sequential[name].rules
            assert fallback[name].report.count_signature() == \
                sequential[name].report.count_signature()

    def test_empty_corpus(self):
        assert learn_corpus_parallel({}, jobs=4) == {}


class TestDedup:
    def test_cold_run_dedup_saves_solver_calls(self, sequential):
        # Acceptance: pre-verification dedup alone reduces solver
        # invocations on a cold full-corpus run.
        assert _total(sequential, "dedup_saved_calls") > 0

    def test_accounting_covers_every_candidate(self, sequential):
        for outcome in sequential.values():
            report = outcome.report
            accounted = (report.prep_failures + report.param_failures
                         + report.verify_failures + report.rules)
            assert accounted <= report.total_sequences


class TestPersistentCache:
    def test_warm_cache_eliminates_verifications(self, builds, sequential,
                                                 tmp_path):
        cold_cache = VerificationCache.at_dir(tmp_path)
        cold = learn_corpus(builds, cache=cold_cache)
        cold_calls = _total(cold, "verify_calls")
        assert cold_calls > 0
        assert _total(cold, "cache_misses") == len(cold_cache)

        warm_cache = VerificationCache.at_dir(tmp_path)
        assert len(warm_cache) == len(cold_cache)
        warm = learn_corpus(builds, cache=warm_cache)
        warm_calls = _total(warm, "verify_calls")
        # Acceptance: >= 90% fewer solver invocations with a warm cache.
        assert warm_calls <= 0.1 * cold_calls
        assert _total(warm, "cache_hits") > 0
        # Identical results either way.
        for name in builds:
            assert warm[name].rules == sequential[name].rules

    def test_parallel_run_also_uses_the_cache(self, builds, sequential,
                                              tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cold = learn_corpus_parallel(builds, jobs=2, cache=cache)
        assert _total(cold, "cache_misses") > 0

        warm = learn_corpus_parallel(
            builds, jobs=2, cache=VerificationCache.at_dir(tmp_path)
        )
        assert _total(warm, "verify_calls") == 0
        for name in builds:
            assert cold[name].rules == sequential[name].rules
            assert warm[name].rules == sequential[name].rules
