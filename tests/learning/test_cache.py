"""Persistent verification cache: round-trip, counters, invalidation."""

from repro.learning.cache import SEMANTICS_VERSION, VerificationCache
from repro.learning.canon import CandidateOutcome
from repro.learning.verify import VerifyFailure
from repro.isa.instruction import Instruction
from repro.isa.operands import Reg
from repro.learning.rule import Rule


def _rule() -> Rule:
    return Rule(
        guest=(Instruction("add", (Reg("p0"), Reg("p0"), Reg("p1"))),),
        host=(Instruction("addl", (Reg("p1"), Reg("p0"))),),
        params=("p0", "p1"),
        written_params=("p0",),
        temps=(),
    )


class TestRoundTrip:
    def test_rule_outcome_survives_reload(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put("k1", CandidateOutcome(rule=_rule(), calls=2))
        cache.save()
        reloaded = VerificationCache.at_dir(tmp_path)
        outcome = reloaded.get("k1")
        assert outcome is not None
        assert outcome.rule == _rule()
        assert outcome.calls == 2

    def test_failure_outcome_survives_reload(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put(
            "k2",
            CandidateOutcome(failure=VerifyFailure.REGISTERS, calls=5),
        )
        cache.save()
        outcome = VerificationCache.at_dir(tmp_path).get("k2")
        assert outcome.failure is VerifyFailure.REGISTERS
        assert outcome.rule is None
        assert outcome.calls == 5

    def test_save_is_noop_when_clean(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.save()  # nothing written: no entries, not dirty
        assert not cache.path.exists()


class TestCounters:
    def test_hit_and_miss_counting(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put("k", CandidateOutcome(failure=VerifyFailure.OTHER, calls=1))
        assert cache.get("k") is not None
        assert cache.get("absent") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_does_not_touch_counters(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put("k", CandidateOutcome(failure=VerifyFailure.OTHER, calls=1))
        assert cache.peek("k") is not None
        assert cache.peek("absent") is None
        assert cache.stats.lookups == 0


class TestInvalidation:
    def test_semantics_bump_discards_entries_as_stale(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put("k", CandidateOutcome(failure=VerifyFailure.OTHER, calls=1))
        cache.save()
        newer = VerificationCache(
            cache.path, semantics_version=SEMANTICS_VERSION + 1
        )
        assert len(newer) == 0
        assert newer.stats.stale == 1

    def test_explicit_invalidate(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path)
        cache.put("k", CandidateOutcome(failure=VerifyFailure.OTHER, calls=1))
        before = cache.semantics_version
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.stale == 1
        assert cache.semantics_version == before + 1
        assert cache.get("k") is None

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "verification-cache.json"
        path.write_text("{ not json")
        cache = VerificationCache(path)
        assert len(cache) == 0
        # The corrupt document is quarantined aside, not destroyed.
        assert cache.stats.corrupt == 1
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{ not json"
        cache.put("k", CandidateOutcome(failure=VerifyFailure.OTHER, calls=1))
        cache.save()
        assert len(VerificationCache(path)) == 1

    def test_foreign_document_ignored(self, tmp_path):
        path = tmp_path / "verification-cache.json"
        path.write_text('{"format": "something-else", "entries": {"x": 1}}')
        assert len(VerificationCache(path)) == 0
