"""Template construction: parameter classes, temps, conflicts."""

import pytest

from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.isa.operands import Reg, SymImm
from repro.learning.extract import SnippetPair
from repro.learning.paramize import InitialMapping, analyze_pair
from repro.learning.template import TemplateError, build_templates


def make_context(guest_lines, host_lines):
    pair = SnippetPair(
        "t", 1,
        [parse_arm(line) for line in guest_lines],
        [parse_x86(line) for line in host_lines],
    )
    return analyze_pair(pair)


class TestParameterClasses:
    def test_shared_params_span_both_sides(self):
        context = make_context(["add r1, r1, r0"], ["addl %eax, %edx"])
        mapping = InitialMapping({"r1": "edx", "r0": "eax"}, {})
        templates = build_templates(context, mapping, {"r1": "edx"}, (),
                                    ("r1",))
        assert templates.guest_of_param["p0"] == "r1"
        assert templates.host_of_param["p0"] == "edx"
        assert templates.written_params == ("p0",)

    def test_host_temps_get_t_names(self):
        context = make_context(
            ["add r0, r1, r2"],
            ["movl %ecx, %eax", "addl %edx, %eax"],
        )
        mapping = InitialMapping({"r1": "ecx", "r2": "edx"}, {})
        templates = build_templates(
            context, mapping, {"r0": "eax"}, ("ebx",), ("r0",)
        )
        assert templates.temps == ("t0",)

    def test_initial_final_conflict_rejected(self):
        context = make_context(["add r1, r1, r0"], ["addl %eax, %edx"])
        mapping = InitialMapping({"r1": "edx", "r0": "eax"}, {})
        with pytest.raises(TemplateError):
            build_templates(context, mapping, {"r1": "eax"}, (), ("r1",))

    def test_double_host_mapping_rejected(self):
        context = make_context(
            ["add r1, r1, r0", "mov r2, r1"],
            ["addl %eax, %edx"],
        )
        mapping = InitialMapping({"r1": "edx", "r0": "eax"}, {})
        with pytest.raises(TemplateError):
            build_templates(
                context, mapping, {"r1": "edx", "r2": "edx"}, (),
                ("r1", "r2"),
            )

    def test_unmapped_register_rejected(self):
        context = make_context(["add r1, r1, r0"], ["addl %eax, %edx"])
        mapping = InitialMapping({"r1": "edx"}, {})  # r0 unmapped
        with pytest.raises(TemplateError):
            build_templates(context, mapping, {"r1": "edx"}, (), ("r1",))


class TestOperandTemplating:
    def test_guest_imm_parameterized_only_when_referenced(self):
        context = make_context(["add r1, r1, #12"], ["addl $12, %edx"])
        mapping = InitialMapping(
            {"r1": "edx"}, {"ih0": ("slot", "ig0")}, {"ig0"}
        )
        templates = build_templates(context, mapping, {"r1": "edx"}, (),
                                    ("r1",))
        guest_ops = templates.guest[0].operands
        assert any(isinstance(op, SymImm) for op in guest_ops)

    def test_concrete_imm_without_relation(self):
        context = make_context(["add r1, r1, #12"], ["addl $12, %edx"])
        mapping = InitialMapping({"r1": "edx"}, {}, set())
        templates = build_templates(context, mapping, {"r1": "edx"}, (),
                                    ("r1",))
        assert not any(
            isinstance(op, SymImm) for op in templates.guest[0].operands
        )

    def test_host_low8_becomes_dotted_param(self):
        context = make_context(
            ["and r0, r0, #255"], ["movzbl %al, %eax"]
        )
        mapping = InitialMapping({"r0": "eax"}, {}, set())
        templates = build_templates(context, mapping, {"r0": "eax"}, (),
                                    ("r0",))
        assert templates.host[0].operands[0] == Reg("p0.b")

    def test_labels_become_l0(self):
        context = make_context(
            ["cmp r0, r1", "beq .somewhere"],
            ["cmpl %ecx, %eax", "je .somewhere"],
        )
        mapping = InitialMapping({"r0": "eax", "r1": "ecx"}, {}, set())
        templates = build_templates(context, mapping, {}, (), ())
        assert str(templates.guest[-1].operands[0]) == "L0"
        assert str(templates.host[-1].operands[0]) == "L0"
        assert templates.has_branch
