"""Indexed (mnemonic-trie) vs legacy mean-hash matcher equivalence.

The store promises both matchers are *exact*: identical longest match
from ``match_at`` and identical full hit set from ``matches_at`` for
any store contents, any block, any position — including tie-breaks
between equal-length rules.  These properties are exercised over the
real learned-rule population with randomized blocks and randomized
insertion orders, plus incremental install/remove churn (the
hot-install path never rebuilds the index).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.learning import learn_rules
from repro.learning.store import MATCHER_MODES, RuleStore
from repro.minic import compile_source

from tests.learning.test_store_properties import SOURCE, _concretize


@pytest.fixture(scope="module")
def rules():
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host).rules


@pytest.fixture(scope="module")
def concrete_windows(rules):
    windows = [w for w in map(_concretize, rules) if w is not None]
    assert windows, "no concretizable rules learned"
    return windows


def _random_block(concrete_windows, rng, length=24):
    """A guest block stitched from concretized rule windows."""
    block = []
    while len(block) < length:
        block.extend(rng.choice(concrete_windows))
    return block[:length]


def _match_key(match):
    if match is None:
        return None
    return (match.rule, match.length, match.binding.regs,
            match.binding.slots, match.binding.label)


def _paired_stores(rules, order=None):
    ordered = list(rules) if order is None else order
    return {
        mode: RuleStore.from_rules(ordered, matcher=mode)
        for mode in MATCHER_MODES
    }


class TestMatcherEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), start=st.integers(0, 23))
    def test_match_at_identical(self, rules, concrete_windows, seed,
                                start):
        stores = _paired_stores(rules)
        block = _random_block(concrete_windows, random.Random(seed))
        results = {
            mode: _match_key(store.match_at(block, start))
            for mode, store in stores.items()
        }
        assert results["indexed"] == results["hash"]

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), start=st.integers(0, 23))
    def test_matches_at_identical(self, rules, concrete_windows, seed,
                                  start):
        stores = _paired_stores(rules)
        block = _random_block(concrete_windows, random.Random(seed))
        results = {
            mode: [_match_key(m) for m in store.matches_at(block, start)]
            for mode, store in stores.items()
        }
        assert results["indexed"] == results["hash"]

    def test_matches_at_longest_first_and_contains_match_at(
            self, rules, concrete_windows):
        store = RuleStore.from_rules(rules)
        rng = random.Random(7)
        for _ in range(20):
            block = _random_block(concrete_windows, rng)
            for start in range(len(block)):
                all_matches = store.matches_at(block, start)
                lengths = [m.length for m in all_matches]
                assert lengths == sorted(lengths, reverse=True)
                best = store.match_at(block, start)
                if all_matches:
                    assert _match_key(best) == _match_key(all_matches[0])
                else:
                    assert best is None


class TestInsertionOrderInvariance:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_shuffled_insertion_same_matches(self, rules,
                                             concrete_windows, seed):
        """Match results cannot depend on the order rules arrived in —
        a hot-installed store must behave like an offline-built one."""
        rng = random.Random(seed)
        shuffled = list(rules)
        rng.shuffle(shuffled)
        for mode in MATCHER_MODES:
            base = RuleStore.from_rules(rules, matcher=mode)
            reordered = RuleStore.from_rules(shuffled, matcher=mode)
            block = _random_block(concrete_windows, rng)
            for start in range(len(block)):
                a = base.match_at(block, start)
                b = reordered.match_at(block, start)
                if a is None:
                    assert b is None
                else:
                    # Equal-length ties may legitimately pick a
                    # different (semantically interchangeable) rule,
                    # but the covered window must be identical.
                    assert b is not None
                    assert a.length == b.length

    def test_buckets_sorted_length_descending(self, rules):
        store = RuleStore.from_rules(rules)
        for bucket in store._buckets.values():
            lengths = [rule.length for rule in bucket]
            assert lengths == sorted(lengths, reverse=True)


class TestIncrementalIndex:
    def test_insert_then_remove_round_trip(self, rules, concrete_windows):
        for mode in MATCHER_MODES:
            store = RuleStore(matcher=mode)
            for rule in rules:
                store.insert(rule)
            full = len(store)
            assert full == len(RuleStore.from_rules(rules, matcher=mode))
            victim = rules[0]
            assert store.remove(victim) is True
            assert store.remove(victim) is False
            concrete = _concretize(victim)
            if concrete is not None:
                match = store.match_at(concrete, 0)
                assert match is None or match.rule != victim
            # Re-install restores matching through the same index.
            assert store.insert(victim) is True
            if concrete is not None:
                assert store.match_at(concrete, 0) is not None

    def test_duplicate_insert_idempotent(self, rules):
        for mode in MATCHER_MODES:
            store = RuleStore.from_rules(rules, matcher=mode)
            before = len(store)
            for rule in rules:
                assert store.insert(rule) is False
            assert len(store) == before
            assert len(store.all_rules()) == before

    def test_incremental_equals_bulk(self, rules, concrete_windows):
        """Hot-install churn (install half, then the rest) converges to
        the same matcher behaviour as a bulk-built store."""
        half = len(rules) // 2
        rng = random.Random(3)
        for mode in MATCHER_MODES:
            bulk = RuleStore.from_rules(rules, matcher=mode)
            churned = RuleStore.from_rules(rules[:half], matcher=mode)
            churned.install(rules[half:])
            block = _random_block(concrete_windows, rng)
            for start in range(len(block)):
                a = bulk.match_at(block, start)
                b = churned.match_at(block, start)
                assert _match_key(a) == _match_key(b)


def test_unknown_matcher_rejected():
    with pytest.raises(ValueError):
        RuleStore(matcher="bogus")
