"""RuleStore properties over the real learned-rule population."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.guest_arm import isa as arm_isa
from repro.learning import learn_rules
from repro.learning.rule import match_rule
from repro.learning.store import RuleStore
from repro.minic import compile_source

SOURCE = """
int a[16];
int mix(int x, int y) { return (x + y) - (x & y); }
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 16) {
    a[i] = mix(i, s);
    s = s + a[i] - 1;
    if (s > 500) {
      s -= 100;
    }
    i += 1;
  }
  return s;
}
"""


@pytest.fixture(scope="module")
def rules():
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host).rules


@pytest.fixture(scope="module")
def store(rules):
    return RuleStore.from_rules(rules)


class TestInvariants:
    def test_every_rule_findable_from_its_own_guest(self, rules, store):
        """Self-retrieval: matching a rule's own guest template rendered
        concrete must find *some* rule of at least that length."""
        for rule in rules:
            concrete = _concretize(rule)
            if concrete is None:
                continue
            match = store.match_at(concrete, 0)
            assert match is not None, rule
            assert match.length >= 1

    def test_hash_buckets_hold_only_matching_keys(self, store):
        for key, bucket in store._buckets.items():
            for rule in bucket:
                assert rule.hash_key() == key

    def test_match_results_verify_against_hash(self, rules, store):
        for rule in rules:
            concrete = _concretize(rule)
            if concrete is None:
                continue
            ids = [arm_isa.opcode_id(i) for i in concrete]
            match = store.match_at(concrete, 0)
            assert match is not None
            matched_ids = ids[: match.length]
            assert match.rule.hash_key() == \
                sum(matched_ids) // len(matched_ids)

    def test_all_rules_retrievable(self, rules, store):
        assert sorted(r.guest_signature() for r in store.all_rules()) == \
            sorted(r.guest_signature() for r in rules)


def _concretize(rule):
    """Render a rule's guest template as concrete instructions."""
    from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg, SymImm

    regs = {}
    pool = iter(f"r{i}" for i in range(11))

    def reg(name):
        if name not in regs:
            regs[name] = next(pool)
        return Reg(regs[name])

    instrs = []
    for template in rule.guest:
        ops = []
        for op in template.operands:
            if isinstance(op, Reg):
                ops.append(reg(op.name))
            elif isinstance(op, SymImm):
                ops.append(Imm(12))
            elif isinstance(op, ShiftedReg):
                ops.append(ShiftedReg(reg(op.reg.name), op.shift, op.amount))
            elif isinstance(op, Mem):
                ops.append(Mem(
                    reg(op.base.name) if op.base else None,
                    reg(op.index.name) if op.index else None,
                    op.scale,
                    12 if op.disp_param is not None else op.disp,
                ))
            elif isinstance(op, (Imm, Label)):
                ops.append(op)
            else:
                return None
        instrs.append(template.with_operands(tuple(ops)))
    return instrs


@settings(max_examples=30, deadline=None)
@given(start=st.integers(0, 3), limit=st.integers(1, 4))
def test_limit_monotone(store, rules, start, limit):
    """A larger limit never yields a shorter match."""
    concrete = None
    for rule in rules:
        if rule.length >= 2:
            concrete = _concretize(rule)
            if concrete is not None:
                break
    if concrete is None or start >= len(concrete):
        return
    small = store.match_at(concrete, start, limit=limit)
    large = store.match_at(concrete, start, limit=limit + 1)
    if small is not None and large is not None:
        assert large.length >= small.length
