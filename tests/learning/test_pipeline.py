"""End-to-end learning pipeline + leave-one-out protocol."""

import pytest

from repro.learning import learn_rules
from repro.learning.pipeline import LearningReport, leave_one_out
from repro.learning.rule import dedup_rules
from repro.minic import compile_source

SOURCE = """
int data[16];
int process(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 16) {
    data[i] = i * 3;
    i += 1;
  }
  return process(data, 16);
}
"""


@pytest.fixture(scope="module")
def outcome():
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host, benchmark="unit")


class TestPipeline:
    def test_rules_learned(self, outcome):
        assert outcome.report.rules == len(outcome.rules) > 0

    def test_accounting_adds_up(self, outcome):
        report = outcome.report
        accounted = (report.prep_failures + report.param_failures
                     + report.verify_failures + report.rules)
        # Pairs whose line exists on only one side are not counted as
        # failures, so accounted <= total.
        assert accounted <= report.total_sequences
        assert report.total_sequences > 0

    def test_rules_are_deduplicated(self, outcome):
        signatures = [rule.guest_signature() for rule in outcome.rules]
        assert len(signatures) == len(set(signatures))

    def test_timing_recorded(self, outcome):
        assert outcome.report.learn_seconds > 0
        assert 0 <= outcome.report.verify_seconds <= \
            outcome.report.learn_seconds

    def test_origin_recorded(self, outcome):
        assert all(rule.origin == "unit" for rule in outcome.rules)

    def test_stage_timings_recorded(self, outcome):
        report = outcome.report
        assert report.extract_seconds > 0
        assert report.paramize_seconds > 0
        assert report.extract_seconds + report.paramize_seconds + \
            report.verify_seconds <= report.learn_seconds

    def test_verification_economy_counters(self, outcome):
        report = outcome.report
        assert report.verify_calls > 0
        assert report.dedup_saved_calls >= 0
        # No cache attached: cache counters stay zero.
        assert report.cache_hits == 0
        assert report.cache_misses == 0


class TestLeaveOneOut:
    def test_excluded_benchmark_contributes_nothing(self, outcome):
        other = learn_rules(
            compile_source(SOURCE.replace("* 3", "* 5"), "arm", 2, "llvm"),
            compile_source(SOURCE.replace("* 3", "* 5"), "x86", 2, "llvm"),
            benchmark="other",
        )
        outcomes = {"unit": outcome, "other": other}
        rules = leave_one_out(outcomes, "unit")
        assert all(rule.origin != "unit" for rule in rules)

    def test_dedup_across_benchmarks(self, outcome):
        merged = dedup_rules(list(outcome.rules) + list(outcome.rules))
        assert len(merged) == len(outcome.rules)


class TestReportMerge:
    def test_merge_sums_fields(self):
        a = LearningReport(total_sequences=10, rules=2, prep_ci=1)
        b = LearningReport(total_sequences=5, rules=1, verify_rg=3)
        a.merge(b)
        assert a.total_sequences == 15
        assert a.rules == 3
        assert a.prep_ci == 1
        assert a.verify_rg == 3

    def test_merge_sums_economy_counters(self):
        a = LearningReport(verify_calls=4, dedup_saved_calls=2, cache_hits=1)
        b = LearningReport(verify_calls=6, cache_misses=3,
                           extract_seconds=0.5)
        a.merge(b)
        assert a.verify_calls == 10
        assert a.dedup_saved_calls == 2
        assert a.cache_hits == 1
        assert a.cache_misses == 3
        assert a.extract_seconds == 0.5

    def test_count_signature_excludes_timing(self):
        a = LearningReport(benchmark="x", rules=3, learn_seconds=1.0)
        b = LearningReport(benchmark="x", rules=3, learn_seconds=9.0)
        assert a.count_signature() == b.count_signature()

    def test_yield_fraction(self):
        report = LearningReport(total_sequences=20, rules=5)
        assert report.yield_fraction == 0.25
