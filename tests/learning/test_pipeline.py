"""End-to-end learning pipeline + leave-one-out protocol."""

import pytest

from repro.learning import learn_rules
from repro.learning.pipeline import LearningReport, leave_one_out
from repro.learning.rule import dedup_rules
from repro.minic import compile_source

SOURCE = """
int data[16];
int process(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 16) {
    data[i] = i * 3;
    i += 1;
  }
  return process(data, 16);
}
"""


@pytest.fixture(scope="module")
def outcome():
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host, benchmark="unit")


class TestPipeline:
    def test_rules_learned(self, outcome):
        assert outcome.report.rules == len(outcome.rules) > 0

    def test_accounting_adds_up(self, outcome):
        report = outcome.report
        accounted = (report.prep_failures + report.param_failures
                     + report.verify_failures + report.rules)
        # Pairs whose line exists on only one side are not counted as
        # failures, so accounted <= total.
        assert accounted <= report.total_sequences
        assert report.total_sequences > 0

    def test_rules_are_deduplicated(self, outcome):
        signatures = [rule.guest_signature() for rule in outcome.rules]
        assert len(signatures) == len(set(signatures))

    def test_timing_recorded(self, outcome):
        assert outcome.report.learn_seconds > 0
        assert 0 <= outcome.report.verify_seconds <= \
            outcome.report.learn_seconds

    def test_origin_recorded(self, outcome):
        assert all(rule.origin == "unit" for rule in outcome.rules)


class TestLeaveOneOut:
    def test_excluded_benchmark_contributes_nothing(self, outcome):
        other = learn_rules(
            compile_source(SOURCE.replace("* 3", "* 5"), "arm", 2, "llvm"),
            compile_source(SOURCE.replace("* 3", "* 5"), "x86", 2, "llvm"),
            benchmark="other",
        )
        outcomes = {"unit": outcome, "other": other}
        rules = leave_one_out(outcomes, "unit")
        assert all(rule.origin != "unit" for rule in rules)

    def test_dedup_across_benchmarks(self, outcome):
        merged = dedup_rules(list(outcome.rules) + list(outcome.rules))
        assert len(merged) == len(outcome.rules)


class TestReportMerge:
    def test_merge_sums_fields(self):
        a = LearningReport(total_sequences=10, rules=2, prep_ci=1)
        b = LearningReport(total_sequences=5, rules=1, verify_rg=3)
        a.merge(b)
        assert a.total_sequences == 15
        assert a.rules == 3
        assert a.prep_ci == 1
        assert a.verify_rg == 3

    def test_yield_fraction(self):
        report = LearningReport(total_sequences=20, rules=5)
        assert report.yield_fraction == 0.25
