"""Snippet extraction + preparation filters (Section 3.1)."""

from repro.learning.extract import PrepFailure, extract_pairs
from repro.minic import compile_source


def _extract(source: str):
    guest = compile_source(source, "arm", 2, "llvm")
    host = compile_source(source, "x86", 2, "llvm")
    return extract_pairs(guest, host)


class TestGrouping:
    def test_basic_pairing(self):
        result = _extract("""
        int f(int a, int b) {
          int c = a + b;
          int d = c * 2;
          return d - a;
        }
        int main(void) { return f(1, 2); }
        """)
        assert result.pairs
        lines = {pair.line for pair in result.pairs}
        assert len(lines) == len(result.pairs)  # one pair per line

    def test_snippets_are_single_block(self):
        result = _extract("""
        int main(void) {
          int s = 0;
          int i = 0;
          while (i < 5) { s += i; i += 1; }
          return s;
        }
        """)
        for pair in result.pairs:
            guest_blocks = {i.block for i in pair.guest}
            assert len(guest_blocks) == 1

    def test_runtime_functions_excluded(self):
        result = _extract("""
        int main(void) { return 100 / 7; }
        """)
        assert all(pair.function != "__aeabi_idivmod" for pair in result.pairs)


class TestFailureClasses:
    def test_call_lines_rejected(self):
        result = _extract("""
        int g(int x) { return x; }
        int main(void) { int y = g(4); return y; }
        """)
        assert result.prep_failures[PrepFailure.CALL_OR_INDIRECT] > 0

    def test_division_lines_are_call_failures(self):
        # ARM division becomes a __aeabi_idiv call.
        result = _extract("""
        int f(int a, int b) { return a / b; }
        int main(void) { return f(77, 7); }
        """)
        assert result.prep_failures[PrepFailure.CALL_OR_INDIRECT] > 0

    def test_for_loop_lines_are_multi_block(self):
        result = _extract("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 5; ++i) { s += 2; }
          return s;
        }
        """)
        assert result.prep_failures[PrepFailure.MULTI_BLOCK] > 0

    def test_predicated_lines_rejected(self):
        result = _extract("""
        int f(int d) {
          if (d < 0) { d = 0 - d; }
          return d;
        }
        int main(void) { return f(-5); }
        """)
        assert result.prep_failures[PrepFailure.PREDICATED] > 0

    def test_while_header_survives_backjump(self):
        """The loop back-jump carries the header's line but is pure
        control glue — the header's compare+branch must remain
        learnable."""
        result = _extract("""
        int main(void) {
          int i = 0;
          while (i < 10) {
            i += 2;
          }
          return i;
        }
        """)
        header_pairs = [
            pair for pair in result.pairs
            if pair.guest and pair.guest[-1].mnemonic.startswith("b")
        ]
        assert header_pairs

    def test_totals_are_consistent(self):
        result = _extract("""
        int a[4];
        int main(void) {
          int i = 0;
          while (i < 4) { a[i] = i; i += 1; }
          return a[2] / 2;
        }
        """)
        failures = sum(result.prep_failures.values())
        assert len(result.pairs) + failures <= result.total_sequences
