"""ARM parser + printer round trips and structure checks."""

import pytest

from repro.guest_arm import parse_instruction, parse_program
from repro.guest_arm.printer import format_instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg


class TestOperands:
    def test_data_three_operand(self):
        instr = parse_instruction("add r0, r1, r2")
        assert instr.mnemonic == "add"
        assert instr.operands == (Reg("r0"), Reg("r1"), Reg("r2"))

    def test_immediate(self):
        instr = parse_instruction("sub r1, r1, #1")
        assert instr.operands[2] == Imm(1)

    def test_negative_and_hex_immediates(self):
        assert parse_instruction("mov r0, #-4").operands[1] == Imm(-4)
        assert parse_instruction("mov r0, #0xff").operands[1] == Imm(255)

    def test_shifted_register(self):
        instr = parse_instruction("add r0, r1, r0, lsl #2")
        assert instr.operands[2] == ShiftedReg(Reg("r0"), "lsl", 2)

    def test_memory_with_displacement(self):
        instr = parse_instruction("ldr r0, [r1, #-4]")
        assert instr.operands[1] == Mem(base=Reg("r1"), disp=-4)

    def test_memory_with_scaled_index(self):
        instr = parse_instruction("ldr r0, [r1, r2, lsl #2]")
        assert instr.operands[1] == Mem(base=Reg("r1"), index=Reg("r2"),
                                        scale=4)

    def test_register_aliases(self):
        instr = parse_instruction("mov r0, r13")
        assert instr.operands[1] == Reg("sp")

    def test_push_pop_lists(self):
        push = parse_instruction("push {r4, r5, lr}")
        assert push.operands == (Reg("r4"), Reg("r5"), Reg("lr"))
        pop = parse_instruction("pop {r4-r6, pc}")
        assert pop.operands == (Reg("r4"), Reg("r5"), Reg("r6"), Reg("pc"))

    def test_branch_label(self):
        assert parse_instruction("bne .L1").operands == (Label(".L1"),)
        assert parse_instruction("bl func").operands == (Label("func"),)

    def test_bls_is_branch_not_call(self):
        # "bls" must parse as b+ls, never bl+s.
        instr = parse_instruction("bls .L2")
        from repro.guest_arm.isa import split_mnemonic

        assert split_mnemonic(instr.mnemonic) == ("b", "ls", False)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            parse_instruction("frobnicate r0, r1")

    def test_annotations(self):
        instr = parse_instruction("ldr r0, [r1, #8]  @ line=42 var=count")
        assert instr.line == 42
        assert instr.operands[1].var == "count"


class TestProgram:
    def test_labels_and_instructions(self):
        program = parse_program("""
        start:
            mov r0, #0
        .loop:
            add r0, r0, #1
            cmp r0, #10
            blt .loop
            bx lr
        """)
        assert program.labels == {"start": 0, ".loop": 1}
        assert len(program.instructions) == 5

    def test_comment_only_lines_skipped(self):
        program = parse_program("@ a comment\nmov r0, #1\n")
        assert len(program.instructions) == 1


class TestRoundTrip:
    CASES = [
        "add r0, r1, r2",
        "sub r1, r1, #1",
        "add r0, r1, r0, lsl #2",
        "ldr r0, [r1, #-4]",
        "ldr r0, [r1, r2, lsl #2]",
        "strb r3, [r4]",
        "cmp r2, r3",
        "bne .L1",
        "push {r4, r5, lr}",
        "mvn r0, r1",
        "moveq r0, #1",
        "rsblt r0, r0, #0",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        instr = parse_instruction(text)
        reprinted = format_instruction(instr)
        assert parse_instruction(reprinted) == instr
