"""ARM opcode metadata: mnemonic splitting, defs/uses, flags."""

import pytest

from repro.guest_arm import parse_instruction as parse
from repro.guest_arm.isa import (
    branch_condition,
    defined_flags,
    defined_registers,
    is_branch,
    is_call,
    is_indirect_branch,
    is_predicated,
    is_return,
    opcode_id,
    split_mnemonic,
    used_flags,
    used_registers,
)


class TestSplitMnemonic:
    @pytest.mark.parametrize("text,expected", [
        ("add", ("add", None, False)),
        ("adds", ("add", None, True)),
        ("addeq", ("add", "eq", False)),
        ("b", ("b", None, False)),
        ("beq", ("b", "eq", False)),
        ("bls", ("b", "ls", False)),   # not bl + s!
        ("blo", ("b", "lo", False)),
        ("blt", ("b", "lt", False)),
        ("bl", ("bl", None, False)),
        ("bic", ("bic", None, False)),  # not b + ic
        ("movne", ("mov", "ne", False)),
        ("rsblt", ("rsb", "lt", False)),
    ])
    def test_cases(self, text, expected):
        assert split_mnemonic(text) == expected

    def test_unknown(self):
        with pytest.raises(ValueError):
            split_mnemonic("bogus")


class TestClassification:
    def test_branches(self):
        assert is_branch(parse("b .L1"))
        assert is_branch(parse("beq .L1"))
        assert is_branch(parse("bl f"))
        assert is_branch(parse("bx lr"))
        assert is_branch(parse("pop {r4, pc}"))
        assert not is_branch(parse("pop {r4, r5}"))
        assert not is_branch(parse("add r0, r1, r2"))

    def test_calls_and_returns(self):
        assert is_call(parse("bl f"))
        assert not is_call(parse("b .L1"))
        assert is_return(parse("bx lr"))
        assert is_return(parse("pop {r4, pc}"))
        assert is_indirect_branch(parse("bx r3"))

    def test_predication(self):
        assert is_predicated(parse("movne r0, #1"))
        assert is_predicated(parse("rsblt r0, r0, #0"))
        assert not is_predicated(parse("bne .L1"))
        assert not is_predicated(parse("mov r0, #1"))

    def test_branch_condition(self):
        assert branch_condition(parse("blt .L1")) == "lt"
        assert branch_condition(parse("b .L1")) is None
        assert branch_condition(parse("add r0, r1, r2")) is None


class TestDefsUses:
    @pytest.mark.parametrize("text,defs,uses", [
        ("add r0, r1, r2", ("r0",), ("r1", "r2")),
        ("add r0, r1, r2, lsl #3", ("r0",), ("r1", "r2")),
        ("mov r0, #1", ("r0",), ()),
        ("cmp r1, r2", (), ("r1", "r2")),
        ("ldr r0, [r1, r2, lsl #2]", ("r0",), ("r1", "r2")),
        ("str r0, [r1, #4]", (), ("r0", "r1")),
        ("bl f", ("lr",), ()),
        ("push {r4, r5}", ("sp",), ("sp", "r4", "r5")),
        ("pop {r4, r5}", ("sp", "r4", "r5"), ("sp",)),
        ("bx lr", (), ("lr",)),
        ("lsl r0, r1, r2", ("r0",), ("r1", "r2")),
        ("mul r0, r1, r2", ("r0",), ("r1", "r2")),
    ])
    def test_table(self, text, defs, uses):
        instr = parse(text)
        assert defined_registers(instr) == defs
        assert used_registers(instr) == uses

    def test_predicated_destination_is_also_used(self):
        instr = parse("movne r0, r1")
        assert "r0" in used_registers(instr)


class TestFlags:
    def test_cmp_defines_all(self):
        assert defined_flags(parse("cmp r0, r1")) == ("N", "Z", "C", "V")

    def test_tst_defines_nz(self):
        assert defined_flags(parse("tst r0, r1")) == ("N", "Z")

    def test_subs_defines_all(self):
        assert defined_flags(parse("subs r0, r0, #1")) == ("N", "Z", "C", "V")

    def test_plain_add_defines_none(self):
        assert defined_flags(parse("add r0, r0, #1")) == ()

    @pytest.mark.parametrize("cond,flags", [
        ("eq", ("Z",)), ("lt", ("N", "V")), ("hi", ("C", "Z")),
        ("le", ("N", "Z", "V")), ("lo", ("C",)),
    ])
    def test_condition_uses(self, cond, flags):
        assert used_flags(parse(f"b{cond} .L1")) == flags


class TestOpcodeIds:
    def test_stable_and_cond_insensitive(self):
        assert opcode_id(parse("beq .L1")) == opcode_id(parse("bne .L1"))
        assert opcode_id(parse("add r0, r0, #1")) == \
            opcode_id(parse("adds r0, r0, #1"))
        assert opcode_id(parse("add r0, r0, #1")) != \
            opcode_id(parse("sub r0, r0, #1"))
