"""ARM semantics over the concrete ALU (flags, memory, branches)."""

import pytest

from repro.dbt.machine import ConcreteState
from repro.guest_arm import execute, parse_instruction as parse
from repro.isa.alu import ConcreteALU
from repro.isa.state import BranchKind

ALU = ConcreteALU()


def run(state, *lines):
    outcome = None
    for line in lines:
        outcome = execute(parse(line), state, ALU)
    return outcome


@pytest.fixture
def state():
    return ConcreteState()


class TestDataProcessing:
    def test_mov_and_add(self, state):
        run(state, "mov r0, #5", "mov r1, #7", "add r2, r0, r1")
        assert state.get_reg("r2") == 12

    def test_shifted_operand(self, state):
        state.set_reg("r1", 100)
        state.set_reg("r0", 3)
        run(state, "add r0, r1, r0, lsl #2")
        assert state.get_reg("r0") == 112

    def test_rsb(self, state):
        state.set_reg("r1", 10)
        run(state, "rsb r0, r1, #30")
        assert state.get_reg("r0") == 20

    def test_bic(self, state):
        state.set_reg("r1", 0xFF)
        state.set_reg("r2", 0x0F)
        run(state, "bic r0, r1, r2")
        assert state.get_reg("r0") == 0xF0

    def test_mvn(self, state):
        state.set_reg("r1", 0)
        run(state, "mvn r0, r1")
        assert state.get_reg("r0") == 0xFFFFFFFF

    def test_mul_wraps(self, state):
        state.set_reg("r1", 0x10000)
        state.set_reg("r2", 0x10000)
        run(state, "mul r0, r1, r2")
        assert state.get_reg("r0") == 0

    def test_shift_by_register_uses_low_byte(self, state):
        state.set_reg("r1", 1)
        state.set_reg("r2", 0x104)  # low byte 4
        run(state, "lsl r0, r1, r2")
        assert state.get_reg("r0") == 16

    def test_asr_sign_fills(self, state):
        state.set_reg("r1", 0x80000000)
        run(state, "asr r0, r1, #31")
        assert state.get_reg("r0") == 0xFFFFFFFF


class TestFlags:
    def test_cmp_equal_sets_z(self, state):
        state.set_reg("r0", 5)
        state.set_reg("r1", 5)
        run(state, "cmp r0, r1")
        assert state.get_flag("Z") == 1
        assert state.get_flag("C") == 1  # no borrow
        assert state.get_flag("N") == 0

    def test_cmp_less_unsigned(self, state):
        state.set_reg("r0", 3)
        state.set_reg("r1", 5)
        run(state, "cmp r0, r1")
        assert state.get_flag("C") == 0  # borrow -> C clear (ARM)
        assert state.get_flag("N") == 1

    def test_cmp_signed_overflow(self, state):
        state.set_reg("r0", 0x80000000)  # INT_MIN
        state.set_reg("r1", 1)
        run(state, "cmp r0, r1")
        assert state.get_flag("V") == 1
        assert state.get_flag("N") == 0  # INT_MIN - 1 wraps positive

    def test_adds_carry(self, state):
        state.set_reg("r1", 0xFFFFFFFF)
        run(state, "adds r0, r1, #1")
        assert state.get_reg("r0") == 0
        assert state.get_flag("C") == 1
        assert state.get_flag("Z") == 1
        assert state.get_flag("V") == 0

    def test_tst_nonzero_result(self, state):
        state.set_reg("r0", 0b1010)
        run(state, "tst r0, #2")
        assert state.get_flag("Z") == 0

    def test_tst_zero_result(self, state):
        state.set_reg("r0", 0b1010)
        run(state, "tst r0, #5")
        assert state.get_flag("Z") == 1

    def test_plain_add_preserves_flags(self, state):
        state.set_flag("Z", 1)
        state.set_reg("r1", 1)
        run(state, "add r0, r1, #1")
        assert state.get_flag("Z") == 1


class TestPredication:
    def test_taken(self, state):
        state.set_reg("r0", 5)
        state.set_reg("r1", 5)
        run(state, "cmp r0, r1", "moveq r2, #1")
        assert state.get_reg("r2") == 1

    def test_not_taken_keeps_old_value(self, state):
        state.set_reg("r2", 99)
        state.set_reg("r0", 1)
        state.set_reg("r1", 5)
        run(state, "cmp r0, r1", "moveq r2, #1")
        assert state.get_reg("r2") == 99

    def test_rsblt_abs_pattern(self, state):
        state.set_reg("r0", -7 & 0xFFFFFFFF)
        run(state, "cmp r0, #0", "rsblt r0, r0, #0")
        assert state.get_reg("r0") == 7


class TestMemory:
    def test_word_roundtrip(self, state):
        state.set_reg("r0", 0xDEADBEEF)
        state.set_reg("r1", 0x1000)
        run(state, "str r0, [r1, #4]", "ldr r2, [r1, #4]")
        assert state.get_reg("r2") == 0xDEADBEEF

    def test_byte_store_truncates(self, state):
        state.set_reg("r0", 0x1FF)
        state.set_reg("r1", 0x1000)
        run(state, "strb r0, [r1]", "ldrb r2, [r1]")
        assert state.get_reg("r2") == 0xFF

    def test_scaled_index_addressing(self, state):
        state.set_reg("r1", 0x1000)
        state.set_reg("r2", 3)
        state.store(0x100C, 0x42, 4)
        run(state, "ldr r0, [r1, r2, lsl #2]")
        assert state.get_reg("r0") == 0x42

    def test_push_pop_roundtrip(self, state):
        state.set_reg("sp", 0x2000)
        state.set_reg("r4", 11)
        state.set_reg("r5", 22)
        run(state, "push {r4, r5}")
        assert state.get_reg("sp") == 0x2000 - 8
        state.set_reg("r4", 0)
        state.set_reg("r5", 0)
        run(state, "pop {r4, r5}")
        assert (state.get_reg("r4"), state.get_reg("r5")) == (11, 22)
        assert state.get_reg("sp") == 0x2000


class TestBranches:
    def test_conditional_taken(self, state):
        state.set_reg("r0", 1)
        state.set_reg("r1", 2)
        run(state, "cmp r0, r1")
        outcome = run(state, "blt .target")
        assert outcome.branch is not None
        assert outcome.branch.cond == 1
        assert outcome.branch.target.name == ".target"

    def test_conditional_not_taken(self, state):
        state.set_reg("r0", 5)
        state.set_reg("r1", 2)
        run(state, "cmp r0, r1")
        outcome = run(state, "blt .target")
        assert outcome.branch.cond == 0

    def test_bl_sets_lr(self, state):
        state.regs["pc"] = 0x8000
        outcome = run(state, "bl func")
        assert state.get_reg("lr") == 0x8004
        assert outcome.branch.kind is BranchKind.CALL

    def test_bx_lr_is_return(self, state):
        state.set_reg("lr", 0x1234)
        outcome = run(state, "bx lr")
        assert outcome.branch.kind is BranchKind.RETURN
        assert outcome.branch.target == 0x1234

    @pytest.mark.parametrize("cond,a,b,taken", [
        ("eq", 5, 5, True), ("ne", 5, 5, False),
        ("lt", -1 & 0xFFFFFFFF, 0, True), ("ge", -1 & 0xFFFFFFFF, 0, False),
        ("lo", 1, 2, True), ("hs", 1, 2, False),
        ("hi", 0xFFFFFFFF, 1, True), ("ls", 1, 1, True),
        ("gt", 3, 2, True), ("le", 3, 2, False),
        ("mi", 0, 1, True), ("pl", 1, 0, True),
    ])
    def test_condition_table(self, state, cond, a, b, taken):
        state.set_reg("r0", a)
        state.set_reg("r1", b)
        run(state, "cmp r0, r1")
        outcome = run(state, f"b{cond} .t")
        assert bool(outcome.branch.cond) == taken
