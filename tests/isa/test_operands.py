"""Operand algebra: Reg/Imm/SymImm/Mem/ShiftedReg invariants."""

import pytest

from repro.isa.operands import (
    INT_IMMEXPR_OPS,
    Imm,
    Label,
    Mem,
    Reg,
    ShiftedReg,
    SymImm,
    eval_immexpr,
    format_immexpr,
)


class TestMem:
    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            Mem(base=Reg("r0"), index=Reg("r1"), scale=3)

    def test_large_power_of_two_scale_allowed(self):
        assert Mem(index=Reg("r1"), scale=16).scale == 16

    def test_var_not_in_equality(self):
        assert Mem(base=Reg("r0"), var="a") == Mem(base=Reg("r0"), var="b")

    def test_disp_param_in_equality(self):
        plain = Mem(base=Reg("r0"))
        parameterized = Mem(base=Reg("r0"), disp_param=("slot", "i0"))
        assert plain != parameterized

    def test_registers(self):
        mem = Mem(base=Reg("r1"), index=Reg("r2"), scale=4)
        assert mem.registers() == (Reg("r1"), Reg("r2"))

    def test_with_var_preserves_disp_param(self):
        mem = Mem(base=Reg("r0"), disp_param=("slot", "i0"))
        assert mem.with_var("x").disp_param == ("slot", "i0")


class TestShiftedReg:
    def test_valid_kinds_only(self):
        with pytest.raises(ValueError):
            ShiftedReg(Reg("r1"), "ror", 2)

    def test_amount_range(self):
        with pytest.raises(ValueError):
            ShiftedReg(Reg("r1"), "lsl", 32)


class TestImmExpr:
    def test_slot_evaluation(self):
        assert eval_immexpr(("slot", "i0"), {"i0": 42}, INT_IMMEXPR_OPS) == 42

    def test_const(self):
        assert eval_immexpr(("const", -1), {}, INT_IMMEXPR_OPS) == 0xFFFFFFFF

    def test_neg(self):
        expr = ("neg", ("slot", "i0"))
        assert eval_immexpr(expr, {"i0": 1}, INT_IMMEXPR_OPS) == 0xFFFFFFFF

    def test_or_of_two_slots(self):
        expr = ("or", ("slot", "a"), ("slot", "b"))
        env = {"a": 983040, "b": 117440512}
        assert eval_immexpr(expr, env, INT_IMMEXPR_OPS) == 0x70F0000

    def test_add_with_delta(self):
        expr = ("add", ("slot", "i0"), ("const", 0x34))
        assert eval_immexpr(expr, {"i0": 0}, INT_IMMEXPR_OPS) == 0x34

    def test_shl_guard(self):
        expr = ("shl", ("slot", "a"), ("slot", "b"))
        assert eval_immexpr(expr, {"a": 1, "b": 40}, INT_IMMEXPR_OPS) == 0

    def test_format(self):
        assert format_immexpr(("add", ("slot", "i0"), ("const", 4))) == \
            "(i0 add 4)"
        assert str(SymImm(("slot", "i0"))) == "#<i0>"


class TestPrinting:
    def test_reg(self):
        assert str(Reg("r3")) == "r3"

    def test_imm(self):
        assert str(Imm(-4)) == "#-4"

    def test_label(self):
        assert str(Label(".L1")) == ".L1"
