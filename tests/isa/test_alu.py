"""Concrete/symbolic ALU agreement: the single-source-semantics pillar."""

from hypothesis import given, strategies as st

from repro import ir
from repro.ir.evaluate import evaluate
from repro.isa.alu import ConcreteALU, SymbolicALU

CONCRETE = ConcreteALU()
SYMBOLIC = SymbolicALU()

_BINOPS = ("add", "sub", "mul", "and_", "or_", "xor", "udiv", "sdiv")
_UNOPS = ("not_", "neg")
_CMPS = ("eq", "ne", "ult", "slt")
_SHIFTS = ("shl", "lshr", "ashr")


@given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
def test_binary_ops_agree(a, b):
    xa, xb = ir.sym(32, "a"), ir.sym(32, "b")
    env = {"a": a, "b": b}
    for name in _BINOPS + _CMPS:
        concrete = getattr(CONCRETE, name)(a, b)
        symbolic = getattr(SYMBOLIC, name)(xa, xb)
        assert evaluate(symbolic, env) == concrete, name


@given(a=st.integers(0, 0xFFFFFFFF), shift=st.integers(0, 40))
def test_shifts_agree(a, shift):
    xa = ir.sym(32, "a")
    env = {"a": a}
    for name in _SHIFTS:
        concrete = getattr(CONCRETE, name)(a, shift)
        symbolic = getattr(SYMBOLIC, name)(xa, ir.bv(32, shift))
        assert evaluate(symbolic, env) == concrete, name


@given(a=st.integers(0, 0xFFFFFFFF))
def test_unary_ops_agree(a):
    xa = ir.sym(32, "a")
    env = {"a": a}
    for name in _UNOPS:
        assert evaluate(getattr(SYMBOLIC, name)(xa), env) == \
            getattr(CONCRETE, name)(a), name


@given(a=st.integers(0, 0xFF))
def test_sext_from_agrees(a):
    xa = ir.sym(8, "a")
    env = {"a": a}
    assert evaluate(SYMBOLIC.sext_from(8, 32, xa), env) == \
        CONCRETE.sext_from(8, 32, a)


@given(
    hi=st.integers(0, 0xFFFFFFFF),
    lo=st.integers(0, 0xFFFFFFFF),
    divisor=st.integers(0, 0xFFFFFFFF),
)
def test_divmod_signed_64_agrees(hi, lo, divisor):
    xhi, xlo, xd = ir.sym(32, "h"), ir.sym(32, "l"), ir.sym(32, "d")
    env = {"h": hi, "l": lo, "d": divisor}
    cq, cr = CONCRETE.divmod_signed_64(hi, lo, divisor)
    sq, sr = SYMBOLIC.divmod_signed_64(xhi, xlo, xd)
    assert evaluate(sq, env) == cq
    assert evaluate(sr, env) == cr


@given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
def test_mul_overflow_agrees(a, b):
    xa, xb = ir.sym(32, "a"), ir.sym(32, "b")
    env = {"a": a, "b": b}
    assert evaluate(SYMBOLIC.mul_overflow_signed(xa, xb), env) == \
        CONCRETE.mul_overflow_signed(a, b)


def test_divmod_by_zero_conventions():
    quotient, remainder = CONCRETE.divmod_signed_64(0, 7, 0)
    assert quotient == 0xFFFFFFFF
    assert remainder == 7
