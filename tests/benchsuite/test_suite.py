"""Benchmark suite integrity: all 12 programs compile, run, and agree
with the TAC oracle on both targets and workloads."""

import pytest

from repro.benchsuite import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    benchmark_source,
    build_benchmark,
)
from repro.dbt.direct import run_arm_program, run_x86_program
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12

    def test_spec_cint2006_names(self):
        assert set(BENCHMARK_NAMES) == {
            "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
            "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk",
        }

    def test_descriptions_present(self):
        for benchmark in BENCHMARKS.values():
            assert benchmark.description

    def test_workloads_differ(self):
        for name in BENCHMARK_NAMES:
            assert benchmark_source(name, "test") != \
                benchmark_source(name, "ref")


def _oracle(name: str, workload: str) -> int:
    tac = lower_program(parse(benchmark_source(name, workload)))
    optimize_program(tac, 2)
    return run_tac(tac) & 0xFFFFFFFF


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestCorrectness:
    def test_arm_build_matches_oracle(self, name):
        expected = _oracle(name, "test")
        program = build_benchmark(name, "arm", 2, "llvm", "test")
        assert run_arm_program(program).return_value == expected

    def test_x86_build_matches_oracle(self, name):
        expected = _oracle(name, "test")
        program = build_benchmark(name, "x86", 2, "llvm", "test")
        assert run_x86_program(program).return_value == expected

    def test_gcc_style_matches(self, name):
        expected = _oracle(name, "test")
        program = build_benchmark(name, "arm", 2, "gcc", "test")
        assert run_arm_program(program).return_value == expected


class TestWorkloadScale:
    def test_ref_is_larger_than_test(self):
        for name in BENCHMARK_NAMES:
            test_run = run_arm_program(
                build_benchmark(name, "arm", 2, "llvm", "test")
            )
            ref_run = run_arm_program(
                build_benchmark(name, "arm", 2, "llvm", "ref")
            )
            assert ref_run.dynamic_instructions > \
                2 * test_run.dynamic_instructions, name

    def test_omnetpp_exercises_division_runtime(self):
        # The omnetpp analog must spend real time in the hand-written
        # __aeabi_idivmod assembly (its Figure 10 role).
        program = build_benchmark("omnetpp", "arm", 2, "llvm", "test")
        start = program.labels["__aeabi_idivmod"]
        end = start + len(program.functions["__aeabi_idivmod"].instrs)

        from repro.dbt.direct import EmulationError  # noqa: F401
        from repro.dbt.machine import ConcreteState
        from repro.guest_arm import execute as execute_arm  # noqa: F401

        # Count executed instructions inside the runtime via the engine.
        from repro.dbt.engine import DBTEngine

        engine = DBTEngine(program, "qemu")
        engine.run()
        runtime_execs = sum(
            tb.exec_count * tb.guest_length
            for tb in engine._cache.values()
            if start * 4 + 0x8000 <= tb.guest_start < end * 4 + 0x8000
        )
        total = engine.stats.dynamic_guest_instructions
        assert runtime_execs / total > 0.3
