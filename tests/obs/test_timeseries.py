"""Ring-buffer time-series, latency recorders, and service telemetry."""

import threading

import pytest

from repro.obs.timeseries import LatencyRecorder, ServiceTelemetry, TimeSeries


class FakeClock:
    """A settable monotonic clock for deterministic window tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTimeSeries:
    def test_empty_series_reads_zero(self):
        series = TimeSeries(window=10, clock=FakeClock())
        assert series.total() == 0
        assert series.rate() == 0
        assert series.lifetime == 0

    def test_add_and_total_within_window(self):
        clock = FakeClock()
        series = TimeSeries(window=10, clock=clock)
        series.add()
        series.add(4)
        clock.advance(3)
        series.add(2)
        assert series.total() == 7
        assert series.rate() == pytest.approx(0.7)
        assert series.lifetime == 7

    def test_old_buckets_age_out_of_window(self):
        clock = FakeClock()
        series = TimeSeries(window=5, clock=clock)
        series.add(100)
        clock.advance(4)
        assert series.total() == 100
        clock.advance(2)  # now 6s past the burst, window is 5
        assert series.total() == 0
        assert series.lifetime == 100

    def test_ring_recycles_buckets_in_place(self):
        clock = FakeClock()
        series = TimeSeries(window=3, clock=clock)
        for _ in range(20):  # far more seconds than slots
            clock.advance(1)
            series.add(1)
        assert series.total() == 3  # only the last 3 seconds survive
        assert series.lifetime == 20
        assert len(series._buckets) == 3

    def test_stale_slot_resets_on_reuse(self):
        clock = FakeClock()
        series = TimeSeries(window=2, clock=clock)
        series.add(5)
        clock.advance(2)  # same slot index, different second
        series.add(1)
        assert series.total() == 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(window=0)

    def test_snapshot_shape(self):
        clock = FakeClock()
        series = TimeSeries(window=10, clock=clock)
        series.add(5)
        snapshot = series.snapshot()
        assert snapshot == {
            "window_seconds": 10.0,
            "total": 5,
            "rate_per_sec": 0.5,
            "lifetime": 5,
        }

    def test_concurrent_adds_do_not_lose_counts(self):
        series = TimeSeries(window=60)
        threads = [
            threading.Thread(
                target=lambda: [series.add() for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert series.lifetime == 4000


class TestLatencyRecorder:
    def test_empty_snapshot(self):
        snapshot = LatencyRecorder().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] == 0.0
        assert snapshot["quantiles_ms"] == {}

    def test_observations_round_to_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.observe(0.0101)
        recorder.observe(0.0102)
        recorder.observe(0.5)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["histogram_ms"] == {10: 2, 500: 1}
        assert snapshot["quantiles_ms"]["p50"] == 10
        assert snapshot["quantiles_ms"]["p99"] == 500
        assert snapshot["mean_ms"] == pytest.approx(173.43, abs=0.1)


class TestServiceTelemetry:
    def test_observe_op_counts_frames_and_latency(self):
        telemetry = ServiceTelemetry(window=60, clock=FakeClock())
        telemetry.observe_op("report_gaps", 0.002)
        telemetry.observe_op("report_gaps", 0.004)
        telemetry.observe_op("sync", 0.010)
        snapshot = telemetry.snapshot()
        assert snapshot["frames"]["total"] == 3
        assert snapshot["ops"]["report_gaps"]["count"] == 2
        assert snapshot["ops"]["sync"]["count"] == 1

    def test_gauges_pass_through(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        snapshot = telemetry.snapshot(queue_depth=7)
        assert snapshot["queue_depth"] == 7
        assert snapshot["uptime_seconds"] >= 0

    def test_gap_and_rule_series(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(window=10, clock=clock)
        telemetry.gaps.add(3)
        telemetry.rules.add(2)
        snapshot = telemetry.snapshot()
        assert snapshot["gaps"]["total"] == 3
        assert snapshot["gaps"]["rate_per_sec"] == pytest.approx(0.3)
        assert snapshot["rules"]["total"] == 2
