"""Ring-buffer time-series, latency recorders, and service telemetry."""

import threading

import pytest

from repro.obs.timeseries import (
    MAX_SPARSE_BUCKETS,
    LatencyRecorder,
    ServiceTelemetry,
    SketchLatency,
    TimeSeries,
)


class FakeClock:
    """A settable monotonic clock for deterministic window tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTimeSeries:
    def test_empty_series_reads_zero(self):
        series = TimeSeries(window=10, clock=FakeClock())
        assert series.total() == 0
        assert series.rate() == 0
        assert series.lifetime == 0

    def test_add_and_total_within_window(self):
        clock = FakeClock()
        series = TimeSeries(window=10, clock=clock)
        series.add()
        series.add(4)
        clock.advance(3)
        series.add(2)
        assert series.total() == 7
        assert series.rate() == pytest.approx(0.7)
        assert series.lifetime == 7

    def test_old_buckets_age_out_of_window(self):
        clock = FakeClock()
        series = TimeSeries(window=5, clock=clock)
        series.add(100)
        clock.advance(4)
        assert series.total() == 100
        clock.advance(2)  # now 6s past the burst, window is 5
        assert series.total() == 0
        assert series.lifetime == 100

    def test_ring_recycles_buckets_in_place(self):
        clock = FakeClock()
        series = TimeSeries(window=3, clock=clock)
        for _ in range(20):  # far more seconds than slots
            clock.advance(1)
            series.add(1)
        assert series.total() == 3  # only the last 3 seconds survive
        assert series.lifetime == 20
        assert len(series._buckets) == 3

    def test_stale_slot_resets_on_reuse(self):
        clock = FakeClock()
        series = TimeSeries(window=2, clock=clock)
        series.add(5)
        clock.advance(2)  # same slot index, different second
        series.add(1)
        assert series.total() == 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(window=0)

    def test_snapshot_shape(self):
        clock = FakeClock()
        series = TimeSeries(window=10, clock=clock)
        series.add(5)
        snapshot = series.snapshot()
        assert snapshot == {
            "window_seconds": 10.0,
            "total": 5,
            "rate_per_sec": 0.5,
            "lifetime": 5,
        }

    def test_concurrent_adds_do_not_lose_counts(self):
        series = TimeSeries(window=60)
        threads = [
            threading.Thread(
                target=lambda: [series.add() for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert series.lifetime == 4000


class TestTimeSeriesStaleness:
    """Regression lock: idle gaps must never resurrect previous-lap
    buckets, at full-window or sub-window reads."""

    def test_idle_gap_longer_than_window_reads_zero(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=10, clock=clock)
        series.add(50)
        clock.advance(25)  # idle for 2.5 laps of the ring
        assert series.total() == 0
        assert series.rate() == 0.0
        assert series.lifetime == 50

    def test_idle_gap_of_exactly_one_window(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=10, clock=clock)
        series.add(50)
        clock.advance(10)  # the write second is now just outside
        assert series.total() == 0

    def test_write_after_long_idle_counts_only_new_data(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=5, clock=clock)
        series.add(100)
        clock.advance(73)  # many laps later the slot indexes collide
        series.add(1)
        assert series.total() == 1
        assert series.lifetime == 101

    def test_subwindow_total_and_rate(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=60, clock=clock)
        series.add(10)
        clock.advance(30)
        series.add(5)
        # Full window sees both bursts; the trailing 10s only the
        # second one.
        assert series.total() == 15
        assert series.total(window=10) == 5
        assert series.rate(window=10) == pytest.approx(0.5)

    def test_subwindow_respects_staleness_after_idle(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=60, clock=clock)
        series.add(100)
        clock.advance(120)  # idle two laps
        assert series.total(window=5) == 0
        assert series.total(window=60) == 0

    def test_subwindow_clamps_to_ring_span(self):
        clock = FakeClock(start=3000.0)
        series = TimeSeries(window=10, clock=clock)
        series.add(4)
        # Asking for more history than the ring holds degrades to the
        # full window, never garbage.
        assert series.total(window=999) == 4
        assert series.rate(window=0) == pytest.approx(4.0)


class TestLatencyRecorder:
    def test_empty_snapshot(self):
        snapshot = LatencyRecorder().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] == 0.0
        assert snapshot["quantiles_ms"] == {}

    def test_observations_round_to_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.observe(0.0101)
        recorder.observe(0.0102)
        recorder.observe(0.5)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["histogram_ms"] == {10: 2, 500: 1}
        assert snapshot["quantiles_ms"]["p50"] == 10
        assert snapshot["quantiles_ms"]["p99"] == 500
        assert snapshot["mean_ms"] == pytest.approx(173.43, abs=0.1)

    def test_bucket_dict_is_bounded(self):
        recorder = LatencyRecorder()
        # One observation per distinct millisecond, far beyond the cap.
        for ms in range(3 * MAX_SPARSE_BUCKETS):
            recorder.observe(ms / 1000.0)
        snapshot = recorder.snapshot()
        assert len(snapshot["histogram_ms"]) <= MAX_SPARSE_BUCKETS
        assert snapshot["count"] == 3 * MAX_SPARSE_BUCKETS
        # Collapsing folds low keys; the tail stays exact.
        assert snapshot["quantiles_ms"]["p99"] >= 1500


class TestSketchLatency:
    def test_snapshot_shape_matches_consumers(self):
        recorder = SketchLatency()
        recorder.observe(0.010)
        recorder.observe(0.010)
        recorder.observe(0.500)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 3
        assert set(snapshot["quantiles_ms"]) == {"p50", "p95", "p99"}
        assert snapshot["quantiles_ms"]["p50"] == pytest.approx(
            10.0, rel=0.02
        )
        assert snapshot["quantiles_ms"]["p99"] == pytest.approx(
            500.0, rel=0.02
        )
        assert snapshot["mean_ms"] == pytest.approx(173.33, abs=0.1)
        assert snapshot["relative_error"] == 0.01

    def test_empty(self):
        snapshot = SketchLatency().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] == 0.0


class TestServiceTelemetry:
    def test_observe_op_counts_frames_and_latency(self):
        telemetry = ServiceTelemetry(window=60, clock=FakeClock())
        telemetry.observe_op("report_gaps", 0.002)
        telemetry.observe_op("report_gaps", 0.004)
        telemetry.observe_op("sync", 0.010)
        snapshot = telemetry.snapshot()
        assert snapshot["frames"]["total"] == 3
        assert snapshot["ops"]["report_gaps"]["count"] == 2
        assert snapshot["ops"]["sync"]["count"] == 1

    def test_gauges_pass_through(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        snapshot = telemetry.snapshot(queue_depth=7)
        assert snapshot["queue_depth"] == 7
        assert snapshot["uptime_seconds"] >= 0

    def test_gap_and_rule_series(self):
        clock = FakeClock()
        telemetry = ServiceTelemetry(window=10, clock=clock)
        telemetry.gaps.add(3)
        telemetry.rules.add(2)
        snapshot = telemetry.snapshot()
        assert snapshot["gaps"]["total"] == 3
        assert snapshot["gaps"]["rate_per_sec"] == pytest.approx(0.3)
        assert snapshot["rules"]["total"] == 2

    def test_op_sketches_exposes_live_sketches(self):
        telemetry = ServiceTelemetry(clock=FakeClock())
        telemetry.observe_op("sync", 0.020)
        sketches = telemetry.op_sketches()
        assert set(sketches) == {"sync"}
        assert sketches["sync"].count == 1
