"""Cross-process observability merge under the crash-isolated pool.

Satellite coverage for the observability PR: worker-side profiles and
sketches ride home inside the metrics snapshot the pool already ships,
and the parent-side merge is associative, commutative, and
byte-identical on same-order replay — so a profile assembled from N
workers does not depend on chunk completion order for its counts, and
replaying the same worker snapshots reproduces the same bytes.
"""

import json
import pickle

import pytest

from repro.learning.parallel import _PoolScheduler, _resolve_chunk
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.profiler import (
    SamplingProfiler,
    get_profiler,
    phase,
    set_profiler,
)
from repro.obs.sketch import QuantileSketch


@pytest.fixture(autouse=True)
def fresh_globals():
    set_metrics(None)
    set_profiler(None)
    yield
    set_metrics(None)
    set_profiler(None)


def worker_snapshot(phase_name: str, samples: int,
                    sketch_values=()) -> dict:
    """Build what a pool worker returns: a metrics snapshot with an
    embedded profile, then force it across a process boundary the same
    way ProcessPoolExecutor does (pickle roundtrip)."""
    registry = MetricsRegistry()
    registry.inc("learning.worker.resolved", samples)
    for value in sketch_values:
        registry.observe_sketch("learning.worker.verify_ms", value)
    profiler = SamplingProfiler(hz=50, include_idle=False)
    with phase(phase_name):
        for _ in range(samples):
            profiler.sample_once()
    snapshot = registry.snapshot()
    snapshot["profile"] = profiler.snapshot()
    return pickle.loads(pickle.dumps(snapshot))


class TestResolveChunkShipsProfile:
    def test_profile_rides_in_snapshot_when_enabled(self):
        results, snapshot = _resolve_chunk([], profile_hz=50)
        assert results == []
        profile = snapshot["profile"]
        assert profile["kind"] == "profile"
        assert profile["hz"] == 50
        # The worker snapshot must survive the IPC pickle.
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_no_profile_key_when_disabled(self):
        _, snapshot = _resolve_chunk([])
        assert "profile" not in snapshot


class TestParentAbsorb:
    def make_scheduler(self):
        from repro.faults.plan import NO_FAULTS
        return _PoolScheduler(
            workers=1, budget=None, plan=NO_FAULTS, journal=None,
            resolved={}, max_retries=0, backoff_seconds=0.0,
            profile_hz=50,
        )

    def test_absorb_merges_profile_and_metrics(self):
        scheduler = self.make_scheduler()
        snapshot = worker_snapshot("learn.verify", 3,
                                   sketch_values=(1.0, 2.0))
        scheduler._absorb([], snapshot)
        merged = get_profiler().snapshot()
        assert merged["phases"]["learn.verify"]["self_samples"] == 3
        metrics = scheduler.metrics.snapshot()
        assert metrics["counters"]["learning.worker.resolved"] == 3
        assert "profile" not in metrics
        sketch = QuantileSketch.from_snapshot(
            metrics["sketches"]["learning.worker.verify_ms"]
        )
        assert sketch.count == 2

    def test_absorb_without_profile_key_is_harmless(self):
        scheduler = self.make_scheduler()
        scheduler._absorb([], MetricsRegistry().snapshot())
        assert get_profiler().snapshot()["total_samples"] == 0


class TestMergeAlgebra:
    def snapshots(self):
        return [
            worker_snapshot("learn.verify", 4, sketch_values=(1.0,)),
            worker_snapshot("learn.verify", 2, sketch_values=(8.0, 2.0)),
            worker_snapshot("dbt.exec", 3),
        ]

    def merge_all(self, snaps):
        parent = SamplingProfiler(hz=50)
        registry = MetricsRegistry()
        for snap in snaps:
            snap = dict(snap)
            parent.merge(snap.pop("profile"))
            registry.merge(snap)
        return parent.snapshot(), registry.snapshot()

    def test_commutative_across_chunk_completion_orders(self):
        snaps = self.snapshots()
        forward_prof, forward_metrics = self.merge_all(snaps)
        reverse_prof, reverse_metrics = self.merge_all(snaps[::-1])
        assert forward_prof == reverse_prof
        # Counter/bucket counts are exact; float sums are dyadic here
        # so even the sketch sums compare equal.
        assert forward_metrics == reverse_metrics

    def test_associative_grouping(self):
        snaps = self.snapshots()
        left = SamplingProfiler(hz=50)
        left.merge(snaps[0]["profile"])
        left.merge(snaps[1]["profile"])
        left.merge(snaps[2]["profile"])
        inner = SamplingProfiler(hz=50)
        inner.merge(snaps[1]["profile"])
        inner.merge(snaps[2]["profile"])
        right = SamplingProfiler(hz=50)
        right.merge(snaps[0]["profile"])
        right.merge(inner.snapshot())
        left_snap, right_snap = left.snapshot(), right.snapshot()
        # Merging through an intermediate accumulates its wall-clock;
        # drop the float field and require the counts identical.
        left_snap.pop("wall_seconds")
        right_snap.pop("wall_seconds")
        assert left_snap == right_snap

    def test_byte_identical_on_same_order_replay(self):
        snaps = self.snapshots()
        first_prof, first_metrics = self.merge_all(snaps)
        replay_prof, replay_metrics = self.merge_all(snaps)
        assert json.dumps(first_prof, sort_keys=True) \
            == json.dumps(replay_prof, sort_keys=True)
        assert pickle.dumps(first_metrics) == pickle.dumps(replay_metrics)
