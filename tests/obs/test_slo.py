"""Tests for SLO declarations and multi-window burn-rate evaluation."""

import io
import os

import pytest

from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (
    Objective,
    SloEngine,
    SloError,
    _mini_toml,
    slo_report_lines,
)
from repro.obs.trace import Tracer, get_tracer, set_tracer


class FakeClock:
    def __init__(self, start: float = 5000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


SLO_TOML = """
[[objective]]
name = "sync-latency"
kind = "latency"
source = "op:sync"
threshold_ms = 100.0
target = 0.9
windows = [10, 60]
burn_threshold = 2.0
min_events = 5

[[objective]]
name = "install-p99"
kind = "quantile"
source = "stitch:gap_install"
quantile = 0.99
max_ms = 1000.0

[[objective]]
name = "verify-floor"
kind = "gauge"
source = "gauge:verified_per_s"
min = 1.0
"""


def make_engine(clock=None):
    return SloEngine.from_toml_text(SLO_TOML, clock=clock or FakeClock())


class TestDeclarations:
    def test_parse_toml_text(self):
        engine = make_engine()
        assert [o.name for o in engine.objectives] == [
            "sync-latency", "install-p99", "verify-floor",
        ]
        assert engine.sources() == {
            "op:sync", "stitch:gap_install", "gauge:verified_per_s",
        }

    def test_checked_in_slo_toml_parses(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "slo.toml"
        )
        engine = SloEngine.from_toml(path, clock=FakeClock())
        assert len(engine.objectives) >= 3
        kinds = {o.kind for o in engine.objectives}
        assert kinds == {"latency", "quantile", "gauge"}

    def test_mini_toml_fallback_matches_grammar(self):
        data = _mini_toml(SLO_TOML)
        assert len(data["objective"]) == 3
        first = data["objective"][0]
        assert first["name"] == "sync-latency"
        assert first["threshold_ms"] == 100.0
        assert first["windows"] == [10, 60]
        assert first["min_events"] == 5

    def test_rejects_bad_declarations(self):
        with pytest.raises(SloError):
            Objective("x", "nonsense", "op:x")
        with pytest.raises(SloError):
            Objective("x", "latency", "op:x",
                      threshold_ms=10, target=1.5)
        with pytest.raises(SloError):
            Objective("x", "gauge", "gauge:x")  # no min/max
        with pytest.raises(SloError):
            SloEngine.from_toml_text("# empty\n")
        with pytest.raises(SloError):
            SloEngine([
                Objective("dup", "gauge", "g", min=1),
                Objective("dup", "gauge", "g", min=2),
            ])


class TestLatencyBurnRate:
    def test_all_good_events_stay_ok(self):
        clock = FakeClock()
        engine = make_engine(clock)
        for _ in range(50):
            engine.record("op:sync", 20.0)
        report = engine.evaluate()
        assert report["ok"]
        latency = report["objectives"][0]
        assert latency["state"] == "ok"
        for window in latency["windows"]:
            assert window["burn_rate"] == 0.0

    def test_burn_on_all_windows_breaches(self):
        clock = FakeClock()
        engine = make_engine(clock)
        # 50% bad with a 10% budget: burn 5.0 >= threshold 2.0 on
        # both windows.
        for _ in range(20):
            engine.record("op:sync", 20.0)
            engine.record("op:sync", 500.0)
        report = engine.evaluate()
        latency = report["objectives"][0]
        assert latency["state"] == "breach"
        assert report["breaches"] == ["sync-latency"]
        for window in latency["windows"]:
            assert window["burn_rate"] == pytest.approx(5.0)

    def test_short_window_recovery_clears_alert(self):
        clock = FakeClock()
        engine = make_engine(clock)
        for _ in range(20):
            engine.record("op:sync", 500.0)
        assert engine.evaluate()["objectives"][0]["state"] == "breach"
        # 15s later the bad burst has left the 10s window but still
        # sits in the 60s window: multi-window rule says recovered.
        clock.advance(15)
        for _ in range(10):
            engine.record("op:sync", 20.0)
        report = engine.evaluate()
        latency = report["objectives"][0]
        assert latency["state"] == "ok"
        short, long = latency["windows"]
        assert short["burn_rate"] < 2.0
        assert long["burn_rate"] >= 2.0

    def test_min_events_suppresses_noisy_breach(self):
        engine = make_engine()
        # 2 bad events out of 2: burn is huge but the sample is tiny.
        engine.record("op:sync", 500.0)
        engine.record("op:sync", 500.0)
        assert engine.evaluate()["objectives"][0]["state"] == "ok"

    def test_record_ignores_unknown_sources(self):
        engine = make_engine()
        engine.record("op:unheard_of", 9999.0)
        assert engine.evaluate()["ok"]


class TestQuantileAndGauge:
    def test_quantile_breach_from_sketch(self):
        engine = make_engine()
        sketch = QuantileSketch()
        for _ in range(100):
            sketch.observe(5000.0)  # ms, way over max_ms=1000
        report = engine.evaluate(
            sketches={"stitch:gap_install": sketch}
        )
        quant = report["objectives"][1]
        assert quant["state"] == "breach"
        assert quant["observed_ms"] == pytest.approx(5000.0, rel=0.02)

    def test_quantile_accepts_snapshot_dict(self):
        engine = make_engine()
        sketch = QuantileSketch()
        sketch.observe(100.0)
        report = engine.evaluate(
            sketches={"stitch:gap_install": sketch.snapshot()}
        )
        assert report["objectives"][1]["state"] == "ok"

    def test_quantile_without_signal_is_ok(self):
        report = make_engine().evaluate()
        quant = report["objectives"][1]
        assert quant["state"] == "ok"
        assert quant["observed_ms"] is None

    def test_gauge_bounds(self):
        engine = make_engine()
        ok = engine.evaluate(gauges={"gauge:verified_per_s": 2.0})
        assert ok["objectives"][2]["state"] == "ok"
        bad = engine.evaluate(gauges={"gauge:verified_per_s": 0.25})
        assert bad["objectives"][2]["state"] == "breach"
        missing = engine.evaluate()
        assert missing["objectives"][2]["state"] == "ok"


class TestAlertEvents:
    def test_transitions_emit_trace_events(self, tmp_path):
        clock = FakeClock()
        engine = make_engine(clock)
        original = get_tracer()
        sink = io.StringIO()
        try:
            set_tracer(Tracer(sink))
            for _ in range(20):
                engine.record("op:sync", 500.0)
            engine.evaluate()  # ok -> breach
            clock.advance(61)  # everything ages out of both windows
            engine.evaluate()  # breach -> ok
            engine.evaluate()  # no transition, no event
        finally:
            set_tracer(original)
        lines = [line for line in sink.getvalue().splitlines()
                 if '"slo.' in line]
        assert len(lines) == 2
        assert '"slo.alert"' in lines[0]
        assert '"slo.recover"' in lines[1]
        report = engine.evaluate()
        assert [a["to"] for a in report["alerts"]] == ["breach", "ok"]

    def test_report_lines_render_all_kinds(self):
        engine = make_engine()
        engine.record("op:sync", 10.0)
        sketch = QuantileSketch()
        sketch.observe(50.0)
        report = engine.evaluate(
            sketches={"stitch:gap_install": sketch},
            gauges={"gauge:verified_per_s": 3.0},
        )
        lines = slo_report_lines(report)
        assert len(lines) == 3
        assert "sync-latency" in lines[0]
        assert "install-p99" in lines[1]
        assert "verify-floor" in lines[2]
