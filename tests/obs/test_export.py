"""Tests for Prometheus text exposition rendering and validation."""

import json

import pytest

from repro.obs.export import (
    ExpositionError,
    main,
    parse_exposition,
    render_exposition,
    sanitize_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler, phase
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import SloEngine
from repro.obs.timeseries import ServiceTelemetry

SLO_TOML = """
[[objective]]
name = "sync-latency"
kind = "latency"
source = "op:sync"
threshold_ms = 100.0
target = 0.9
windows = [10, 60]
min_events = 2

[[objective]]
name = "verify-floor"
kind = "gauge"
source = "gauge:verified_per_s"
min = 1.0
"""


def full_exposition():
    registry = MetricsRegistry()
    registry.inc("dbt.blocks.translated", 42)
    registry.observe("dbt.rule.hit_length", 3, count=5)
    registry.observe_sketch("dbt.translate.ms", 1.5)
    registry.observe_sketch("dbt.translate.ms", 12.0)

    telemetry = ServiceTelemetry(window=60)
    telemetry.gaps.add(3)
    telemetry.observe_op("sync", 0.015)
    telemetry.observe_op("report_gaps", 0.002)

    engine = SloEngine.from_toml_text(SLO_TOML)
    for _ in range(5):
        engine.record("op:sync", 500.0)
    slo = engine.evaluate(gauges={"gauge:verified_per_s": 0.2})

    profiler = SamplingProfiler(hz=50)
    with phase("dbt.exec"):
        profiler.sample_once()

    return render_exposition(
        metrics=registry.snapshot(),
        telemetry=telemetry.snapshot(queue_depth=4),
        slo=slo,
        profile=profiler.snapshot(),
    )


class TestRendering:
    def test_output_parses_as_valid_prometheus_text(self):
        text = full_exposition()
        samples = parse_exposition(text)
        assert samples, "exposition rendered no samples"
        names = {name for name, _, _ in samples}
        assert "repro_dbt_blocks_translated_total" in names
        assert "repro_dbt_translate_ms" in names
        assert "repro_service_op_latency_ms" in names
        assert "repro_slo_breach" in names
        assert "repro_profile_samples_total" in names

    def test_counter_value_and_type(self):
        registry = MetricsRegistry()
        registry.inc("dbt.blocks.translated", 42)
        text = render_exposition(metrics=registry.snapshot())
        assert "# TYPE repro_dbt_blocks_translated_total counter" \
            in text
        assert "repro_dbt_blocks_translated_total 42" in text

    def test_summary_has_quantiles_sum_count(self):
        registry = MetricsRegistry()
        for ms in (1.0, 2.0, 3.0, 4.0):
            registry.observe_sketch("lat.ms", ms)
        text = render_exposition(metrics=registry.snapshot())
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        quantiles = [
            labels["quantile"]
            for labels, _ in by_name["repro_lat_ms"]
        ]
        assert quantiles == ["0.5", "0.95", "0.99"]
        (_, count) = by_name["repro_lat_ms_count"][0]
        assert count == 4
        (_, total) = by_name["repro_lat_ms_sum"][0]
        assert total == pytest.approx(10.0)

    def test_slo_breach_flags_and_burn_rates(self):
        engine = SloEngine.from_toml_text(SLO_TOML)
        for _ in range(5):
            engine.record("op:sync", 500.0)
        report = engine.evaluate(
            gauges={"gauge:verified_per_s": 0.2}
        )
        text = render_exposition(slo=report)
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in parse_exposition(text)
        )
        assert samples[
            ("repro_slo_breach", (("objective", "sync-latency"),))
        ] == 1.0
        assert samples[
            ("repro_slo_breach", (("objective", "verify-floor"),))
        ] == 1.0
        burn_keys = [k for k in samples if k[0] == "repro_slo_burn_rate"]
        assert len(burn_keys) == 2  # one per window

    def test_op_labels_escape_and_sanitize(self):
        telemetry = ServiceTelemetry(window=60)
        telemetry.observe_op('weird"op\\name', 0.001)
        text = render_exposition(telemetry=telemetry.snapshot())
        samples = parse_exposition(text)
        ops = {
            labels.get("op") for name, labels, _ in samples
            if name.startswith("repro_service_op_latency_ms")
        }
        assert any(op for op in ops if op)

    def test_empty_surfaces_render_empty(self):
        assert render_exposition() == ""
        assert parse_exposition("") == []

    def test_sanitize_name(self):
        assert sanitize_name("dbt.blocks.translated") \
            == "dbt_blocks_translated"
        assert sanitize_name("9start") == "_9start"


class TestValidator:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ExpositionError):
            parse_exposition("orphan_metric 1\n")

    def test_rejects_bad_label_syntax(self):
        text = (
            "# HELP m h\n# TYPE m gauge\n"
            'm{bad-label="x"} 1\n'
        )
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_rejects_unterminated_label_value(self):
        text = '# HELP m h\n# TYPE m gauge\nm{a="x} 1\n'
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_rejects_malformed_value(self):
        text = "# HELP m h\n# TYPE m gauge\nm notanumber\n"
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_rejects_bad_type(self):
        with pytest.raises(ExpositionError):
            parse_exposition("# TYPE m wibble\n")

    def test_accepts_escaped_quotes_in_labels(self):
        text = (
            "# HELP m h\n# TYPE m gauge\n"
            'm{a="x\\"y"} 1\n'
        )
        (sample,) = parse_exposition(text)
        assert sample[0] == "m"


class TestCli:
    def test_metrics_json_one_shot(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.inc("learning.rules", 7)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["--metrics-json", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "repro_learning_rules_total 7" in out
        parse_exposition(out)

    def test_profile_json_one_shot(self, tmp_path, capsys):
        profiler = SamplingProfiler(hz=50)
        with phase("learn.verify"):
            profiler.sample_once()
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(profiler.snapshot()))
        assert main([
            "--metrics-json", str(path),  # wrong shape is harmless
            "--profile-json", str(path), "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_profile_samples_total" in out
        assert 'phase="learn.verify"' in out


class TestSketchSummaryRoundtrip:
    def test_rendered_quantiles_match_sketch(self):
        sketch = QuantileSketch()
        for v in (10.0, 20.0, 30.0):
            sketch.observe(v)
        registry = MetricsRegistry()
        registry.merge({"sketches": {"lat": sketch.snapshot()}})
        text = render_exposition(metrics=registry.snapshot())
        samples = parse_exposition(text)
        p50 = next(
            value for name, labels, value in samples
            if name == "repro_lat" and labels.get("quantile") == "0.5"
        )
        assert p50 == pytest.approx(sketch.quantile(0.5))
