"""MetricsRegistry semantics, the shared formatter, and cross-process
merge under the parallel learner."""

import pickle

import pytest

from repro.learning.parallel import learn_corpus_parallel
from repro.minic import compile_source
from repro.obs.metrics import (
    MetricsRegistry,
    format_metrics,
    get_metrics,
    histogram_quantiles,
    set_metrics,
)


class TestHistogramQuantiles:
    def test_empty_histogram(self):
        assert histogram_quantiles({}) == {}
        assert histogram_quantiles({5: 0}) == {}

    def test_single_value(self):
        assert histogram_quantiles({7: 3}) == {"p50": 7, "p95": 7, "p99": 7}

    def test_nearest_rank_over_uniform_1_to_100(self):
        bucket = {value: 1 for value in range(1, 101)}
        assert histogram_quantiles(bucket) == {"p50": 50, "p95": 95,
                                               "p99": 99}

    def test_weighted_counts(self):
        # 90 observations of 1, 10 of 1000: p50 is 1, tail sees 1000.
        bucket = {1: 90, 1000: 10}
        summary = histogram_quantiles(bucket)
        assert summary["p50"] == 1
        assert summary["p95"] == 1000
        assert summary["p99"] == 1000

    def test_quantiles_are_observed_values(self):
        bucket = {2: 5, 9: 5}
        summary = histogram_quantiles(bucket)
        assert set(summary.values()) <= {2, 9}

    def test_custom_quantiles(self):
        bucket = {value: 1 for value in range(1, 11)}
        assert histogram_quantiles(bucket, (0.10, 0.90)) \
            == {"p10": 1, "p90": 9}


class TestRegistry:
    def test_inc_and_counter(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_observe_and_histogram(self):
        registry = MetricsRegistry()
        registry.observe("len", 2)
        registry.observe("len", 2)
        registry.observe("len", 5, count=3)
        assert registry.histogram("len") == {2: 2, 5: 3}
        assert registry.histogram("missing") == {}

    def test_len_counts_distinct_names(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a")
        registry.observe("h", 1)
        assert len(registry) == 2

    def test_snapshot_is_detached_and_picklable(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.observe("h", 7)
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {"a": 2},
            "histograms": {"h": {7: 1}},
            "quantiles": {"h": {"p50": 7, "p95": 7, "p99": 7}},
        }
        # Worker processes ship snapshots across the pool boundary.
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        snapshot["counters"]["a"] = 99
        snapshot["histograms"]["h"][7] = 99
        assert registry.counter("a") == 2
        assert registry.histogram("h") == {7: 1}

    def test_merge_registry_and_snapshot(self):
        left = MetricsRegistry()
        left.inc("a", 1)
        left.observe("h", 3)
        right = MetricsRegistry()
        right.inc("a", 2)
        right.inc("b", 5)
        right.observe("h", 3, count=2)
        right.observe("h", 9)
        left.merge(right)
        assert left.counter("a") == 3
        assert left.counter("b") == 5
        assert left.histogram("h") == {3: 3, 9: 1}
        # Merging the snapshot form adds the same amounts again.
        left.merge(right.snapshot())
        assert left.counter("a") == 5
        assert left.histogram("h") == {3: 5, 9: 2}

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("h", 1)
        registry.clear()
        assert len(registry) == 0
        assert registry.counter("a") == 0


class TestSketchSupport:
    def test_observe_sketch_and_accessor(self):
        registry = MetricsRegistry()
        registry.observe_sketch("dbt.translate.ms", 5.0)
        registry.observe_sketch("dbt.translate.ms", 15.0, count=3)
        sketch = registry.sketch("dbt.translate.ms")
        assert sketch is not None
        assert sketch.count == 4
        assert registry.sketch("missing") is None
        assert len(registry) == 1

    def test_snapshot_carries_sketches_only_when_used(self):
        registry = MetricsRegistry()
        registry.inc("a")
        assert "sketches" not in registry.snapshot()
        registry.observe_sketch("lat", 2.5)
        snapshot = registry.snapshot()
        assert snapshot["sketches"]["lat"]["count"] == 1
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_folds_sketches_across_process_boundary(self):
        worker = MetricsRegistry()
        for ms in (1.0, 2.0, 100.0):
            worker.observe_sketch("lat", ms)
        parent = MetricsRegistry()
        parent.observe_sketch("lat", 50.0)
        parent.merge(pickle.loads(pickle.dumps(worker.snapshot())))
        assert parent.sketch("lat").count == 4
        # A sketch the parent has never seen materialises on merge.
        assert parent.sketch("lat").quantile(0.99) \
            == pytest.approx(100.0, rel=0.02)

    def test_clear_drops_sketches(self):
        registry = MetricsRegistry()
        registry.observe_sketch("lat", 1.0)
        registry.clear()
        assert registry.sketch("lat") is None

    def test_formatter_renders_sketch_summary(self):
        registry = MetricsRegistry()
        registry.observe_sketch("dbt.translate.ms", 10.0)
        text = format_metrics(registry)
        assert "dbt.translate.ms.sketch" in text
        assert "count=1" in text
        assert "p99=" in text


class TestGlobalRegistry:
    def test_set_metrics_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_metrics(fresh)
        try:
            assert get_metrics() is fresh
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_set_none_installs_fresh_registry(self):
        previous = set_metrics(None)
        try:
            assert get_metrics() is not previous
            assert len(get_metrics()) == 0
        finally:
            set_metrics(previous)


class TestFormatter:
    def test_alignment_and_integer_rendering(self):
        registry = MetricsRegistry()
        registry.inc("learning.cache.hits", 12)
        registry.inc("learning.cache.misses", 3.0)  # whole float -> int
        registry.inc("learning.pool.seconds", 1.5)
        text = format_metrics(registry, title="economy")
        lines = text.splitlines()
        assert lines[0] == "economy:"
        assert "learning.cache.hits" in text
        assert "12" in text and "3" in text
        assert "1.500" in text
        # Values line up in one column.
        positions = {line.rstrip().rfind(" ") for line in lines[1:]}
        assert len(positions) >= 1

    def test_histogram_rendering_sorted_by_value(self):
        registry = MetricsRegistry()
        registry.observe("dbt.rule.hit_length", 3)
        registry.observe("dbt.rule.hit_length", 1, count=2)
        text = format_metrics(registry)
        assert "dbt.rule.hit_length{}" in text
        assert "{1:2, 3:1}" in text

    def test_prefix_filters_string_and_tuple(self):
        registry = MetricsRegistry()
        registry.inc("learning.cache.hits", 1)
        registry.inc("learning.verify.calls", 2)
        registry.inc("dbt.runs", 3)
        only_cache = format_metrics(registry, prefix="learning.cache.")
        assert "learning.cache.hits" in only_cache
        assert "learning.verify.calls" not in only_cache
        assert "dbt.runs" not in only_cache
        both = format_metrics(
            registry, prefix=("learning.cache.", "learning.verify.")
        )
        assert "learning.cache.hits" in both
        assert "learning.verify.calls" in both
        assert "dbt.runs" not in both

    def test_empty_selection_renders_none(self):
        assert format_metrics(MetricsRegistry()) == "metrics: (none)"
        registry = MetricsRegistry()
        registry.inc("a")
        assert format_metrics(registry, title="t", prefix="zzz.") \
            == "t: (none)"

    def test_accepts_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        assert format_metrics(registry.snapshot()) \
            == format_metrics(registry)


SOURCE = """
int data[16];
int process(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 16) {
    data[i] = i * 3;
    i += 1;
  }
  return process(data, 16);
}
"""


class TestParallelMerge:
    """Worker registries ship snapshots that merge into the parent's."""

    @pytest.fixture(scope="class")
    def merged(self):
        guest = compile_source(SOURCE, "arm", 2, "llvm")
        host = compile_source(SOURCE, "x86", 2, "llvm")
        previous = set_metrics(None)
        try:
            outcomes = learn_corpus_parallel(
                {"unit": (guest, host)}, jobs=2, chunk_size=1
            )
            registry = get_metrics()
        finally:
            set_metrics(previous)
        return outcomes, registry

    def test_worker_verify_calls_match_reports(self, merged):
        outcomes, registry = merged
        expected = sum(
            o.report.verify_calls for o in outcomes.values()
        )
        assert registry.counter("learning.worker.verify_calls") \
            == expected > 0

    def test_worker_resolution_accounting(self, merged):
        outcomes, registry = merged
        report = next(iter(outcomes.values())).report
        resolved = registry.counter("learning.worker.resolved")
        assert resolved > 0
        # Every verification the workers resolved shows up exactly once
        # in the per-candidate histogram.
        calls_hist = registry.histogram(
            "learning.worker.calls_per_candidate"
        )
        assert sum(calls_hist.values()) == resolved
        assert registry.counter("learning.pool.workers") == 2
        assert registry.counter("learning.pool.chunks") \
            == registry.counter("learning.worker.chunks") > 0
        assert report.verify_calls > 0

    def test_pool_metrics_merge_with_parent_side_counters(self, merged):
        _, registry = merged
        # Parent-side pipeline counters land in the same registry as
        # the merged worker snapshots.
        assert registry.counter("learning.sequences") > 0
        assert registry.counter("learning.rules") > 0
