"""Tests for the bounded-error quantile sketch."""

import json
import math
import random

import pytest

from repro.obs.sketch import (
    DEFAULT_MAX_BUCKETS,
    QuantileSketch,
    SketchError,
)


def exact_quantile(values, q):
    """Nearest-rank sample quantile, the ground truth the sketch
    guarantees against."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestErrorBound:
    def test_quantiles_within_declared_relative_error(self):
        rng = random.Random(1234)
        for alpha in (0.01, 0.02, 0.05):
            sketch = QuantileSketch(relative_error=alpha)
            values = [rng.lognormvariate(1.5, 1.2) for _ in range(5000)]
            for v in values:
                sketch.observe(v)
            for q in (0.10, 0.50, 0.90, 0.95, 0.99, 1.0):
                true = exact_quantile(values, q)
                est = sketch.quantile(q)
                assert abs(est - true) <= alpha * true + 1e-12, (
                    f"alpha={alpha} q={q}: est={est} true={true}"
                )

    def test_uniform_and_heavy_tail_distributions(self):
        rng = random.Random(99)
        workloads = [
            [rng.uniform(0.5, 200.0) for _ in range(2000)],
            [rng.paretovariate(1.5) for _ in range(2000)],
        ]
        for values in workloads:
            sketch = QuantileSketch(relative_error=0.01)
            for v in values:
                sketch.observe(v)
            for q in (0.5, 0.95, 0.99):
                true = exact_quantile(values, q)
                assert abs(sketch.quantile(q) - true) <= 0.01 * true

    def test_exact_stats_are_exact(self):
        sketch = QuantileSketch()
        values = [3.0, 1.5, 9.25, 0.75]
        for v in values:
            sketch.observe(v)
        assert sketch.count == 4
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.mean == pytest.approx(sum(values) / 4)
        summary = sketch.summary()
        assert summary["min"] == pytest.approx(0.75)
        assert summary["max"] == pytest.approx(9.25)
        assert summary["relative_error"] == 0.01


class TestZeroAndEdges:
    def test_zero_values_report_exactly_zero(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(100.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.count == 11

    def test_negative_values_clamp_to_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(-5.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["min"] == 0.0

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.99) == 0.0
        assert sketch.fraction_over(1.0) == 0.0
        assert sketch.mean == 0.0
        assert len(sketch) == 0

    def test_weighted_observe(self):
        sketch = QuantileSketch()
        sketch.observe(10.0, count=3)
        sketch.observe(20.0, count=1)
        assert sketch.count == 4
        assert abs(sketch.quantile(0.5) - 10.0) <= 0.1
        sketch.observe(1.0, count=0)
        assert sketch.count == 4

    def test_invalid_parameters(self):
        with pytest.raises(SketchError):
            QuantileSketch(relative_error=0.0)
        with pytest.raises(SketchError):
            QuantileSketch(relative_error=1.5)
        with pytest.raises(SketchError):
            QuantileSketch(max_buckets=1)
        with pytest.raises(SketchError):
            QuantileSketch().quantile(1.5)


class TestFractionOver:
    def test_fraction_over_threshold(self):
        sketch = QuantileSketch()
        for _ in range(90):
            sketch.observe(10.0)
        for _ in range(10):
            sketch.observe(1000.0)
        assert sketch.fraction_over(100.0) == pytest.approx(0.10)
        assert sketch.fraction_over(2000.0) == 0.0
        assert sketch.fraction_over(1.0) == pytest.approx(1.0)


class TestMerge:
    def test_merge_equals_single_sketch(self):
        rng = random.Random(7)
        values = [rng.expovariate(0.1) for _ in range(3000)]
        whole = QuantileSketch()
        parts = [QuantileSketch() for _ in range(3)]
        for i, v in enumerate(values):
            whole.observe(v)
            parts[i % 3].observe(v)
        merged = QuantileSketch()
        for part in parts:
            merged.merge(part)
        merged_snap = merged.snapshot()
        whole_snap = whole.snapshot()
        # Float sums accumulate in different orders; everything else
        # (bucket counts, count, min/max) is exactly equal.
        assert merged_snap.pop("sum") == pytest.approx(
            whole_snap.pop("sum")
        )
        assert merged_snap == whole_snap

    def test_merge_is_associative_and_commutative(self):
        rng = random.Random(21)
        parts = []
        for _ in range(4):
            sketch = QuantileSketch()
            for _ in range(500):
                # Integer-valued observations add exactly in any
                # order, so merge order cannot perturb the sum.
                sketch.observe(float(rng.randrange(1, 1 << 20)))
            parts.append(sketch)

        def combine(order):
            out = QuantileSketch()
            for idx in order:
                out.merge(parts[idx])
            return out.to_json()

        baseline = combine([0, 1, 2, 3])
        assert combine([3, 2, 1, 0]) == baseline
        assert combine([2, 0, 3, 1]) == baseline

    def test_merge_from_snapshot_dict_roundtrip(self):
        sketch = QuantileSketch()
        for v in (1.0, 2.0, 0.0, 55.5):
            sketch.observe(v)
        snap = sketch.snapshot()
        # Snapshot must be plain JSON.
        restored = QuantileSketch.from_snapshot(
            json.loads(json.dumps(snap))
        )
        assert restored.snapshot() == snap
        assert restored.to_json() == sketch.to_json()

    def test_merge_rejects_mismatched_resolution(self):
        a = QuantileSketch(relative_error=0.01)
        b = QuantileSketch(relative_error=0.05)
        with pytest.raises(SketchError):
            a.merge(b)
        with pytest.raises(SketchError):
            a.merge({"not": "a sketch"})

    def test_byte_identical_snapshots_regardless_of_order(self):
        # Exactly-representable values: addition order cannot change
        # the float sum, so order-independence is byte-exact.
        values = [5.0, 0.125, 300.0, 42.0, 0.0, 7.5]
        forward = QuantileSketch()
        backward = QuantileSketch()
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.to_json() == backward.to_json()

    def test_byte_identical_on_replay(self):
        rng = random.Random(77)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(800)]

        def run():
            sketch = QuantileSketch()
            for v in values:
                sketch.observe(v)
            return sketch.to_json()

        assert run() == run()


class TestBoundedMemory:
    def test_bucket_count_is_bounded(self):
        sketch = QuantileSketch(relative_error=0.01, max_buckets=64)
        rng = random.Random(5)
        # Span ~12 orders of magnitude: far more natural buckets
        # than the cap.
        for _ in range(20000):
            sketch.observe(10 ** rng.uniform(-6, 6))
        assert len(sketch.snapshot()["buckets"]) <= 64
        assert sketch.count == 20000

    def test_collapse_preserves_upper_quantiles(self):
        values = []
        rng = random.Random(11)
        sketch = QuantileSketch(relative_error=0.01, max_buckets=128)
        for _ in range(10000):
            v = 10 ** rng.uniform(-4, 3)
            values.append(v)
            sketch.observe(v)
        # Low keys collapsed, but p95/p99 live in high keys and keep
        # the bound.
        for q in (0.95, 0.99):
            true = exact_quantile(values, q)
            assert abs(sketch.quantile(q) - true) <= 0.01 * true

    def test_merge_respects_bucket_cap(self):
        a = QuantileSketch(max_buckets=32)
        b = QuantileSketch(max_buckets=32)
        rng = random.Random(3)
        for _ in range(5000):
            a.observe(10 ** rng.uniform(-5, 0))
            b.observe(10 ** rng.uniform(0, 5))
        a.merge(b)
        assert len(a.snapshot()["buckets"]) <= 32
        assert a.count == 10000

    def test_default_cap_wide_enough_for_latencies(self):
        # Milliseconds from 1us to 100s fit without collapsing at the
        # default resolution.
        sketch = QuantileSketch()
        value = 0.001
        while value < 100_000.0:
            sketch.observe(value)
            value *= 1.05
        assert len(sketch.snapshot()["buckets"]) < DEFAULT_MAX_BUCKETS
