"""Tests for the sampling profiler and phase attribution."""

import json
import threading
import time

import pytest

from repro.obs.profiler import (
    IDLE_PHASE,
    SamplingProfiler,
    current_phase,
    get_profiler,
    phase,
    profile_report,
    set_profiler,
)


class TestPhaseMarkers:
    def test_phase_stack_nesting(self):
        assert current_phase() == IDLE_PHASE
        with phase("outer"):
            assert current_phase() == "outer"
            with phase("inner"):
                assert current_phase() == "inner"
            assert current_phase() == "outer"
        assert current_phase() == IDLE_PHASE

    def test_phase_survives_exceptions(self):
        with pytest.raises(RuntimeError):
            with phase("doomed"):
                raise RuntimeError("boom")
        assert current_phase() == IDLE_PHASE

    def test_phases_are_per_thread(self):
        seen = {}

        def worker():
            with phase("worker-phase"):
                seen["worker"] = current_phase()
                time.sleep(0.02)

        thread = threading.Thread(target=worker)
        with phase("main-phase"):
            thread.start()
            thread.join()
            assert current_phase() == "main-phase"
        assert seen["worker"] == "worker-phase"


class TestDeterministicSampling:
    """Drive sample_once() by hand — no timer thread, no flakiness."""

    def test_samples_attribute_to_innermost_phase(self):
        profiler = SamplingProfiler(hz=50)
        with phase("learn.extract"):
            with phase("learn.verify"):
                for _ in range(5):
                    profiler.sample_once()
        snap = profiler.snapshot()
        phases = snap["phases"]
        assert phases["learn.verify"]["self_samples"] == 5
        assert phases["learn.verify"]["cumulative_samples"] == 5
        # The outer phase accrues cumulative but not self samples.
        assert phases["learn.extract"]["self_samples"] == 0
        assert phases["learn.extract"]["cumulative_samples"] == 5

    def test_idle_attribution(self):
        profiler = SamplingProfiler(hz=50)
        for _ in range(3):
            profiler.sample_once()
        snap = profiler.snapshot()
        assert snap["phases"][IDLE_PHASE]["self_samples"] >= 3
        assert snap["total_samples"] >= 3

    def test_include_idle_false_skips_phaseless_threads(self):
        profiler = SamplingProfiler(hz=50, include_idle=False)
        profiler.sample_once()
        assert IDLE_PHASE not in profiler.snapshot()["phases"]

    def test_locations_recorded_for_phased_samples(self):
        profiler = SamplingProfiler(hz=50)
        with phase("hot"):
            profiler.sample_once()
        locs = profiler.snapshot()["phases"]["hot"]["locations"]
        assert locs, "expected at least one code location"
        for where in locs:
            filename, lineno, func = where.rsplit(":", 2)
            assert filename.endswith(".py")
            assert int(lineno) > 0
            assert func

    def test_snapshot_is_json_and_picklable(self):
        profiler = SamplingProfiler(hz=50)
        with phase("p"):
            profiler.sample_once()
        snap = profiler.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestTimerThread:
    def test_start_stop_collects_samples(self):
        profiler = SamplingProfiler(hz=200)
        profiler.start()
        assert profiler.running
        deadline = time.monotonic() + 2.0
        with phase("busy"):
            while (
                profiler.snapshot()["total_samples"] < 5
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        profiler.stop()
        assert not profiler.running
        snap = profiler.snapshot()
        assert snap["total_samples"] >= 5
        assert snap["wall_seconds"] > 0.0
        # Stop is idempotent; restart works.
        profiler.stop()
        profiler.start()
        profiler.stop()

    def test_context_manager(self):
        with SamplingProfiler(hz=100) as profiler:
            assert profiler.running
        assert not profiler.running

    def test_invalid_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestMerge:
    def _profile_with(self, phase_name, samples):
        profiler = SamplingProfiler(hz=50)
        with phase(phase_name):
            for _ in range(samples):
                profiler.sample_once()
        return profiler

    def test_merge_adds_counts(self):
        a = self._profile_with("alpha", 3)
        b = self._profile_with("beta", 2)
        a.merge(b)
        snap = a.snapshot()
        assert snap["phases"]["alpha"]["self_samples"] == 3
        assert snap["phases"]["beta"]["self_samples"] == 2
        assert snap["total_samples"] == 5

    def test_merge_accepts_snapshot_dict(self):
        a = self._profile_with("alpha", 2)
        b = self._profile_with("alpha", 4)
        a.merge(json.loads(json.dumps(b.snapshot())))
        assert a.snapshot()["phases"]["alpha"]["self_samples"] == 6

    def test_merge_is_associative_and_commutative(self):
        snaps = [
            self._profile_with(name, n).snapshot()
            for name, n in (("x", 1), ("y", 2), ("z", 3))
        ]

        def combine(order):
            out = SamplingProfiler(hz=50)
            for idx in order:
                out.merge(snaps[idx])
            return json.dumps(out.snapshot(), sort_keys=True)

        assert combine([0, 1, 2]) == combine([2, 0, 1])
        assert combine([0, 1, 2]) == combine([1, 2, 0])

    def test_merge_rejects_garbage(self):
        profiler = SamplingProfiler()
        with pytest.raises(ValueError):
            profiler.merge({"kind": "ddsketch"})

    def test_clear(self):
        profiler = self._profile_with("p", 3)
        profiler.clear()
        snap = profiler.snapshot()
        assert snap["total_samples"] == 0
        assert snap["phases"] == {}


class TestReportAndRegistry:
    def test_profile_report_lines(self):
        profiler = SamplingProfiler(hz=50)
        with phase("dbt.exec"):
            for _ in range(4):
                profiler.sample_once()
        lines = profile_report(profiler.snapshot())
        assert lines[0].startswith("profile:")
        assert any("dbt.exec" in line for line in lines[1:])

    def test_global_registry_roundtrip(self):
        original = get_profiler()
        try:
            mine = SamplingProfiler(hz=31)
            set_profiler(mine)
            assert get_profiler() is mine
        finally:
            set_profiler(original)
