"""Trace aggregation: the report layer must re-derive the exact
LearningReport / DBTStats numbers from lifecycle events alone."""

import io
import json

import pytest

from repro.dbt.engine import DBTEngine
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source
from repro.obs.metrics import set_metrics
from repro.obs.report import (
    aggregate,
    coverage_from_trace,
    hit_lengths_from_trace,
    main,
    reconcile,
    render_report,
    table1_from_trace,
)
from repro.obs.trace import read_trace, tracing

SOURCE = """
int data[16];
int process(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 16) {
    data[i] = i * 3;
    i += 1;
  }
  return process(data, 16);
}
"""


@pytest.fixture(scope="module")
def traced():
    """One traced learn + DBT session: the learning outcome, both
    engines, and the parsed trace."""
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    sink = io.StringIO()
    previous = set_metrics(None)
    try:
        with tracing(sink):
            outcome = learn_rules(guest, host, benchmark="unit")
            store = RuleStore.from_rules(outcome.rules)
            qemu = DBTEngine(guest, "qemu")
            qemu_result = qemu.run()
            rules = DBTEngine(guest, "rules", store)
            rules.run()
            rules.run()  # second run: lifetime must stay reconciled
    finally:
        set_metrics(previous)
    records = read_trace(io.StringIO(sink.getvalue()))
    return {
        "outcome": outcome,
        "qemu": qemu,
        "qemu_result": qemu_result,
        "rules": rules,
        "records": records,
        "agg": aggregate(records),
    }


class TestLearningAggregation:
    def test_count_signature_matches_report_exactly(self, traced):
        derived = traced["agg"].learning["unit"]
        assert derived.count_signature() == \
            traced["outcome"].report.count_signature()

    def test_table1_counts_from_trace(self, traced):
        report = traced["outcome"].report
        counts = table1_from_trace(traced["agg"])["unit"]
        assert counts["total_sequences"] == report.total_sequences
        assert counts["rules"] == report.rules == \
            len(traced["outcome"].rules)
        assert counts["verify_calls"] == report.verify_calls

    def test_stage_spans_recorded(self, traced):
        spans = traced["agg"].spans
        for stage in ("learn.extract", "learn.paramize", "learn.verify"):
            assert spans[(stage, "unit")] >= 0

    def test_embedded_report_record_present(self, traced):
        derived = traced["agg"].learning["unit"]
        assert derived.report_counts is not None
        assert derived.report_timings is not None
        assert derived.report_timings["learn_seconds"] > 0


class TestEngineAggregation:
    def test_qemu_engine_matches_stats(self, traced):
        engine = traced["qemu"]
        derived = traced["agg"].engines[engine.engine_id]
        stats = traced["qemu_result"].stats
        assert derived.mode == "qemu"
        assert derived.translated_blocks == stats.translated_blocks
        assert derived.static_guest == stats.static_guest_instructions
        assert derived.dispatches == stats.perf.dispatches
        assert derived.dynamic_guest == \
            stats.dynamic_guest_instructions
        assert derived.exec_cycles == pytest.approx(
            stats.perf.exec_cycles
        )

    def test_rules_engine_sums_over_runs(self, traced):
        engine = traced["rules"]
        derived = traced["agg"].engines[engine.engine_id]
        assert derived.runs == 2
        assert derived.dispatches == engine.lifetime.perf.dispatches
        assert derived.dynamic_guest == \
            engine.lifetime.dynamic_guest_instructions

    def test_coverage_from_trace_matches_dbtstats(self, traced):
        engine = traced["rules"]
        coverage = coverage_from_trace(traced["agg"])
        assert set(coverage) == {engine.engine_id}
        s_p, d_p = coverage[engine.engine_id]
        assert s_p == pytest.approx(engine.stats.static_coverage)
        assert d_p == pytest.approx(engine.stats.dynamic_coverage)
        assert 0 < s_p <= 1
        assert 0 < d_p <= 1

    def test_hit_lengths_from_trace_matches_dbtstats(self, traced):
        engine = traced["rules"]
        lengths = hit_lengths_from_trace(traced["agg"])
        assert lengths[engine.engine_id] == engine.stats.hit_rule_lengths
        assert lengths[engine.engine_id]  # rules actually hit

    def test_miss_reasons_match_dbtstats(self, traced):
        engine = traced["rules"]
        derived = traced["agg"].engines[engine.engine_id]
        assert derived.miss_reasons == engine.stats.rule_miss_reasons
        ranked = derived.ranked_miss_reasons()
        assert ranked == sorted(ranked, key=lambda kv: kv[1],
                                reverse=True)

    def test_hottest_blocks_ranked_by_cycles(self, traced):
        engine = traced["qemu"]
        derived = traced["agg"].engines[engine.engine_id]
        hot = derived.hottest_blocks(top=3)
        assert 0 < len(hot) <= 3
        cycles = [row[1] for row in hot]
        assert cycles == sorted(cycles, reverse=True)
        shares = [row[3] for row in hot]
        assert all(0 < share <= 1 for share in shares)
        assert sum(shares) <= 1 + 1e-9


class TestReconciliation:
    def test_reconcile_is_clean(self, traced):
        assert reconcile(traced["agg"]) == []

    def test_render_reports_ok(self, traced):
        text = render_report(traced["agg"])
        assert "reconciliation: OK" in text
        assert "MISMATCH" not in text
        assert "unit" in text

    def test_tampered_report_record_is_caught(self, traced):
        records = [
            type(r)(ts=r.ts, kind=r.kind, name=r.name,
                    fields=dict(r.fields))
            for r in traced["records"]
        ]
        for record in records:
            if record.name == "learn.report":
                counts = dict(record.fields["counts"])
                counts["rules"] += 1
                record.fields = dict(record.fields, counts=counts)
        agg = aggregate(records)
        problems = reconcile(agg)
        assert any("rules" in problem for problem in problems)
        assert "MISMATCH" in render_report(agg)

    def test_missing_report_record_is_caught(self, traced):
        records = [r for r in traced["records"]
                   if r.name != "learn.report"]
        problems = reconcile(aggregate(records))
        assert any("no learn.report" in problem for problem in problems)


class TestCli:
    @pytest.fixture()
    def trace_path(self, traced, tmp_path):
        from repro.obs.trace import encode_line

        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(encode_line(r) + "\n" for r in traced["records"])
        )
        return path

    def test_text_report_exits_zero(self, traced, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "reconciliation: OK" in out
        assert f"{traced['agg'].records} records" in out

    def test_json_report(self, traced, trace_path, capsys):
        assert main([str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciliation"] == []
        assert payload["table1"]["unit"]["rules"] == \
            traced["outcome"].report.rules
        engine_key = str(traced["rules"].engine_id)
        assert engine_key in payload["coverage"]
        assert engine_key in payload["hit_lengths"]

    def test_tampered_trace_exits_one(self, traced, trace_path, capsys):
        lines = trace_path.read_text().splitlines()
        tampered = []
        for line in lines:
            data = json.loads(line)
            if data["name"] == "learn.report":
                data["fields"]["counts"]["verify_calls"] += 5
            tampered.append(json.dumps(data))
        trace_path.write_text("\n".join(tampered) + "\n")
        assert main([str(trace_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_top_flag_limits_hot_blocks(self, trace_path, capsys):
        assert main([str(trace_path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "hottest blocks (top 1):" in out
