"""Trace aggregation: the report layer must re-derive the exact
LearningReport / DBTStats numbers from lifecycle events alone."""

import io
import json

import pytest

from repro.dbt.engine import DBTEngine
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source
from repro.obs.metrics import set_metrics
from repro.obs.report import (
    aggregate,
    coverage_from_trace,
    hit_lengths_from_trace,
    main,
    profitability_from_trace,
    reconcile,
    reconcile_profitability,
    reconcile_stitch_quantiles,
    render_report,
    render_stitch,
    stitch,
    table1_from_trace,
)
from repro.obs.trace import (
    TRACE_HEADER_NAME,
    TRACE_SEMANTICS_VERSION,
    TraceError,
    TraceRecord,
    read_trace,
    tracing,
)

SOURCE = """
int data[16];
int process(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 16) {
    data[i] = i * 3;
    i += 1;
  }
  return process(data, 16);
}
"""


@pytest.fixture(scope="module")
def traced():
    """One traced learn + DBT session: the learning outcome, both
    engines, and the parsed trace."""
    guest = compile_source(SOURCE, "arm", 2, "llvm")
    host = compile_source(SOURCE, "x86", 2, "llvm")
    sink = io.StringIO()
    previous = set_metrics(None)
    try:
        with tracing(sink):
            outcome = learn_rules(guest, host, benchmark="unit")
            store = RuleStore.from_rules(outcome.rules)
            qemu = DBTEngine(guest, "qemu")
            qemu_result = qemu.run()
            rules = DBTEngine(guest, "rules", store)
            rules.run()
            rules.run()  # second run: lifetime must stay reconciled
    finally:
        set_metrics(previous)
    records = read_trace(io.StringIO(sink.getvalue()))
    return {
        "outcome": outcome,
        "qemu": qemu,
        "qemu_result": qemu_result,
        "rules": rules,
        "records": records,
        "agg": aggregate(records),
    }


class TestLearningAggregation:
    def test_count_signature_matches_report_exactly(self, traced):
        derived = traced["agg"].learning["unit"]
        assert derived.count_signature() == \
            traced["outcome"].report.count_signature()

    def test_table1_counts_from_trace(self, traced):
        report = traced["outcome"].report
        counts = table1_from_trace(traced["agg"])["unit"]
        assert counts["total_sequences"] == report.total_sequences
        assert counts["rules"] == report.rules == \
            len(traced["outcome"].rules)
        assert counts["verify_calls"] == report.verify_calls

    def test_stage_spans_recorded(self, traced):
        spans = traced["agg"].spans
        for stage in ("learn.extract", "learn.paramize", "learn.verify"):
            assert spans[(stage, "unit")] >= 0

    def test_embedded_report_record_present(self, traced):
        derived = traced["agg"].learning["unit"]
        assert derived.report_counts is not None
        assert derived.report_timings is not None
        assert derived.report_timings["learn_seconds"] > 0


class TestEngineAggregation:
    def test_qemu_engine_matches_stats(self, traced):
        engine = traced["qemu"]
        derived = traced["agg"].engines[engine.engine_id]
        stats = traced["qemu_result"].stats
        assert derived.mode == "qemu"
        assert derived.translated_blocks == stats.translated_blocks
        assert derived.static_guest == stats.static_guest_instructions
        assert derived.dispatches == stats.perf.dispatches
        assert derived.dynamic_guest == \
            stats.dynamic_guest_instructions
        assert derived.exec_cycles == pytest.approx(
            stats.perf.exec_cycles
        )

    def test_rules_engine_sums_over_runs(self, traced):
        engine = traced["rules"]
        derived = traced["agg"].engines[engine.engine_id]
        assert derived.runs == 2
        assert derived.dispatches == engine.lifetime.perf.dispatches
        assert derived.dynamic_guest == \
            engine.lifetime.dynamic_guest_instructions

    def test_coverage_from_trace_matches_dbtstats(self, traced):
        engine = traced["rules"]
        coverage = coverage_from_trace(traced["agg"])
        assert set(coverage) == {engine.engine_id}
        s_p, d_p = coverage[engine.engine_id]
        assert s_p == pytest.approx(engine.stats.static_coverage)
        assert d_p == pytest.approx(engine.stats.dynamic_coverage)
        assert 0 < s_p <= 1
        assert 0 < d_p <= 1

    def test_hit_lengths_from_trace_matches_dbtstats(self, traced):
        engine = traced["rules"]
        lengths = hit_lengths_from_trace(traced["agg"])
        assert lengths[engine.engine_id] == engine.stats.hit_rule_lengths
        assert lengths[engine.engine_id]  # rules actually hit

    def test_miss_reasons_match_dbtstats(self, traced):
        engine = traced["rules"]
        derived = traced["agg"].engines[engine.engine_id]
        assert derived.miss_reasons == engine.stats.rule_miss_reasons
        ranked = derived.ranked_miss_reasons()
        assert ranked == sorted(ranked, key=lambda kv: kv[1],
                                reverse=True)

    def test_hottest_blocks_ranked_by_cycles(self, traced):
        engine = traced["qemu"]
        derived = traced["agg"].engines[engine.engine_id]
        hot = derived.hottest_blocks(top=3)
        assert 0 < len(hot) <= 3
        cycles = [row[1] for row in hot]
        assert cycles == sorted(cycles, reverse=True)
        shares = [row[3] for row in hot]
        assert all(0 < share <= 1 for share in shares)
        assert sum(shares) <= 1 + 1e-9


class TestProfitabilityReport:
    def test_aggregated_ledgers_match_engine(self, traced):
        engine = traced["rules"]
        derived = traced["agg"].engines[engine.engine_id]
        ledgers = {p.digest: p for p in engine.rule_profitability()}
        assert set(derived.rule_profiles) == set(ledgers)
        for digest, fields in derived.rule_profiles.items():
            ledger = ledgers[digest]
            assert fields["hits"] == ledger.hits
            assert fields["exec_hits"] == ledger.exec_hits
            assert fields["net_cycles"] == \
                pytest.approx(ledger.net_cycles)
            assert fields["profitable"] == ledger.profitable

    def test_profitability_sorted_net_desc(self, traced):
        engine = traced["rules"]
        table = profitability_from_trace(traced["agg"])
        rows = table[engine.engine_id]
        assert rows  # rules actually hit, so ledgers exist
        nets = [row["net_cycles"] for row in rows]
        assert nets == sorted(nets, reverse=True)
        assert [row["digest"] for row in rows] == \
            [p.digest for p in engine.rule_profitability()]

    def test_render_includes_profitability_table(self, traced):
        engine = traced["rules"]
        text = render_report(traced["agg"])
        assert "rule profitability" in text
        for profile in engine.rule_profitability():
            assert profile.digest in text

    def test_tampered_profile_hits_are_caught(self, traced):
        records = [
            type(r)(ts=r.ts, kind=r.kind, name=r.name,
                    fields=dict(r.fields))
            for r in traced["records"]
        ]
        for record in records:
            if record.name == "dbt.rule_profile":
                record.fields["hits"] += 1
        problems = reconcile_profitability(aggregate(records))
        assert any("rule_profile hits" in p for p in problems)

    def test_clean_profiles_reconcile(self, traced):
        assert reconcile_profitability(traced["agg"]) == []


def _header(epoch: float) -> TraceRecord:
    return TraceRecord(
        ts=0.0, kind="event", name=TRACE_HEADER_NAME,
        fields={"version": TRACE_SEMANTICS_VERSION, "epoch": epoch,
                "pid": 1},
    )


def _gap_files():
    """Synthetic client + server traces for one gap's journey.

    Client clock starts at epoch 100.0, server at 100.2; the gap is
    captured at abs 100.5, settled server-side at abs 102.0 naming
    bundle b1, and the client hot-installs b1 at abs 102.5 — an
    end-to-end latency of exactly 2.0 seconds.
    """
    client = [
        _header(100.0),
        TraceRecord(ts=0.5, kind="event", name="service.gap_capture",
                    fields={"digest": "g1", "length": 3},
                    trace_id="t1", span_id="s1"),
        TraceRecord(ts=2.5, kind="event", name="dbt.hot_install",
                    fields={"source": "direct", "digest": "b1",
                            "installed": 2, "invalidated": 0}),
    ]
    server = [
        _header(100.2),
        TraceRecord(ts=0.8, kind="event", name="service.gap_received",
                    fields={"digest": "g1"},
                    trace_id="t1", span_id="s2"),
        TraceRecord(ts=1.8, kind="event", name="service.gap_settled",
                    fields={"digest": "g1", "bundle": "b1",
                            "rules": 2},
                    trace_id="t1", span_id="s3"),
    ]
    return client, server


class TestStitch:
    def test_joins_capture_settle_install_across_files(self):
        client, server = _gap_files()
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        (journey,) = result.journeys
        assert journey.trace_id == "t1"
        assert journey.digest == "g1"
        assert journey.bundle == "b1"
        assert journey.captured_at == pytest.approx(100.5)
        assert journey.settled_at == pytest.approx(102.0)
        assert journey.installed_at == pytest.approx(102.5)
        assert journey.latency == pytest.approx(2.0)

    def test_latency_summary_percentiles(self):
        client, server = _gap_files()
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        summary = result.latency_summary()
        assert summary["count"] == 1
        # Quantiles come from the sketch: exact within its declared
        # relative-error bound; max stays exact.
        alpha = summary["relative_error"]
        assert summary["p50"] == pytest.approx(2000.0, rel=alpha)
        assert summary["p95"] == pytest.approx(2000.0, rel=alpha)
        assert summary["max"] == pytest.approx(2000.0)

    def test_latency_sketch_feeds_slo_source(self):
        client, server = _gap_files()
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        sketch = result.latency_sketch()
        assert sketch.count == 1
        assert sketch.quantile(0.99) == pytest.approx(
            2000.0, rel=sketch.relative_error
        )

    def test_sketch_percentiles_reconcile_with_raw_events(self):
        client, server = _gap_files()
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        assert reconcile_stitch_quantiles(result) == []
        # And with no completed journeys there is nothing to check.
        empty = stitch([("client.jsonl", [_header(100.0)])])
        assert reconcile_stitch_quantiles(empty) == []

    def test_unsettled_gap_stays_incomplete(self):
        client, _ = _gap_files()
        result = stitch([("client.jsonl", client)])
        (journey,) = result.journeys
        assert journey.settled_at is None
        assert journey.latency is None
        assert result.latency_summary() == {"count": 0}
        assert "no completed journeys" in render_stitch(result)

    def test_install_before_capture_not_matched(self):
        client, server = _gap_files()
        # Move the hot-install before the capture: a pre-existing
        # bundle with the same digest must not complete the journey.
        client[2] = TraceRecord(
            ts=0.1, kind="event", name="dbt.hot_install",
            fields={"source": "direct", "digest": "b1",
                    "installed": 2, "invalidated": 0},
        )
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        (journey,) = result.journeys
        assert journey.bundle == "b1"
        assert journey.installed_at is None

    def test_headerless_file_is_rejected(self):
        client, _ = _gap_files()
        with pytest.raises(TraceError, match="epoch"):
            stitch([("legacy.jsonl", client[1:])])

    def test_render_mentions_latency(self):
        client, server = _gap_files()
        result = stitch([("client.jsonl", client),
                         ("server.jsonl", server)])
        text = render_stitch(result)
        assert "stitched timeline (2 files)" in text
        assert "1 captured, 1 settled, 1 hot-installed" in text
        assert "count 1, p50 20" in text  # ~2000ms within sketch error


class TestReconciliation:
    def test_reconcile_is_clean(self, traced):
        assert reconcile(traced["agg"]) == []

    def test_render_reports_ok(self, traced):
        text = render_report(traced["agg"])
        assert "reconciliation: OK" in text
        assert "MISMATCH" not in text
        assert "unit" in text

    def test_tampered_report_record_is_caught(self, traced):
        records = [
            type(r)(ts=r.ts, kind=r.kind, name=r.name,
                    fields=dict(r.fields))
            for r in traced["records"]
        ]
        for record in records:
            if record.name == "learn.report":
                counts = dict(record.fields["counts"])
                counts["rules"] += 1
                record.fields = dict(record.fields, counts=counts)
        agg = aggregate(records)
        problems = reconcile(agg)
        assert any("rules" in problem for problem in problems)
        assert "MISMATCH" in render_report(agg)

    def test_missing_report_record_is_caught(self, traced):
        records = [r for r in traced["records"]
                   if r.name != "learn.report"]
        problems = reconcile(aggregate(records))
        assert any("no learn.report" in problem for problem in problems)


class TestCli:
    @pytest.fixture()
    def trace_path(self, traced, tmp_path):
        from repro.obs.trace import encode_line

        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(encode_line(r) + "\n" for r in traced["records"])
        )
        return path

    def test_text_report_exits_zero(self, traced, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "reconciliation: OK" in out
        assert f"{traced['agg'].records} records" in out

    def test_json_report(self, traced, trace_path, capsys):
        assert main([str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciliation"] == []
        assert payload["table1"]["unit"]["rules"] == \
            traced["outcome"].report.rules
        engine_key = str(traced["rules"].engine_id)
        assert engine_key in payload["coverage"]
        assert engine_key in payload["hit_lengths"]

    def test_tampered_trace_exits_one(self, traced, trace_path, capsys):
        lines = trace_path.read_text().splitlines()
        tampered = []
        for line in lines:
            data = json.loads(line)
            if data["name"] == "learn.report":
                data["fields"]["counts"]["verify_calls"] += 5
            tampered.append(json.dumps(data))
        trace_path.write_text("\n".join(tampered) + "\n")
        assert main([str(trace_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_top_flag_limits_hot_blocks(self, trace_path, capsys):
        assert main([str(trace_path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "hottest blocks (top 1):" in out

    def test_json_report_includes_profitability(self, traced,
                                                trace_path, capsys):
        assert main([str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["profitability"][str(traced["rules"].engine_id)]
        assert rows
        assert {p.digest for p in traced["rules"].rule_profitability()} \
            == {row["digest"] for row in rows}

    @pytest.fixture()
    def gap_files(self, tmp_path):
        from repro.obs.trace import encode_line

        client_records, server_records = _gap_files()
        client = tmp_path / "client.jsonl"
        server = tmp_path / "server.jsonl"
        for path, records in ((client, client_records),
                              (server, server_records)):
            path.write_text(
                "".join(encode_line(r) + "\n" for r in records)
            )
        return client, server

    def test_stitch_cli_reports_latency(self, gap_files, capsys):
        client, server = gap_files
        assert main(["--stitch", str(client), str(server)]) == 0
        out = capsys.readouterr().out
        assert "stitched timeline (2 files)" in out
        assert "count 1, p50 20" in out  # ~2000ms within sketch error

    def test_stitch_json_payload(self, gap_files, capsys):
        client, server = gap_files
        assert main(["--stitch", "--json",
                     str(client), str(server)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stitch"]["gaps"] == \
            {"captured": 1, "settled": 1, "installed": 1}
        assert payload["stitch"]["latency_ms"]["count"] == 1
        latency = payload["stitch"]["latency_ms"]
        assert latency["p50"] == pytest.approx(
            2000.0, rel=latency["relative_error"]
        )

    def test_future_semantics_version_rejected(self, tmp_path, capsys):
        from repro.obs.trace import encode_line

        path = tmp_path / "future.jsonl"
        header = TraceRecord(
            ts=0.0, kind="event", name=TRACE_HEADER_NAME,
            fields={"version": TRACE_SEMANTICS_VERSION + 1,
                    "epoch": 100.0, "pid": 1},
        )
        path.write_text(encode_line(header) + "\n")
        assert main([str(path)]) == 2
        assert "semantics version" in capsys.readouterr().err

    def test_multiple_files_aggregate_together(self, traced, trace_path,
                                               gap_files, capsys):
        client, _ = gap_files
        assert main([str(trace_path), str(client)]) == 0
        out = capsys.readouterr().out
        expected = traced["agg"].records + 3  # header + 2 events
        assert f"{expected} records" in out
