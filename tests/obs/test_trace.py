"""Trace record schema, tracer emission, and the global install."""

import io
import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceError,
    TraceRecord,
    Tracer,
    decode_line,
    encode_line,
    get_tracer,
    read_trace,
    set_tracer,
    tracing,
)


class TestRecordRoundTrip:
    def test_to_json_from_json(self):
        record = TraceRecord(
            ts=1.25, kind="event", name="learn.pair",
            fields={"benchmark": "mcf", "line": 14},
        )
        assert TraceRecord.from_json(record.to_json()) == record

    def test_encode_decode_line(self):
        record = TraceRecord(
            ts=0.5, kind="begin", name="learn.verify",
            fields={"benchmark": "gcc"},
        )
        line = encode_line(record)
        assert "\n" not in line
        assert decode_line(line) == record

    def test_fields_default_to_empty(self):
        record = TraceRecord.from_json(
            {"ts": 0, "kind": "event", "name": "x"}
        )
        assert record.fields == {}
        assert isinstance(record.ts, float)

    def test_every_kind_round_trips(self):
        for kind in ("event", "begin", "end"):
            record = TraceRecord(ts=0.0, kind=kind, name="n", fields={})
            assert decode_line(encode_line(record)) == record


class TestRecordValidation:
    @pytest.mark.parametrize("data", [
        "not an object",
        ["ts", 0],
        {"kind": "event", "name": "x"},            # missing ts
        {"ts": 0, "name": "x"},                    # missing kind
        {"ts": 0, "kind": "event"},                # missing name
        {"ts": "soon", "kind": "event", "name": "x"},
        {"ts": 0, "kind": "span", "name": "x"},    # unknown kind
        {"ts": 0, "kind": "event", "name": ""},
        {"ts": 0, "kind": "event", "name": 7},
        {"ts": 0, "kind": "event", "name": "x", "fields": [1]},
    ])
    def test_malformed_records_raise(self, data):
        with pytest.raises(TraceError):
            TraceRecord.from_json(data)

    def test_bad_json_line_raises(self):
        with pytest.raises(TraceError):
            decode_line("{not json")


class TestTracer:
    def test_writes_valid_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("a", x=1)
        tracer.event("b")
        assert tracer.records_written == 2
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["a", "b"]
        assert parsed[0]["fields"] == {"x": 1}

    def test_timestamps_are_monotone_nondecreasing(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        for i in range(50):
            tracer.event("tick", i=i)
        stamps = [r.ts for r in read_trace(io.StringIO(sink.getvalue()))]
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))
        assert all(ts >= 0 for ts in stamps)

    def test_span_emits_begin_and_end_with_seconds(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("learn.verify", benchmark="mcf"):
            tracer.event("learn.verdict", line=3)
        records = read_trace(io.StringIO(sink.getvalue()))
        begin, inner, end = records
        assert (begin.kind, begin.name) == ("begin", "learn.verify")
        assert begin.fields == {"benchmark": "mcf"}
        assert inner.name == "learn.verdict"
        assert (end.kind, end.name) == ("end", "learn.verify")
        # The end record repeats the begin fields and adds seconds.
        assert end.fields["benchmark"] == "mcf"
        assert end.fields["seconds"] >= 0
        assert end.ts >= begin.ts

    def test_span_closes_on_exception(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        kinds = [r.kind for r in read_trace(io.StringIO(sink.getvalue()))]
        assert kinds == ["begin", "end"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.event("anything", x=1) is None
        with tracer.span("anything", x=1):
            pass
        tracer.flush()
        tracer.close()

    def test_real_tracer_is_enabled(self):
        assert Tracer(io.StringIO()).enabled is True
        assert NULL_TRACER.enabled is False


class TestGlobalInstall:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = Tracer(io.StringIO())
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            assert set_tracer(previous) is replacement
        assert get_tracer() is previous

    def test_set_none_restores_null(self):
        set_tracer(Tracer(io.StringIO()))
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_tracing_installs_and_restores(self):
        sink = io.StringIO()
        before = get_tracer()
        with tracing(sink) as tracer:
            assert get_tracer() is tracer
            get_tracer().event("inside")
        assert get_tracer() is before
        records = read_trace(io.StringIO(sink.getvalue()))
        assert [r.name for r in records] == ["inside"]

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(ValueError):
            with tracing(io.StringIO()):
                raise ValueError
        assert get_tracer() is before

    def test_tracing_with_path_writes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(path):
            get_tracer().event("on.disk", ok=True)
        records = read_trace(path)
        assert len(records) == 1
        assert records[0].fields == {"ok": True}
