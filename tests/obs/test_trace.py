"""Trace record schema, span ids, the header, and the global install."""

import io
import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TRACE_HEADER_NAME,
    TRACE_SEMANTICS_VERSION,
    NullTracer,
    SpanContext,
    TraceError,
    TraceRecord,
    Tracer,
    check_trace_version,
    decode_line,
    encode_line,
    extract_context,
    get_tracer,
    read_trace,
    set_tracer,
    trace_header,
    tracing,
)


def body(records):
    """The instrumentation records of a trace (header stripped)."""
    return [r for r in records if r.name != TRACE_HEADER_NAME]


class TestRecordRoundTrip:
    def test_to_json_from_json(self):
        record = TraceRecord(
            ts=1.25, kind="event", name="learn.pair",
            fields={"benchmark": "mcf", "line": 14},
        )
        assert TraceRecord.from_json(record.to_json()) == record

    def test_encode_decode_line(self):
        record = TraceRecord(
            ts=0.5, kind="begin", name="learn.verify",
            fields={"benchmark": "gcc"},
        )
        line = encode_line(record)
        assert "\n" not in line
        assert decode_line(line) == record

    def test_fields_default_to_empty(self):
        record = TraceRecord.from_json(
            {"ts": 0, "kind": "event", "name": "x"}
        )
        assert record.fields == {}
        assert isinstance(record.ts, float)

    def test_every_kind_round_trips(self):
        for kind in ("event", "begin", "end"):
            record = TraceRecord(ts=0.0, kind=kind, name="n", fields={})
            assert decode_line(encode_line(record)) == record

    def test_ids_round_trip(self):
        record = TraceRecord(
            ts=0.1, kind="event", name="gap",
            fields={}, trace_id="t" * 16, span_id="s" * 16,
            parent_id="p" * 16,
        )
        data = record.to_json()
        assert data["trace_id"] == "t" * 16
        assert TraceRecord.from_json(data) == record

    def test_absent_ids_stay_off_the_wire(self):
        record = TraceRecord(ts=0.0, kind="event", name="n")
        data = record.to_json()
        assert "trace_id" not in data
        assert "span_id" not in data
        assert "parent_id" not in data

    def test_context_property(self):
        with_ids = TraceRecord(
            ts=0.0, kind="event", name="n",
            trace_id="aa", span_id="bb",
        )
        assert with_ids.context == SpanContext("aa", "bb")
        assert TraceRecord(ts=0.0, kind="event", name="n").context is None


class TestRecordValidation:
    @pytest.mark.parametrize("data", [
        "not an object",
        ["ts", 0],
        {"kind": "event", "name": "x"},            # missing ts
        {"ts": 0, "name": "x"},                    # missing kind
        {"ts": 0, "kind": "event"},                # missing name
        {"ts": "soon", "kind": "event", "name": "x"},
        {"ts": 0, "kind": "span", "name": "x"},    # unknown kind
        {"ts": 0, "kind": "event", "name": ""},
        {"ts": 0, "kind": "event", "name": 7},
        {"ts": 0, "kind": "event", "name": "x", "fields": [1]},
        {"ts": 0, "kind": "event", "name": "x", "trace_id": ""},
        {"ts": 0, "kind": "event", "name": "x", "span_id": 7},
        {"ts": 0, "kind": "event", "name": "x", "parent_id": ["p"]},
    ])
    def test_malformed_records_raise(self, data):
        with pytest.raises(TraceError):
            TraceRecord.from_json(data)

    def test_bad_json_line_raises(self):
        with pytest.raises(TraceError):
            decode_line("{not json")


class TestSpanContextWire:
    def test_wire_round_trip(self):
        context = SpanContext(trace_id="abc", span_id="def")
        assert SpanContext.from_wire(context.to_wire()) == context
        assert extract_context(context.to_wire()) == context

    @pytest.mark.parametrize("data", [
        None, "abc", 7, [],
        {},
        {"trace_id": "abc"},
        {"span_id": "def"},
        {"trace_id": "", "span_id": "def"},
        {"trace_id": "abc", "span_id": 9},
    ])
    def test_malformed_wire_context_is_none(self, data):
        assert extract_context(data) is None


class TestTraceHeader:
    def test_first_record_is_header_with_epoch(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("a")
        records = read_trace(io.StringIO(sink.getvalue()))
        header = records[0]
        assert header.name == TRACE_HEADER_NAME
        assert header.ts == 0.0
        assert header.fields["version"] == TRACE_SEMANTICS_VERSION
        assert header.fields["epoch"] == tracer.epoch
        assert header.fields["epoch"] > 0
        assert isinstance(header.fields["pid"], int)

    def test_header_emitted_exactly_once(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        for i in range(5):
            tracer.event("tick", i=i)
        records = read_trace(io.StringIO(sink.getvalue()))
        headers = [r for r in records if r.name == TRACE_HEADER_NAME]
        assert len(headers) == 1
        assert records[0] is headers[0]

    def test_header_excluded_from_records_written(self):
        tracer = Tracer(io.StringIO())
        assert tracer.records_written == 0
        tracer.event("a")
        assert tracer.records_written == 1

    def test_trace_header_helper(self):
        sink = io.StringIO()
        Tracer(sink).event("a")
        records = read_trace(io.StringIO(sink.getvalue()))
        assert trace_header(records) is records[0]
        assert trace_header(body(records)) is None

    def test_check_trace_version_accepts_current(self):
        sink = io.StringIO()
        Tracer(sink)
        records = read_trace(io.StringIO(sink.getvalue()))
        assert check_trace_version(records) is records[0]

    def test_check_trace_version_accepts_headerless(self):
        records = [TraceRecord(ts=0.0, kind="event", name="legacy")]
        assert check_trace_version(records) is None

    def test_check_trace_version_rejects_future(self):
        record = TraceRecord(
            ts=0.0, kind="event", name=TRACE_HEADER_NAME,
            fields={"version": TRACE_SEMANTICS_VERSION + 1, "epoch": 1.0},
        )
        with pytest.raises(TraceError, match="semantics version"):
            check_trace_version([record], source="t.jsonl")


class TestTracer:
    def test_writes_valid_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("a", x=1)
        tracer.event("b")
        assert tracer.records_written == 2
        lines = sink.getvalue().splitlines()
        assert len(lines) == 3  # header + 2 events
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == [TRACE_HEADER_NAME, "a", "b"]
        assert parsed[1]["fields"] == {"x": 1}

    def test_timestamps_are_monotone_nondecreasing(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        for i in range(50):
            tracer.event("tick", i=i)
        stamps = [r.ts for r in read_trace(io.StringIO(sink.getvalue()))]
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))
        assert all(ts >= 0 for ts in stamps)

    def test_span_emits_begin_and_end_with_seconds(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("learn.verify", benchmark="mcf"):
            tracer.event("learn.verdict", line=3)
        begin, inner, end = body(read_trace(io.StringIO(sink.getvalue())))
        assert (begin.kind, begin.name) == ("begin", "learn.verify")
        assert begin.fields == {"benchmark": "mcf"}
        assert inner.name == "learn.verdict"
        assert (end.kind, end.name) == ("end", "learn.verify")
        # The end record repeats the begin fields and adds seconds.
        assert end.fields["benchmark"] == "mcf"
        assert end.fields["seconds"] >= 0
        assert end.ts >= begin.ts

    def test_span_closes_on_exception(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        kinds = [r.kind for r in body(read_trace(io.StringIO(sink.getvalue())))]
        assert kinds == ["begin", "end"]


class TestSpanIds:
    def test_plain_event_outside_spans_carries_no_ids(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        assert tracer.event("bare") is None
        (record,) = body(read_trace(io.StringIO(sink.getvalue())))
        assert record.trace_id is None
        assert record.span_id is None
        assert record.parent_id is None

    def test_root_event_mints_a_fresh_trace(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        context = tracer.event("gap.capture", root=True, digest="d1")
        assert context is not None
        (record,) = body(read_trace(io.StringIO(sink.getvalue())))
        assert record.trace_id == context.trace_id
        assert record.span_id == context.span_id
        assert record.parent_id is None

    def test_two_roots_get_distinct_traces(self):
        tracer = Tracer(io.StringIO())
        a = tracer.event("gap", root=True)
        b = tracer.event("gap", root=True)
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_span_begin_end_share_ids(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("work") as context:
            pass
        begin, end = body(read_trace(io.StringIO(sink.getvalue())))
        assert begin.trace_id == end.trace_id == context.trace_id
        assert begin.span_id == end.span_id == context.span_id
        assert begin.parent_id is None

    def test_nested_span_parents_under_outer(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        records = body(read_trace(io.StringIO(sink.getvalue())))
        inner_begin = next(r for r in records if r.name == "inner")
        assert inner_begin.parent_id == outer.span_id

    def test_event_inside_span_inherits_trace(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            context = tracer.event("tick")
        assert context.trace_id == outer.trace_id
        records = body(read_trace(io.StringIO(sink.getvalue())))
        tick = next(r for r in records if r.name == "tick")
        assert tick.parent_id == outer.span_id
        assert tick.span_id != outer.span_id

    def test_current_context_tracks_stack(self):
        tracer = Tracer(io.StringIO())
        assert tracer.current_context() is None
        with tracer.span("outer") as outer:
            assert tracer.current_context() == outer
            with tracer.span("inner") as inner:
                assert tracer.current_context() == inner
            assert tracer.current_context() == outer
        assert tracer.current_context() is None

    def test_inject_extract_round_trip(self):
        tracer = Tracer(io.StringIO())
        assert tracer.inject() is None
        with tracer.span("request") as context:
            wire = tracer.inject()
        assert extract_context(wire) == context

    def test_remote_context_parents_cross_process_work(self):
        # Simulate the wire: client spans, server continues the trace.
        client_sink, server_sink = io.StringIO(), io.StringIO()
        client = Tracer(client_sink)
        with client.span("service.sync"):
            wire = client.inject()
        server = Tracer(server_sink)
        remote = extract_context(wire)
        with server.span("service.op.sync", context=remote) as handled:
            server.event("service.learn")
        client_records = body(read_trace(io.StringIO(client_sink.getvalue())))
        server_records = body(read_trace(io.StringIO(server_sink.getvalue())))
        client_trace = {r.trace_id for r in client_records}
        server_trace = {r.trace_id for r in server_records}
        assert client_trace == server_trace == {handled.trace_id}
        server_begin = next(r for r in server_records if r.kind == "begin")
        assert server_begin.parent_id == client_records[0].span_id

    def test_event_with_explicit_context_ignores_ambient(self):
        tracer = Tracer(io.StringIO())
        remote = SpanContext(trace_id="remote-trace", span_id="remote-span")
        with tracer.span("ambient"):
            context = tracer.event("settled", context=remote)
        assert context.trace_id == "remote-trace"

    def test_span_with_no_ambient_roots_a_trace(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("solo") as context:
            pass
        assert context is not None
        begin, _ = body(read_trace(io.StringIO(sink.getvalue())))
        assert begin.trace_id == context.trace_id
        assert begin.parent_id is None


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.event("anything", x=1) is None
        with tracer.span("anything", x=1) as context:
            assert context is None
        assert tracer.current_context() is None
        assert tracer.inject() is None
        tracer.flush()
        tracer.close()

    def test_real_tracer_is_enabled(self):
        assert Tracer(io.StringIO()).enabled is True
        assert NULL_TRACER.enabled is False


class TestGlobalInstall:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = Tracer(io.StringIO())
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            assert set_tracer(previous) is replacement
        assert get_tracer() is previous

    def test_set_none_restores_null(self):
        set_tracer(Tracer(io.StringIO()))
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_tracing_installs_and_restores(self):
        sink = io.StringIO()
        before = get_tracer()
        with tracing(sink) as tracer:
            assert get_tracer() is tracer
            get_tracer().event("inside")
        assert get_tracer() is before
        records = body(read_trace(io.StringIO(sink.getvalue())))
        assert [r.name for r in records] == ["inside"]

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(ValueError):
            with tracing(io.StringIO()):
                raise ValueError
        assert get_tracer() is before

    def test_tracing_with_path_writes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(path):
            get_tracer().event("on.disk", ok=True)
        records = read_trace(path)
        assert records[0].name == TRACE_HEADER_NAME
        assert len(body(records)) == 1
        assert body(records)[0].fields == {"ok": True}
