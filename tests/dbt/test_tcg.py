"""TCG IR containers and rendering."""

from repro.dbt.tcg import TcgBlock, TcgCond, TcgOp


class TestTcgOp:
    def test_temps_used(self):
        op = TcgOp("add", out="%t3", a="%t1", b="%t2")
        assert op.temps_used() == ("%t1", "%t2")

    def test_immediates_not_temps(self):
        op = TcgOp("add", out="%t3", a="%t1", b=7)
        assert op.temps_used() == ("%t1",)

    def test_movcond_third_operand_counted(self):
        op = TcgOp("movcond", out="%t4", a="%c", b="%then", c="%else")
        assert op.temps_used() == ("%c", "%then", "%else")

    def test_str_forms(self):
        assert str(TcgOp("movi", out="%t1", a=5)) == "movi %t1, 5"
        assert str(TcgOp("ld_reg", out="%t1", reg="r3")) == "%t1 = env.r3"
        assert str(TcgOp("st_flag", flag="Z", a="%t2")) == \
            "env.flag_Z = %t2"
        assert str(TcgOp("qemu_ld", out="%t1", a="%t0", size=4)) == \
            "%t1 = ld4 [%t0]"
        assert "brcond" in str(
            TcgOp("brcond", cond=TcgCond.NE, a="%t1", b=0,
                  taken=0x8000, fallthrough=0x8004)
        )
        assert str(TcgOp("goto_tb", taken=0x9000)) == "goto_tb 0x9000"


class TestTcgBlock:
    def test_temps_unique(self):
        block = TcgBlock(0x8000)
        assert block.new_temp() != block.new_temp()

    def test_emit_appends(self):
        block = TcgBlock(0x8000)
        block.emit(op="movi", out="%t1", a=1)
        block.emit(op="goto_tb", taken=0x9000)
        assert [op.op for op in block.ops] == ["movi", "goto_tb"]

    def test_dump(self):
        block = TcgBlock(0x8000)
        block.emit(op="movi", out="%t1", a=1)
        assert block.dump() == "movi %t1, 1"
