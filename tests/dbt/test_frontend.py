"""ARM -> TCG frontend."""

from repro.dbt.frontend import discover_block, translate_block
from repro.minic import compile_source


SOURCE = """
int a[8];
int f(int x) {
  if (x < 0) { x = 0 - x; }
  return x * 2;
}
int main(void) {
  int s = 0;
  int i = 0;
  while (i < 8) {
    a[i] = f(i - 4);
    s += a[i];
    i += 1;
  }
  return s;
}
"""


def build():
    return compile_source(SOURCE, "arm", 2, "llvm")


class TestDiscoverBlock:
    def test_block_ends_at_branch_or_label(self):
        program = build()
        from repro.guest_arm import isa as arm_isa

        index = program.labels["main"]
        block = discover_block(program, index)
        ends_at_branch = arm_isa.is_branch(block[-1])
        ends_at_label = (index + len(block)) in set(program.labels.values())
        assert ends_at_branch or ends_at_label
        assert all(not arm_isa.is_branch(i) for i in block[:-1])

    def test_block_splits_at_labels(self):
        program = build()
        label_positions = set(program.labels.values())
        for start in sorted(label_positions):
            if start >= len(program.code):
                continue
            block = discover_block(program, start)
            for offset in range(1, len(block)):
                assert (start + offset) not in label_positions


class TestTranslateBlock:
    def test_every_block_ends_in_control_op(self):
        program = build()
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            tcg, _ = translate_block(program, start)
            assert tcg.ops[-1].op in ("brcond", "goto_tb", "exit_indirect")

    def test_cmp_uses_fused_flags_op(self):
        program = build()
        found = False
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            tcg, guest = translate_block(program, start)
            if any(i.mnemonic == "cmp" for i in guest):
                assert any(op.op == "cmp_flags" for op in tcg.ops)
                found = True
        assert found

    def test_expansion_factor(self):
        """One guest instruction -> several TCG ops (the paper's
        IR-expansion premise)."""
        program = build()
        total_guest = 0
        total_ops = 0
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            tcg, guest = translate_block(program, start)
            total_guest += len(guest)
            total_ops += len(tcg.ops)
        assert total_ops > 2 * total_guest

    def test_predicated_instructions_become_movcond(self):
        program = build()
        ops = []
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            tcg, guest = translate_block(program, start)
            if any("lt" in i.mnemonic and i.mnemonic.startswith("rsb")
                   for i in guest):
                ops = [op.op for op in tcg.ops]
        if ops:  # only if the compiler emitted rsblt here
            assert "movcond" in ops

    def test_call_sets_lr_then_jumps(self):
        program = build()
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            tcg, guest = translate_block(program, start)
            if guest[-1].mnemonic == "bl":
                kinds = [op.op for op in tcg.ops]
                assert kinds[-1] == "goto_tb"
                assert "st_reg" in kinds  # lr updated
                lr_store = [op for op in tcg.ops
                            if op.op == "st_reg" and op.reg == "lr"]
                assert lr_store
                return
        raise AssertionError("no call block found")
