"""Precompiled bound emitters: equivalence, memoization, constraints."""

import pytest

from repro.dbt.codegen import BlockAssembler
from repro.dbt.emitter import (
    RuleApplicationError,
    compile_emitter,
    get_emitter,
)
from repro.dbt.perf import instruction_cycles
from repro.dbt.ruletrans import _COUNTERFACTUAL_ATTR, _counterfactual_tcg
from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Mem, Reg
from repro.learning.rule import Rule
from repro.learning.store import RuleStore
from repro.minic import compile_source

from tests.dbt.test_ruletrans import ADD_RULE, CMP_RULE, learn_rule

MOV_RULE = learn_rule(["mov r1, r0"], ["movl %eax, %edx"])


class TestCompile:
    def test_memoized_per_rule(self):
        assert get_emitter(ADD_RULE) is get_emitter(ADD_RULE)

    def test_template_cycles_match_static_model(self):
        for rule in (ADD_RULE, MOV_RULE, CMP_RULE):
            emitter = get_emitter(rule)
            expected = sum(
                instruction_cycles(t) for t in rule.host
                if not x86_isa.is_branch(t)
            )
            assert emitter.template_cycles == expected

    def test_branch_cc_hoisted(self):
        assert get_emitter(CMP_RULE).branch_cc == "jl"
        assert get_emitter(ADD_RULE).branch_cc is None

    def test_static_ok_for_learned_rules(self):
        for rule in (ADD_RULE, MOV_RULE, CMP_RULE):
            assert get_emitter(rule).static_ok


class TestApply:
    def _bind(self, rule, guest_lines):
        store = RuleStore.from_rules([rule])
        match = store.match_at([parse_arm(s) for s in guest_lines], 0)
        assert match is not None
        return match

    def test_emits_bound_template(self):
        match = self._bind(ADD_RULE, ["add r4, r4, r5", "sub r4, r4, #1"])
        assembler = BlockAssembler()
        emitted, branch_cc = get_emitter(ADD_RULE)(
            match.binding, assembler
        )
        assert branch_cc is None
        assert [i.mnemonic for i in emitted] == \
            [t.mnemonic for t in ADD_RULE.host]
        assert assembler.instrs[-len(emitted):] == emitted
        # Written params propagate to the assembler's dirty set.
        vreg = assembler.guest_vreg("r4")
        assert any(vreg in str(i) for i in emitted)

    def test_same_host_code_as_fresh_compile(self):
        """A memoized emitter and a fresh compile agree on output."""
        match = self._bind(MOV_RULE, ["mov r7, r2"])
        a1, a2 = BlockAssembler(), BlockAssembler()
        out1, _ = get_emitter(MOV_RULE)(match.binding, a1)
        out2, _ = compile_emitter(MOV_RULE)(match.binding, a2)
        assert [str(i) for i in out1] == [str(i) for i in out2]

    def test_static_constraint_raises_on_apply(self):
        bad = Rule(
            guest=(parse_arm("mov r1, r0"),),
            host=(Instruction(
                "movl",
                (Mem(Reg("p0"), Reg("p1"), 16, 0), Reg("p1")),
            ),),
            params=("p0", "p1"),
            written_params=("p1",),
            temps=(),
        )
        emitter = compile_emitter(bad)
        assert not emitter.static_ok
        match = self._bind(bad, ["mov r1, r0"])
        with pytest.raises(RuleApplicationError):
            emitter(match.binding, BlockAssembler())


class TestCounterfactualMemo:
    def test_repeat_windows_hit_the_cache(self):
        program = compile_source("""
        int main(void) {
          int a = 1;
          int b = 2;
          return a + b;
        }
        """, "arm", 2, "llvm")
        block = program.code[:2]
        first = _counterfactual_tcg(program, block, 0, 1, 0x8000)
        cache = getattr(program, _COUNTERFACTUAL_ATTR)
        assert len(cache) == 1
        again = _counterfactual_tcg(program, block, 0, 1, 0x8000)
        assert again is first
        assert len(cache) == 1
