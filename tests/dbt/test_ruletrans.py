"""Rule-enhanced block translation: matching, cc analysis, integration."""

from repro.dbt.ruletrans import flags_dead_after, translate_block_with_rules
from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import parse_instruction as parse_x86
from repro.learning.extract import SnippetPair
from repro.learning.paramize import analyze_pair, generate_mappings
from repro.learning.store import RuleStore
from repro.learning.verify import verify_candidate
from repro.minic import compile_source


def learn_rule(guest_lines, host_lines):
    pair = SnippetPair(
        "t", 1,
        [parse_arm(line) for line in guest_lines],
        [parse_x86(line) for line in host_lines],
    )
    context = analyze_pair(pair)
    mappings, _ = generate_mappings(context)
    for mapping in mappings:
        result = verify_candidate(context, mapping)
        if result.rule is not None:
            return result.rule
    raise AssertionError("did not learn")


CMP_RULE = learn_rule(["cmp r2, r3", "blt .L"],
                      ["cmpl %ecx, %edx", "jl .L"])
CMP_ONLY_RULE = learn_rule(["cmp r2, r3"], ["cmpl %ecx, %edx"])
ADD_RULE = learn_rule(["add r1, r1, r0", "sub r1, r1, #1"],
                      ["leal -1(%edx,%eax), %edx"])


class TestFlagsDeadAnalysis:
    def test_branch_rules_always_ok(self):
        assert flags_dead_after(CMP_RULE, [], 0)

    def test_cmp_followed_by_branch_blocks_rule(self):
        # A bare cmp rule cannot be applied when the branch that
        # consumes the flags is translated by TCG (the rule does not
        # materialize env flags).
        block = [parse_arm("cmp r2, r3"), parse_arm("blt .L")]
        assert not flags_dead_after(CMP_ONLY_RULE, block, 1)

    def test_flags_overwritten_ok(self):
        block = [
            parse_arm("cmp r2, r3"),
            parse_arm("cmp r4, r5"),  # rewrites all flags
            parse_arm("blt .L"),
        ]
        assert flags_dead_after(CMP_ONLY_RULE, block, 1)

    def test_flagless_rule_always_ok(self):
        block = [parse_arm("add r1, r1, r0"), parse_arm("blt .L")]
        assert flags_dead_after(ADD_RULE, block, 1)


class TestBlockTranslation:
    def _program(self):
        return compile_source("""
        int main(void) {
          int acc = 10;
          int bound = 3;
          int i = 0;
          while (i < bound) {
            acc = acc + i;
            acc -= 1;
            i += 1;
          }
          return acc;
        }
        """, "arm", 2, "llvm")

    def test_rule_coverage_marked(self):
        program = self._program()
        store = RuleStore.from_rules([CMP_RULE, ADD_RULE])
        covered_any = False
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            result = translate_block_with_rules(program, start, store)
            assert len(result.rule_covered) == len(result.guest_instrs)
            covered_any |= any(result.rule_covered)
        assert covered_any

    def test_no_rules_means_no_coverage(self):
        program = self._program()
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            result = translate_block_with_rules(program, start, RuleStore())
            assert not any(result.rule_covered)

    def test_host_code_smaller_with_rules(self):
        program = self._program()
        store = RuleStore.from_rules([CMP_RULE, ADD_RULE])
        with_rules = 0
        without = 0
        for start in sorted(set(program.labels.values())):
            if start >= len(program.code):
                continue
            with_rules += len(
                translate_block_with_rules(program, start, store).host_instrs
            )
            without += len(
                translate_block_with_rules(program, start, None).host_instrs
            )
        assert with_rules < without
