"""Lowest-cost cover: DP vs greedy semantics, cost bounds, accounting."""

import pytest

from repro.dbt.engine import DBTEngine
from repro.dbt.ruletrans import (
    MISS_COST_COVER,
    translate_block_with_rules,
)
from repro.learning.store import RuleStore
from repro.minic import compile_source

from tests.dbt.test_ruletrans import ADD_RULE, CMP_RULE

SOURCE = """
int main(void) {
  int acc = 10;
  int bound = 3;
  int i = 0;
  while (i < bound) {
    acc = acc + i;
    acc -= 1;
    i += 1;
  }
  return acc;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "arm", 2, "llvm")


@pytest.fixture(scope="module")
def store():
    return RuleStore.from_rules([CMP_RULE, ADD_RULE])


def _block_starts(program):
    return [
        start for start in sorted(set(program.labels.values()))
        if start < len(program.code)
    ]


class TestPlanBounds:
    def test_dp_never_costlier_than_greedy(self, program, store):
        """The greedy cover is in the DP's search space, so the planned
        DP cost is a lower bound on the greedy cover's modeled cost."""
        for start in _block_starts(program):
            result = translate_block_with_rules(
                program, start, store, cover="dp"
            )
            assert result.planned_cost <= \
                result.planned_cost_greedy + 1e-9

    def test_dp_coverage_not_below_greedy(self, program, store):
        """Rules win cost ties, so static coverage never regresses."""
        for start in _block_starts(program):
            dp = translate_block_with_rules(program, start, store,
                                            cover="dp")
            greedy = translate_block_with_rules(program, start, store,
                                                cover="greedy")
            assert sum(dp.rule_covered) >= sum(greedy.rule_covered)


class TestSemantics:
    def test_same_result_all_modes(self, program):
        store_rules = [CMP_RULE, ADD_RULE]
        baseline = DBTEngine(program, "qemu").run().return_value
        results = {}
        for cover in ("dp", "greedy"):
            engine = DBTEngine(
                program, "rules",
                RuleStore.from_rules(store_rules), cover=cover,
            )
            results[cover] = engine.run().return_value
        assert results["dp"] == baseline
        assert results["greedy"] == baseline

    def test_dynamic_coverage_not_below_greedy(self, program, store):
        coverage = {}
        for cover in ("dp", "greedy"):
            engine = DBTEngine(program, "rules",
                               RuleStore.from_rules(store.all_rules()),
                               cover=cover)
            engine.run()
            coverage[cover] = engine.last_run.dynamic_coverage
        assert coverage["dp"] >= coverage["greedy"] - 1e-9

    def test_cover_stable_across_runs(self, program, store):
        """Online cost refinement must not change the plan between
        runs — the online/offline coverage-parity contract."""
        engine = DBTEngine(program, "rules",
                           RuleStore.from_rules(store.all_rules()),
                           cover="dp")
        engine.run()
        first = engine.last_run.dynamic_coverage
        engine.run()
        assert engine.last_run.dynamic_coverage == \
            pytest.approx(first, abs=1e-9)


class TestCostCoverAccounting:
    def test_priced_out_rule_reports_cost_cover(self, program, store):
        """An absurd measured cost prices every rule out of the cover;
        those positions miss as ``cost_cover`` and are NOT learning
        gaps (the store already has a rule for them)."""
        gaps = []
        saw_cost_cover = False
        other_misses = 0
        for start in _block_starts(program):
            result = translate_block_with_rules(
                program, start, store, gap_sink=gaps.append,
                cover="dp", cost_hint=lambda rule: 1e9,
            )
            assert sum(result.rule_covered) == 0
            if result.miss_reasons.get(MISS_COST_COVER):
                saw_cost_cover = True
            other_misses += sum(
                count for reason, count in result.miss_reasons.items()
                if reason != MISS_COST_COVER
            )
        assert saw_cost_cover
        # gap_sink fired exactly once per non-cost-cover miss: being
        # priced out is not a learning gap (a rule already exists).
        assert len(gaps) == other_misses

    def test_semantics_survive_priced_out_rules(self, program, store):
        baseline = DBTEngine(program, "qemu").run().return_value
        engine = DBTEngine(program, "rules",
                           RuleStore.from_rules(store.all_rules()),
                           cover="dp")
        engine._rule_cost_hint = lambda rule: 1e9
        assert engine.run().return_value == baseline


class TestValidation:
    def test_unknown_cover_mode_rejected(self, program, store):
        from repro.dbt.engine import DBTError

        with pytest.raises(ValueError):
            translate_block_with_rules(program, 0, store, cover="bogus")
        with pytest.raises(DBTError):
            DBTEngine(program, "rules",
                      RuleStore.from_rules(store.all_rules()),
                      cover="bogus")

    def test_empty_store_falls_back_to_greedy_path(self, program):
        result = translate_block_with_rules(program, 0, RuleStore(),
                                            cover="dp")
        assert result.cover_mode == "greedy"
        assert not any(result.rule_covered)
