"""Direct emulators and the concrete machine state."""

import pytest

from repro.dbt.direct import EmulationError, run_arm_program, run_x86_program
from repro.dbt.machine import ConcreteState
from repro.minic import compile_source


class TestConcreteState:
    def test_word_little_endian(self):
        state = ConcreteState()
        state.store(0x100, 0xAABBCCDD, 4)
        assert state.load(0x100, 1) == 0xDD
        assert state.load(0x103, 1) == 0xAA
        assert state.load(0x100, 4) == 0xAABBCCDD

    def test_registers_masked(self):
        state = ConcreteState()
        state.set_reg("r0", 1 << 35 | 7)
        assert state.get_reg("r0") == 7

    def test_flags_masked(self):
        state = ConcreteState()
        state.set_flag("Z", 2)
        assert state.get_flag("Z") == 0

    def test_unwritten_memory_reads_zero(self):
        assert ConcreteState().load(0x5000, 4) == 0

    def test_address_wraps(self):
        state = ConcreteState()
        state.store(-4, 0x11, 1)
        assert state.load(0xFFFFFFFC, 1) == 0x11


class TestRunners:
    SOURCE = """
    int main(void) {
      int s = 0;
      int i = 0;
      while (i < 5) { s += i * i; i += 1; }
      return s;
    }
    """

    def test_arm_and_x86_agree(self):
        arm = compile_source(self.SOURCE, "arm", 2, "llvm")
        x86 = compile_source(self.SOURCE, "x86", 2, "llvm")
        assert run_arm_program(arm).return_value == \
            run_x86_program(x86).return_value == 30

    def test_wrong_target_rejected(self):
        arm = compile_source(self.SOURCE, "arm", 2, "llvm")
        with pytest.raises(EmulationError):
            run_x86_program(arm)
        x86 = compile_source(self.SOURCE, "x86", 2, "llvm")
        with pytest.raises(EmulationError):
            run_arm_program(x86)

    def test_step_limit(self):
        source = "int main(void) { int i = 0; while (1) { i += 1; } return i; }"
        arm = compile_source(source, "arm", 2, "llvm")
        with pytest.raises(EmulationError):
            run_arm_program(arm, step_limit=1000)

    def test_arguments_passed_in_r0(self):
        source = "int main(int n) { return n * 2 + 1; }"
        arm = compile_source(source, "arm", 2, "llvm")
        assert run_arm_program(arm, args=(20,)).return_value == 41

    def test_dynamic_instruction_count_positive(self):
        arm = compile_source(self.SOURCE, "arm", 2, "llvm")
        result = run_arm_program(arm)
        assert result.dynamic_instructions > 10
