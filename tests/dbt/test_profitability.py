"""Per-rule profitability ledgers and their reconciliation with the
engine's rule-hit counters."""

import io

import pytest

from repro.dbt.engine import DBTEngine
from repro.dbt.perf import RULE_EMIT_COST, RULE_LOOKUP_COST, TCG_OP_COST
from repro.learning import learn_rules
from repro.learning.serialize import rule_digest
from repro.learning.store import RuleStore
from repro.minic import compile_source
from repro.obs.trace import read_trace, tracing

SOURCE = """
int a[24];
int acc(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i];
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 24) {
    a[i] = i * 3 - (i & 1);
    i += 1;
  }
  int total = acc(a, 24) + acc(a, 12);
  if (total < 0) { total = 0 - total; }
  return total;
}
"""


@pytest.fixture(scope="module")
def guest():
    return compile_source(SOURCE, "arm", 2, "llvm")


@pytest.fixture(scope="module")
def rules(guest):
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return learn_rules(guest, host).rules


@pytest.fixture()
def engine(guest, rules):
    engine = DBTEngine(guest, "rules", RuleStore.from_rules(rules))
    engine.run()
    return engine


class TestRuleDigest:
    def test_digest_is_stable_and_short_hex(self, rules):
        digest = rule_digest(rules[0])
        assert digest == rule_digest(rules[0])
        assert len(digest) == 16
        int(digest, 16)

    def test_digest_ignores_provenance(self, rules):
        from dataclasses import replace

        rule = rules[0]
        relabeled = replace(rule, origin="elsewhere", line=999)
        assert rule_digest(relabeled) == rule_digest(rule)

    def test_distinct_rules_get_distinct_digests(self, rules):
        digests = {rule_digest(rule) for rule in rules}
        assert len(digests) == len(set(rules))


class TestLedgers:
    def test_hits_reconcile_with_hit_rule_lengths(self, engine):
        profiles = engine.rule_profitability()
        assert profiles, "the benchmark should hit at least one rule"
        assert sum(p.hits for p in profiles) \
            == sum(engine.lifetime.hit_rule_lengths.values())
        assert sum(p.guest_covered for p in profiles) == sum(
            length * count
            for length, count in engine.lifetime.hit_rule_lengths.items()
        )
        assert set(p.rule for p in profiles) == engine.lifetime.hit_rules

    def test_exec_hits_follow_block_exec_counts(self, engine):
        expected: dict = {}
        for tb in engine._cache.values():
            for hit in tb.hit_profiles:
                expected[hit.rule] = (
                    expected.get(hit.rule, 0) + tb.exec_count
                )
        for profile in engine.rule_profitability():
            assert profile.exec_hits == expected.get(profile.rule, 0)

    def test_cost_model_arithmetic(self, engine):
        for p in engine.rule_profitability():
            assert p.lookup_cost == RULE_LOOKUP_COST * p.hits
            assert p.translation_cycles_saved == pytest.approx(
                TCG_OP_COST * p.tcg_ops_avoided
                - RULE_EMIT_COST * p.host_emitted
            )
            assert p.net_cycles == pytest.approx(
                p.cycles_saved - p.lookup_cost
            )
            assert p.profitable == (p.net_cycles > 0)

    def test_sorted_most_profitable_first(self, engine):
        nets = [p.net_cycles for p in engine.rule_profitability()]
        assert nets == sorted(nets, reverse=True)

    def test_repeated_runs_accumulate_not_reset(self, engine):
        before = {
            p.digest: (p.hits, p.exec_hits)
            for p in engine.rule_profitability()
        }
        engine.run()
        for p in engine.rule_profitability():
            hits, exec_hits = before[p.digest]
            # Warm cache: no re-translation, but execution recurs.
            assert p.hits == hits
            assert p.exec_hits >= exec_hits


class TestTraceRecords:
    def test_rule_profile_events_match_ledgers(self, guest, rules):
        sink = io.StringIO()
        with tracing(sink):
            engine = DBTEngine(guest, "rules", RuleStore.from_rules(rules))
            engine.run()
            engine.run()
        records = [
            r for r in read_trace(io.StringIO(sink.getvalue()))
            if r.name == "dbt.rule_profile"
        ]
        assert records
        # Lifetime-cumulative: the last record per digest is the ledger.
        latest = {r.fields["digest"]: r.fields for r in records}
        ledgers = {p.digest: p for p in engine.rule_profitability()}
        assert set(latest) == set(ledgers)
        for digest, fields in latest.items():
            ledger = ledgers[digest]
            assert fields["hits"] == ledger.hits
            assert fields["exec_hits"] == ledger.exec_hits
            assert fields["net_cycles"] == pytest.approx(ledger.net_cycles)
            assert fields["profitable"] == ledger.profitable
