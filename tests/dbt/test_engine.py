"""The DBT engine: all three backends vs. the direct ARM emulator."""

import pytest

from repro.dbt.direct import run_arm_program
from repro.dbt.engine import DBTEngine, DBTError, run_dbt
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source

SOURCE = """
int a[32];
int sum(int *p, int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + p[i] - 1;
    i += 1;
  }
  return s;
}
int main(void) {
  int i = 0;
  while (i < 32) {
    a[i] = i * 5 + (i & 3);
    i += 1;
  }
  int total = sum(a, 32) + sum(a, 16);
  if (total < 0) { total = 0 - total; }
  return total + total / 10;
}
"""


@pytest.fixture(scope="module")
def guest():
    return compile_source(SOURCE, "arm", 2, "llvm")


@pytest.fixture(scope="module")
def rules(guest):
    host = compile_source(SOURCE, "x86", 2, "llvm")
    return RuleStore.from_rules(learn_rules(guest, host).rules)


@pytest.fixture(scope="module")
def expected(guest):
    return run_arm_program(guest).return_value


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["qemu", "rules", "llvmjit"])
    def test_mode_matches_direct_emulation(self, guest, rules, expected,
                                           mode):
        store = rules if mode == "rules" else None
        result = run_dbt(guest, mode, store)
        assert result.return_value == expected

    def test_fast_and_slow_executors_agree(self, guest, expected):
        fast = DBTEngine(guest, "qemu", fast=True).run()
        slow = DBTEngine(guest, "qemu", fast=False).run()
        assert fast.return_value == slow.return_value == expected
        assert fast.stats.dynamic_host_instructions == \
            slow.stats.dynamic_host_instructions
        assert fast.stats.perf.exec_cycles == \
            pytest.approx(slow.stats.perf.exec_cycles)

    def test_gcc_style_guest(self, rules):
        gcc_guest = compile_source(SOURCE, "arm", 2, "gcc")
        expected = run_arm_program(gcc_guest).return_value
        result = run_dbt(gcc_guest, "rules", rules)
        assert result.return_value == expected


class TestStatistics:
    def test_rules_reduce_dynamic_instructions(self, guest, rules):
        baseline = run_dbt(guest, "qemu")
        enhanced = run_dbt(guest, "rules", rules)
        assert enhanced.stats.dynamic_host_instructions < \
            baseline.stats.dynamic_host_instructions

    def test_coverage_bounds(self, guest, rules):
        stats = run_dbt(guest, "rules", rules).stats
        assert 0.0 < stats.static_coverage <= 1.0
        assert 0.0 < stats.dynamic_coverage <= 1.0

    def test_qemu_mode_has_zero_coverage(self, guest):
        stats = run_dbt(guest, "qemu").stats
        assert stats.static_coverage == 0.0
        assert stats.dynamic_coverage == 0.0

    def test_hit_rule_lengths_recorded(self, guest, rules):
        stats = run_dbt(guest, "rules", rules).stats
        assert stats.hit_rule_lengths
        assert all(length >= 1 for length in stats.hit_rule_lengths)

    def test_blocks_translated_once(self, guest):
        engine = DBTEngine(guest, "qemu")
        result = engine.run()
        # Dispatches far exceed translations (the translation cache).
        assert result.stats.perf.dispatches > engine.stats.translated_blocks

    def test_translation_cost_accounted(self, guest, rules):
        jit = run_dbt(guest, "llvmjit")
        qemu = run_dbt(guest, "qemu")
        assert jit.stats.perf.translation_cycles > \
            qemu.stats.perf.translation_cycles


class TestErrors:
    def test_unknown_mode(self, guest):
        with pytest.raises(DBTError):
            DBTEngine(guest, "turbo")

    def test_x86_guest_rejected(self):
        host = compile_source("int main(void) { return 1; }", "x86")
        with pytest.raises(DBTError):
            DBTEngine(host, "qemu")

    def test_block_limit(self, guest):
        engine = DBTEngine(guest, "qemu")
        with pytest.raises(DBTError):
            engine.run(block_limit=3)
