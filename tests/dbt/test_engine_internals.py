"""Engine internals: caching, indirect exits, env isolation, spills."""

from repro.dbt.codegen import ENV_BASE, SPILL_BASE
from repro.dbt.engine import DBTEngine
from repro.minic import compile_source


def build(source):
    return compile_source(source, "arm", 2, "llvm")


class TestTranslationCache:
    def test_translate_is_idempotent(self):
        guest = build("int main(void) { return 7; }")
        engine = DBTEngine(guest, "qemu")
        addr = guest.addr_of("main")
        first = engine.translate(addr)
        assert engine.translate(addr) is first
        assert engine.stats.translated_blocks == 1

    def test_translation_cost_counted_once(self):
        guest = build("""
        int main(void) {
          int i = 0;
          while (i < 100) { i += 1; }
          return i;
        }
        """)
        engine = DBTEngine(guest, "qemu")
        engine.run()
        cost_after = engine.stats.perf.translation_cycles
        # Loop body executed ~100 times, but each block paid once:
        assert engine.stats.perf.dispatches > \
            3 * engine.stats.translated_blocks
        assert cost_after == sum(
            tb.translation_cost for tb in engine._cache.values()
        )


class TestRepeatedRuns:
    SOURCE = """
    int main(void) {
      int i = 0;
      int s = 0;
      while (i < 50) { s += i; i += 1; }
      return s;
    }
    """

    def test_second_run_does_not_double_count(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        first = engine.run()
        first_dynamic = first.stats.dynamic_guest_instructions
        first_host = first.stats.dynamic_host_instructions
        first_dispatches = first.stats.perf.dispatches
        second = engine.run()
        assert second.return_value == first.return_value
        # Dynamic stats describe the most recent run, not the sum.
        assert second.stats.dynamic_guest_instructions == first_dynamic
        assert second.stats.dynamic_host_instructions == first_host
        assert second.stats.perf.dispatches == first_dispatches

    def test_translation_stats_stay_cumulative(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        engine.run()
        translated = engine.stats.translated_blocks
        translation_cycles = engine.stats.perf.translation_cycles
        engine.run()
        # The warm cache pays no further translation cost.
        assert engine.stats.translated_blocks == translated
        assert engine.stats.perf.translation_cycles == translation_cycles


class TestStatsViews:
    """The explicit lifetime / last_run views behind ``engine.stats``."""

    SOURCE = TestRepeatedRuns.SOURCE

    def test_last_run_equals_single_run(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        result = engine.run()
        last = engine.last_run
        assert last.dynamic_guest_instructions == \
            result.stats.dynamic_guest_instructions
        assert last.perf.dispatches == result.stats.perf.dispatches
        # A cold cache means the first run triggered every translation.
        assert last.translated_blocks == \
            engine.lifetime.translated_blocks

    def test_lifetime_accumulates_dynamic_counters(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        engine.run()
        once = engine.last_run
        engine.run()
        lifetime = engine.lifetime
        assert lifetime.dynamic_guest_instructions == \
            2 * once.dynamic_guest_instructions
        assert lifetime.perf.dispatches == 2 * once.perf.dispatches
        assert lifetime.perf.exec_cycles == \
            2 * once.perf.exec_cycles
        # last_run still describes exactly one run.
        assert engine.last_run.dynamic_guest_instructions == \
            once.dynamic_guest_instructions

    def test_warm_cache_run_translates_nothing(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        engine.run()
        engine.run()
        assert engine.last_run.translated_blocks == 0
        assert engine.last_run.perf.translation_cycles == 0
        assert engine.lifetime.translated_blocks > 0

    def test_translate_outside_run_updates_lifetime_only(self):
        guest = build(self.SOURCE)
        engine = DBTEngine(guest, "qemu")
        engine.translate(guest.addr_of("main"))
        assert engine.lifetime.translated_blocks == 1
        assert engine.last_run.translated_blocks == 0
        assert engine.last_run.dynamic_guest_instructions == 0

    def test_stats_is_hybrid_snapshot(self):
        engine = DBTEngine(build(self.SOURCE), "qemu")
        engine.run()
        engine.run()
        stats = engine.stats
        # Dynamic side: the most recent run.
        assert stats.dynamic_guest_instructions == \
            engine.last_run.dynamic_guest_instructions
        assert stats.perf.dispatches == engine.last_run.perf.dispatches
        # Translation side: cumulative over the engine's life.
        assert stats.translated_blocks == \
            engine.lifetime.translated_blocks
        assert stats.perf.translation_cycles == \
            engine.lifetime.perf.translation_cycles
        # Detached: mutating the snapshot leaves the views alone.
        stats.translated_blocks += 99
        stats.hit_rule_lengths[1] = 123
        assert engine.lifetime.translated_blocks != \
            stats.translated_blocks
        assert 1 not in engine.lifetime.hit_rule_lengths


class TestIndirectControl:
    def test_calls_and_returns_thread_through_env(self):
        guest = build("""
        int add3(int a) { return a + 3; }
        int twice(int a) { return add3(add3(a)); }
        int main(void) { return twice(10); }
        """)
        result = DBTEngine(guest, "qemu").run()
        assert result.return_value == 16

    def test_recursion_through_guest_stack(self):
        guest = build("""
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main(void) { return fib(12); }
        """)
        result = DBTEngine(guest, "qemu").run()
        assert result.return_value == 144


class TestEnvIsolation:
    def test_env_and_guest_memory_disjoint(self):
        guest = build("""
        int data[64];
        int main(void) {
          int i = 0;
          while (i < 64) { data[i] = i; i += 1; }
          int s = 0;
          i = 0;
          while (i < 64) { s += data[i]; i += 1; }
          return s;
        }
        """)
        addrs = [guest.global_addrs[name] for name in guest.global_addrs]
        assert all(addr + 0x10000 < ENV_BASE for addr in addrs)
        result = DBTEngine(guest, "qemu").run()
        assert result.return_value == sum(range(64))

    def test_spill_slots_do_not_clobber_registers(self):
        # Wide expression forces host-register spills inside one block.
        guest = build("""
        int main(void) {
          int a = 1; int b = 2; int c = 3; int d = 4;
          int e = 5; int f = 6; int g = 7; int h = 8;
          return a*b + c*d + e*f + g*h + (a+b+c+d)*(e+f+g+h);
        }
        """)
        result = DBTEngine(guest, "qemu").run()
        expected = 1*2 + 3*4 + 5*6 + 7*8 + (1+2+3+4)*(5+6+7+8)
        assert result.return_value == expected
        assert SPILL_BASE > 0x60  # spill area clear of regs/flags
