"""TCG lowering, peephole, env caching, llvmjit TCG optimizer."""

from repro.dbt import codegen
from repro.dbt.codegen import BlockAssembler, env_mem, peephole, tb_label
from repro.dbt.llvmjit import optimize_tcg
from repro.dbt.tcg import TcgBlock, TcgCond, TcgOp
from repro.host_x86 import parse_instruction as parse
from repro.isa.operands import Imm, Mem, Reg


class TestAssembler:
    def test_guest_reg_loaded_once(self):
        assembler = BlockAssembler()
        first = assembler.guest_vreg("r0")
        loads = [i for i in assembler.instrs if i.mnemonic == "movl"]
        assert len(loads) == 1
        assert assembler.guest_vreg("r0") == first
        assert len(assembler.instrs) == 1  # no second load

    def test_writeback_only_dirty(self):
        assembler = BlockAssembler()
        assembler.guest_vreg("r0")  # read-only
        dest = assembler.guest_vreg("r1", load=False)
        assembler.emit("movl", Imm(5), Reg(dest))
        assembler.mark_dirty("r1")
        before = len(assembler.instrs)
        assembler.writeback()
        writebacks = assembler.instrs[before:]
        assert len(writebacks) == 1
        assert writebacks[0].operands[1] == env_mem(codegen.REG_OFFSET["r1"])

    def test_flags_have_env_slots(self):
        assembler = BlockAssembler()
        assembler.guest_vreg("flag:N", load=False)
        assembler.mark_dirty("flag:N")
        assembler.writeback()
        assert assembler.instrs[-1].operands[1] == \
            env_mem(codegen.FLAG_OFFSET["N"])


class TestLowering:
    def lower(self, *ops):
        assembler = BlockAssembler()
        for op in ops:
            codegen.lower_tcg_op(assembler, op)
        return assembler

    def test_add_two_address(self):
        assembler = self.lower(
            TcgOp("movi", out="%t1", a=7),
            TcgOp("movi", out="%t2", a=8),
            TcgOp("add", out="%t3", a="%t1", b="%t2"),
        )
        mnemonics = [i.mnemonic for i in assembler.instrs]
        assert mnemonics == ["movl", "movl", "movl", "addl"]

    def test_optimized_add_uses_lea(self):
        assembler = BlockAssembler()
        codegen.lower_tcg_op(assembler, TcgOp("movi", out="%t1", a=7))
        codegen.lower_tcg_op(
            assembler, TcgOp("add", out="%t2", a="%t1", b=5), optimized=True
        )
        assert assembler.instrs[-1].mnemonic == "leal"

    def test_cmp_flags_sub_lowering(self):
        assembler = self.lower(
            TcgOp("movi", out="%t1", a=7),
            TcgOp("cmp_flags", flag="sub", a="%t1", b=3),
        )
        mnemonics = [i.mnemonic for i in assembler.instrs]
        assert "cmpl" in mnemonics
        for cc in ("sets", "sete", "setae", "seto"):
            assert cc in mnemonics
        # All four guest flags are dirty.
        assert {"flag:N", "flag:Z", "flag:C", "flag:V"} <= assembler._dirty

    def test_brcond_writes_back_before_exit(self):
        assembler = self.lower(
            TcgOp("movi", out="%t1", a=1),
            TcgOp("st_reg", reg="r0", a="%t1"),
            TcgOp("brcond", cond=TcgCond.NE, a="%t1", b=0,
                  taken=0x8100, fallthrough=0x8104),
        )
        mnemonics = [i.mnemonic for i in assembler.instrs]
        jcc_index = mnemonics.index("jne")
        writeback = [
            i for i, instr in enumerate(assembler.instrs)
            if instr.mnemonic == "movl"
            and instr.operands[1] == env_mem(codegen.REG_OFFSET["r0"])
        ]
        assert writeback and writeback[0] < jcc_index
        assert assembler.instrs[-1].operands[0].name == tb_label(0x8104)


class TestPeephole:
    def test_copy_propagation(self):
        instrs = [
            parse("movl %eax, %ecx").with_operands(
                (Reg("%v1"), Reg("%v2"))
            ),
            parse("addl %eax, %ecx").with_operands(
                (Reg("%v2"), Reg("%v3"))
            ),
        ]
        # %v2 is just a copy of %v1; the use should read %v1 and the
        # copy should disappear.
        result = peephole(instrs)
        assert len(result) == 1
        assert result[0].operands[0] == Reg("%v1")

    def test_destination_never_substituted(self):
        instrs = [
            parse("movl %eax, %ecx").with_operands((Reg("%v1"), Reg("%v2"))),
            parse("subl $1, %eax").with_operands((Imm(1), Reg("%v2"))),
            parse("movl %eax, %ecx").with_operands(
                (Reg("%v2"), Mem(base=None, disp=0x1000))
            ),
        ]
        result = peephole(instrs)
        # subl's destination %v2 must stay %v2 (two-address semantics).
        assert result[0].operands[1] == Reg("%v2") or \
            result[0].mnemonic == "movl"
        sub = [i for i in result if i.mnemonic == "subl"][0]
        assert sub.operands[1] == Reg("%v2")

    def test_self_move_dropped(self):
        instrs = [
            parse("movl %eax, %eax").with_operands((Reg("%v1"), Reg("%v1"))),
        ]
        assert peephole(instrs) == []


class TestLlvmJitOptimizer:
    def test_redundant_reg_load_eliminated(self):
        block = TcgBlock(0x8000)
        block.emit(op="ld_reg", out="%t1", reg="r0")
        block.emit(op="ld_reg", out="%t2", reg="r0")
        block.emit(op="add", out="%t3", a="%t1", b="%t2")
        block.emit(op="st_reg", reg="r1", a="%t3")
        ops = optimize_tcg(block.ops)
        assert sum(1 for op in ops if op.op == "ld_reg") == 1

    def test_dead_store_eliminated(self):
        block = TcgBlock(0x8000)
        block.emit(op="movi", out="%t1", a=1)
        block.emit(op="st_reg", reg="r0", a="%t1")
        block.emit(op="movi", out="%t2", a=2)
        block.emit(op="st_reg", reg="r0", a="%t2")
        ops = optimize_tcg(block.ops)
        stores = [op for op in ops if op.op == "st_reg"]
        assert len(stores) == 1
        assert stores[0].a == "%t2" or isinstance(stores[0].a, int)

    def test_store_with_intervening_load_kept(self):
        block = TcgBlock(0x8000)
        block.emit(op="movi", out="%t1", a=1)
        block.emit(op="st_reg", reg="r0", a="%t1")
        block.emit(op="ld_reg", out="%t2", reg="r0")
        block.emit(op="st_reg", reg="r1", a="%t2")
        block.emit(op="movi", out="%t3", a=2)
        block.emit(op="st_reg", reg="r0", a="%t3")
        ops = optimize_tcg(block.ops)
        r0_stores = [op for op in ops if op.op == "st_reg" and op.reg == "r0"]
        assert len(r0_stores) == 2

    def test_dead_temp_removed(self):
        block = TcgBlock(0x8000)
        block.emit(op="movi", out="%t1", a=1)
        block.emit(op="movi", out="%t2", a=2)  # never used
        block.emit(op="st_reg", reg="r0", a="%t1")
        ops = optimize_tcg(block.ops)
        assert not any(op.out == "%t2" for op in ops)
