"""The soundness property that makes learned rules safe to ship:

rules learned from program A, applied while translating *unrelated*
program B, never change B's behaviour.  This is the paper's central
safety argument (verified rules are universally quantified over operand
values), exercised here over randomized programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbt.direct import run_arm_program
from repro.dbt.engine import run_dbt
from repro.learning import learn_rules
from repro.learning.store import RuleStore
from repro.minic import compile_source

# A diverse rule-source program: arithmetic, compares, loads/stores.
TRAINER = """
int scratch[32];
int work(int *p, int n, int bias) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    int v = p[i];
    acc = acc + v - 1;
    acc = acc ^ (v << 2);
    if (acc > 10000) {
      acc -= 10000;
    }
    p[i] = acc & 255;
    i += 1;
  }
  return acc + bias;
}
int main(void) {
  int i = 0;
  while (i < 32) {
    scratch[i] = i * 13 + 7;
    i += 1;
  }
  return work(scratch, 32, 5);
}
"""


@pytest.fixture(scope="module")
def trained_store():
    guest = compile_source(TRAINER, "arm", 2, "llvm")
    host = compile_source(TRAINER, "x86", 2, "llvm")
    outcome = learn_rules(guest, host, benchmark="trainer")
    assert outcome.rules, "trainer must yield rules"
    return RuleStore.from_rules(outcome.rules)


@st.composite
def random_minic_program(draw):
    seed = draw(st.integers(1, 1 << 20))
    loop_n = draw(st.integers(1, 12))
    shift = draw(st.integers(0, 4))
    mask = draw(st.integers(1, 255))
    op_a = draw(st.sampled_from(["+", "-", "^", "&", "|"]))
    op_b = draw(st.sampled_from(["+", "-", "^"]))
    use_array = draw(st.booleans())
    body = f"acc = acc {op_a} (i << {shift});"
    if use_array:
        body += f"\n    buf[i & 7] = acc & {mask};"
        body += f"\n    acc = acc {op_b} buf[(i + 1) & 7];"
    return f"""
int buf[8];
int main(void) {{
  int acc = {seed};
  int i = 0;
  while (i < {loop_n}) {{
    {body}
    i += 1;
  }}
  if (acc < 0) {{
    acc = 0 - acc;
  }}
  return acc;
}}
"""


@settings(max_examples=20, deadline=None)
@given(source=random_minic_program())
def test_foreign_rules_never_change_behaviour(trained_store, source):
    guest = compile_source(source, "arm", 2, "llvm")
    expected = run_arm_program(guest).return_value
    result = run_dbt(guest, "rules", trained_store)
    assert result.return_value == expected


@settings(max_examples=10, deadline=None)
@given(source=random_minic_program())
def test_foreign_rules_on_gcc_style_guests(trained_store, source):
    """Rules learned from llvm-style binaries applied to gcc-style
    binaries of unrelated programs (the Figure 9 transfer property)."""
    guest = compile_source(source, "arm", 2, "gcc")
    expected = run_arm_program(guest).return_value
    result = run_dbt(guest, "rules", trained_store)
    assert result.return_value == expected


def test_trained_rules_actually_fire(trained_store):
    """Sanity: the foreign rules must actually match something, or the
    property above is vacuous."""
    source = """
    int main(void) {
      int acc = 3;
      int i = 0;
      while (i < 50) {
        acc = acc + i - 1;
        i += 1;
      }
      return acc;
    }
    """
    guest = compile_source(source, "arm", 2, "llvm")
    result = run_dbt(guest, "rules", trained_store)
    assert result.stats.dynamic_coverage > 0.2
