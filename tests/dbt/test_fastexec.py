"""Differential test: closure-compiled fast path vs. oracle semantics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbt.fastexec import FastExecError, compile_instruction
from repro.dbt.machine import ConcreteState
from repro.host_x86 import execute, parse_instruction as parse
from repro.isa.alu import ConcreteALU
from repro.isa.operands import Label

ALU = ConcreteALU()

# One representative of every instruction form the DBT backend emits.
INSTRUCTIONS = [
    "movl $42, %eax",
    "movl %ecx, %eax",
    "movl 0x1000(%esi), %eax",
    "movl %eax, 0x1000(%esi)",
    "movl 0x7f000000(), %edx",
    "movl (%esi,%edi,4), %eax",
    "addl %ecx, %eax",
    "addl $7, %eax",
    "subl %ecx, %eax",
    "imull %ecx, %eax",
    "imull $3, %eax",
    "andl %ecx, %eax",
    "orl $0xff, %eax",
    "xorl %ecx, %eax",
    "cmpl %ecx, %eax",
    "cmpl $0, %eax",
    "testl %eax, %eax",
    "leal -0x4(%ecx,%eax,4), %edx",
    "movzbl %al, %edx",
    "movsbl %cl, %edx",
    "movb %cl, 0x1000(%esi)",
    "movb 0x1000(%esi), %al",
    "negl %eax",
    "notl %eax",
    "incl %eax",
    "decl %eax",
    "shll $3, %eax",
    "shrl $1, %eax",
    "sarl $2, %eax",
    "shll %cl, %eax",
    "sarl %cl, %eax",
    "sete %al",
    "setne %dl",
    "setae %bl",
    "seto %cl",
    "setl %al",
    "cmove %ecx, %eax",
    "cmovge %ecx, %eax",
    "cltd",
    "idivl %ebx",
]


def random_state(rng) -> ConcreteState:
    state = ConcreteState()
    for reg in ("eax", "ecx", "edx", "ebx", "esi", "edi"):
        state.set_reg(reg, rng.getrandbits(32))
    # keep addresses inside a small window for mem ops
    state.set_reg("esi", 0x2000 + rng.randrange(0, 64, 4))
    state.set_reg("edi", rng.randrange(0, 8))
    for flag in ("OF", "SF", "ZF", "CF"):
        state.set_flag(flag, rng.getrandbits(1))
    for addr in range(0x1000, 0x4000, 512):
        state.store(addr, rng.getrandbits(32), 4)
    return state


def clone(state: ConcreteState) -> ConcreteState:
    return ConcreteState(dict(state.regs), dict(state.flags),
                         dict(state.memory))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_fast_path_matches_semantics(seed):
    rng = random.Random(seed)
    for text in INSTRUCTIONS:
        instr = parse(text)
        step = compile_instruction(instr)
        slow = random_state(rng)
        fast = clone(slow)
        slow.regs["pc"] = 0
        outcome = execute(instr, slow, ALU)
        slow.regs.pop("pc", None)
        result = step(fast.regs, fast.flags, fast.memory)
        assert fast.regs == slow.regs, text
        assert fast.memory == slow.memory, text
        # Flags the semantics wrote must agree (the fast path may skip
        # writing flags an instruction leaves undefined/unchanged).
        for flag, value in slow.flags.items():
            if text.startswith(("movl", "movb", "movzbl", "movsbl", "leal",
                                "notl", "cltd", "set", "cmov", "idivl")):
                continue  # flag-preserving forms: initial random values
            assert fast.flags.get(flag, 0) == value, (text, flag)
        assert result is None or isinstance(result, str)


def test_branches_return_targets():
    state = ConcreteState()
    state.set_flag("ZF", 1)
    steps = {
        "je .L1": ".L1",
        "jne .L1": None,
        "jmp .L2": ".L2",
    }
    for text, expected in steps.items():
        step = compile_instruction(parse(text))
        assert step(state.regs, state.flags, state.memory) == expected


def test_uncompilable_raises():
    with pytest.raises(FastExecError):
        compile_instruction(parse("pushl %eax"))  # engine never emits it
