"""Cycle model unit tests."""

from repro.dbt.perf import PerfModel, instruction_cycles, speedup
from repro.host_x86 import parse_instruction as parse


class TestInstructionCycles:
    def test_alu_cheapest(self):
        assert instruction_cycles(parse("addl %ecx, %eax")) == 1.0

    def test_memory_costs_more(self):
        assert instruction_cycles(parse("movl (%esi), %eax")) > \
            instruction_cycles(parse("movl %ecx, %eax"))

    def test_lea_is_alu_not_memory(self):
        assert instruction_cycles(parse("leal (%esi,%edi,4), %eax")) == \
            instruction_cycles(parse("addl %ecx, %eax"))

    def test_division_most_expensive(self):
        assert instruction_cycles(parse("idivl %ebx")) > \
            instruction_cycles(parse("imull %ecx, %eax")) > \
            instruction_cycles(parse("addl %ecx, %eax"))

    def test_branches_cost_more_than_alu(self):
        assert instruction_cycles(parse("jne .L")) > \
            instruction_cycles(parse("addl %ecx, %eax"))


class TestPerfModel:
    def test_total_includes_all_parts(self):
        model = PerfModel(exec_cycles=100.0, translation_cycles=50.0,
                          dispatches=2)
        assert model.total_cycles > 150.0

    def test_speedup_direction(self):
        slow = PerfModel(exec_cycles=200.0)
        fast = PerfModel(exec_cycles=100.0)
        assert speedup(slow, fast) == 2.0
        assert speedup(fast, slow) == 0.5
