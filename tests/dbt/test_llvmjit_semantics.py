"""The LLVM-JIT TCG optimizer must preserve block semantics.

Random straight-line TCG blocks are lowered and executed twice — raw
and optimized — and the final guest-visible state must match.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dbt import codegen
from repro.dbt.codegen import ENV_BASE, REG_OFFSET
from repro.dbt.llvmjit import optimize_tcg
from repro.dbt.machine import ConcreteState
from repro.dbt.tcg import TcgBlock, TcgCond
from repro.host_x86 import execute as execute_x86
from repro.isa.alu import ConcreteALU

ALU = ConcreteALU()
GUEST_REGS = ("r0", "r1", "r2", "r3")


def random_block(rng: random.Random) -> TcgBlock:
    block = TcgBlock(0x8000)
    temps: list[str] = []

    def value():
        if temps and rng.random() < 0.7:
            return rng.choice(temps)
        return rng.randrange(0, 1 << 16)

    for _ in range(rng.randrange(3, 14)):
        kind = rng.randrange(0, 7)
        out = block.new_temp()
        if kind == 0:
            block.emit(op="movi", out=out, a=rng.randrange(0, 1 << 20))
            temps.append(out)
        elif kind == 1:
            block.emit(op="ld_reg", out=out, reg=rng.choice(GUEST_REGS))
            temps.append(out)
        elif kind == 2 and temps:
            block.emit(op="st_reg", reg=rng.choice(GUEST_REGS),
                       a=rng.choice(temps))
        elif kind == 3 and temps:
            block.emit(op=rng.choice(["add", "sub", "and", "or", "xor"]),
                       out=out, a=rng.choice(temps), b=value())
            temps.append(out)
        elif kind == 4 and temps:
            block.emit(op=rng.choice(["shl", "shr", "sar"]), out=out,
                       a=rng.choice(temps), b=rng.randrange(0, 32))
            temps.append(out)
        elif kind == 5 and temps:
            block.emit(op="setcond", out=out, cond=TcgCond.LTU,
                       a=rng.choice(temps), b=value())
            temps.append(out)
        elif kind == 6 and temps:
            block.emit(op="cmp_flags",
                       flag=rng.choice(["sub", "add", "and"]),
                       a=rng.choice(temps), b=value())
    block.emit(op="goto_tb", taken=0x9000)
    return block


def run_ops(ops, seed: int) -> dict:
    assembler = codegen.BlockAssembler()
    for op in ops:
        codegen.lower_tcg_op(assembler, op)
    tb = codegen.finalize_block(assembler, 0x8000)
    state = ConcreteState()
    rng = random.Random(seed ^ 0x5EED)
    for reg in GUEST_REGS:
        state.store(ENV_BASE + REG_OFFSET[reg], rng.getrandbits(32), 4)
    index = 0
    while index < len(tb.host_instrs):
        outcome = execute_x86(tb.host_instrs[index], state, ALU)
        if outcome.branch is not None and outcome.branch.cond:
            break
        index += 1
    return {
        reg: state.load(ENV_BASE + REG_OFFSET[reg], 4) for reg in GUEST_REGS
    }


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_optimizer_preserves_guest_state(seed):
    block = random_block(random.Random(seed))
    raw = run_ops(list(block.ops), seed)
    optimized = run_ops(optimize_tcg(list(block.ops)), seed)
    assert raw == optimized


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_optimizer_never_grows_the_block(seed):
    block = random_block(random.Random(seed))
    assert len(optimize_tcg(list(block.ops))) <= len(block.ops)
