"""Package-level checks: imports, version, doctest."""

import doctest


def test_version():
    import repro

    assert repro.__version__


def test_all_subpackages_importable():
    import importlib

    import repro

    for name in repro.__all__:
        module = importlib.import_module(f"repro.{name}")
        assert module.__doc__, f"repro.{name} lacks a module docstring"


def test_root_doctest():
    import repro

    results = doctest.testmod(repro)
    assert results.failed == 0


def test_public_modules_have_docstrings():
    import importlib
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    for path in root.rglob("*.py"):
        relative = path.relative_to(root.parent)
        module_name = str(relative.with_suffix("")).replace("/", ".")
        if module_name.endswith(".__init__"):
            module_name = module_name[: -len(".__init__")]
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
