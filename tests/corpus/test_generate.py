"""Generator determinism and generated-program well-formedness."""

from concurrent.futures import ThreadPoolExecutor

from repro.corpus.generate import derive_seed, generate_program
from repro.corpus.grammar import DEFAULT_REGIONS, REGIONS, GrammarConfig
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program

SLOTS = [(region, index) for region in DEFAULT_REGIONS
         if not REGIONS[region].idiom_recombine for index in range(4)]


class TestDeterminism:
    def test_same_slot_same_bytes(self):
        for region, index in SLOTS[:8]:
            config = REGIONS[region]
            first = generate_program(config, 11, region, index)
            second = generate_program(config, 11, region, index)
            assert first == second

    def test_stream_is_order_and_parallelism_independent(self):
        """The full stream must come out byte-identical whether slots
        are generated serially, in reverse, or across worker threads —
        each program derives purely from its (seed, region, index)."""
        serial = [
            generate_program(REGIONS[region], 3, region, index)
            for region, index in SLOTS
        ]
        reverse = [
            generate_program(REGIONS[region], 3, region, index)
            for region, index in reversed(SLOTS)
        ]
        assert serial == list(reversed(reverse))
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(pool.map(
                lambda slot: generate_program(
                    REGIONS[slot[0]], 3, slot[0], slot[1]
                ),
                SLOTS,
            ))
        assert threaded == serial

    def test_different_slots_differ(self):
        config = REGIONS["mixed"]
        programs = {
            generate_program(config, 5, "mixed", index)
            for index in range(12)
        }
        assert len(programs) == 12

    def test_seed_changes_stream(self):
        config = REGIONS["arith"]
        assert generate_program(config, 1, "arith", 0) != \
            generate_program(config, 2, "arith", 0)

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(7, "arith", 0) == derive_seed(7, "arith", 0)
        seeds = {derive_seed(7, region, index)
                 for region in DEFAULT_REGIONS for index in range(8)}
        assert len(seeds) == len(DEFAULT_REGIONS) * 8


class TestWellFormedness:
    def test_every_program_parses_lowers_and_runs(self):
        """Safety invariants: no undeclared identifiers (block scoping),
        no division by zero, bounded loops — the interpreter must
        finish every generated program."""
        for region, index in SLOTS:
            source = generate_program(REGIONS[region], 42, region, index)
            tac = lower_program(parse(source))
            optimize_program(tac, 2)
            run_tac(tac)

    def test_knobs_respected(self):
        config = GrammarConfig(arrays=False, chars=False, globals_=False,
                               calls=False, division=False)
        for index in range(6):
            source = generate_program(config, 9, "custom", index)
            assert "[" not in source
            assert "char" not in source
            assert "/" not in source
            assert "%" not in source
            tac = lower_program(parse(source))
            run_tac(tac)
