"""Differential soundness harness and the bugs it exists to catch."""

import json

from repro.corpus.diffcheck import (
    DiffResult,
    _same_failure_kind,
    check_source,
    dump_failure,
    minimize,
)
from repro.corpus.generate import generate_program
from repro.corpus.grammar import REGIONS


class TestCheckSource:
    def test_sound_program_passes_all_four_executions(self):
        source = generate_program(REGIONS["mixed"], 21, "mixed", 0)
        result = check_source(source)
        assert result.ok, result.describe()
        assert set(result.observed) == {
            "llvm/arm", "llvm/x86", "gcc/arm", "gcc/x86"
        }
        assert not result.errors

    def test_crash_is_captured_not_raised(self):
        result = check_source("int main(void) { return undeclared; }\n")
        assert not result.ok
        assert "oracle" in result.errors


class TestTwoAddressHazard:
    """Regression: ``v = t op v`` in a loop used to emit
    ``movl t, dest; op v, dest`` on x86, clobbering ``v`` with ``t``
    before the operation read it (found by this fuzzer)."""

    def _loop(self, update):
        return (
            "int main(void) {\n"
            "  int t = 3;\n"
            "  int v = 100;\n"
            "  int i = 0;\n"
            "  for (i = 0; i < 4; i += 1) {\n"
            f"    v = ({update});\n"
            "  }\n"
            "  return v;\n"
            "}\n"
        )

    def test_commutative_ops(self):
        for op in ("+", "*", "&", "|", "^"):
            result = check_source(self._loop(f"t {op} v"))
            assert result.ok, f"{op}: {result.describe()}"

    def test_subtraction_and_self_subtraction(self):
        assert check_source(self._loop("t - v")).ok
        assert check_source(self._loop("5 - v")).ok
        assert check_source(self._loop("v - v")).ok

    def test_shift_count_is_destination(self):
        # Count saved to ecx before the movl can clobber it; counts
        # stay masked (unmasked dynamic counts >= 32 diverge between
        # ISAs by design and are outside the generator's grammar).
        assert check_source(self._loop("t << (v & 7)")).ok
        assert check_source(self._loop("t >> (v & 7)")).ok
        assert check_source(self._loop("(v >> (-1 & 7)) + v")).ok


class TestSameFailureKind:
    def test_ok_trial_never_matches(self):
        original = DiffResult(ok=False, oracle=1,
                              observed={"gcc/x86": 2})
        assert not _same_failure_kind(original, DiffResult(ok=True))

    def test_pure_divergence_must_stay_error_free(self):
        original = DiffResult(ok=False, oracle=1,
                              observed={"gcc/x86": 2})
        divergent = DiffResult(ok=False, oracle=3,
                               observed={"gcc/x86": 4})
        crashed = DiffResult(ok=False,
                             errors={"oracle": "SemanticError: x"})
        assert _same_failure_kind(original, divergent)
        assert not _same_failure_kind(original, crashed)

    def test_crash_keys_must_stay_subset(self):
        original = DiffResult(ok=False,
                              errors={"gcc/x86": "E1", "llvm/x86": "E2"})
        same = DiffResult(ok=False, errors={"gcc/x86": "E1"})
        other = DiffResult(ok=False, errors={"gcc/arm": "E3"})
        silent = DiffResult(ok=False, oracle=1, observed={"gcc/x86": 2})
        assert _same_failure_kind(original, same)
        assert not _same_failure_kind(original, other)
        assert not _same_failure_kind(original, silent)


class TestMinimize:
    def test_sound_source_untouched(self):
        source = "int main(void) {\n  return 7;\n}\n"
        assert minimize(source) == source

    def test_dump_failure_writes_repro(self, tmp_path):
        source = "int main(void) { return undeclared; }\n"
        result = check_source(source)
        root = dump_failure(source, result, tmp_path,
                            meta={"region": "unit"})
        assert (root / "original.c").read_text() == source
        assert (root / "minimized.c").exists()
        meta = json.loads((root / "meta.json").read_text())
        assert meta["region"] == "unit"
        assert "oracle" in meta["errors"]
