"""Ingest pipeline: digest, staging, classification, commit."""

from repro.corpus.dedup import SeenStore
from repro.corpus.generate import generate_program
from repro.corpus.grammar import REGIONS
from repro.corpus.pipeline import (
    IngestPipeline,
    corpus_origin,
    program_digest,
)
from repro.learning.cache import VerificationCache


def _source(index=0):
    return generate_program(REGIONS["arith"], 13, "arith", index)


class TestIdentity:
    def test_digest_is_stable(self):
        assert program_digest("int main(void) { return 1; }\n") == \
            program_digest("int main(void) { return 1; }\n")

    def test_origin_is_namespaced_and_short(self):
        digest = program_digest(_source())
        origin = corpus_origin(digest)
        assert origin == f"corpus:{digest[:12]}"


class TestPipeline:
    def test_fresh_program_stages_both_styles(self):
        pipeline = IngestPipeline(SeenStore())
        program = pipeline.process(_source())
        assert program.decision.verdict == "fresh"
        assert set(program.builds) == {"llvm", "gcc"}
        assert program.candidate_digests()

    def test_committed_program_becomes_dup(self):
        store = SeenStore()
        pipeline = IngestPipeline(store)
        program = pipeline.process(_source())
        pipeline.commit(program)
        again = pipeline.process(_source())
        assert again.decision.verdict == "dup_program"
        # The short-circuit never compiled the duplicate.
        assert not again.builds

    def test_settled_windows_skip_new_program(self, tmp_path):
        """A *different* program whose windows were all settled by an
        earlier commit is all_settled, not dup_program."""
        store = SeenStore()
        pipeline = IngestPipeline(store)
        first = pipeline.process(_source(0))
        pipeline.commit(first)
        # Feed the first program's windows as if a twin program had
        # them all: simulate by classifying directly.
        decision = store.classify("other-digest",
                                  first.candidate_digests())
        assert decision.verdict == "all_settled"

    def test_cache_only_settlement(self, tmp_path):
        """Windows settled by the verification cache (offline learning
        or another feeder) skip programs this store never saw."""
        cache = VerificationCache.at_dir(tmp_path / "cache")
        pipeline = IngestPipeline(SeenStore(), cache)
        program = pipeline.process(_source(1))
        from repro.learning.canon import CandidateOutcome

        for digest in program.candidate_digests():
            cache.put(digest, CandidateOutcome(calls=1))
        rerun = IngestPipeline(SeenStore(), cache).process(_source(1))
        assert rerun.decision.verdict == "all_settled"

    def test_staging_emits_no_learning_events(self, tmp_path):
        """Staging is dedup pre-work: learn.* accounting belongs to the
        feed, so a staged-then-skipped program must leave no orphaned
        learning records in the trace."""
        from repro.obs.trace import read_trace, tracing

        trace_path = tmp_path / "trace.jsonl"
        with tracing(trace_path):
            IngestPipeline(SeenStore()).process(_source(2))
        names = {record.name for record in read_trace(trace_path)}
        assert not any(name.startswith("learn.") for name in names)
        assert "corpus.program" in names
