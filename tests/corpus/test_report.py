"""Observability contract: corpus events reconcile against the
embedded IngestSummary, and corpus origins never pollute Table 1."""

import copy

from repro.corpus.cli import run_ingest
from repro.corpus.dedup import SeenStore
from repro.learning.cache import VerificationCache
from repro.obs.report import (
    aggregate,
    reconcile,
    reconcile_corpus,
    render_report,
    table1_from_trace,
)
from repro.obs.trace import read_trace, tracing


def traced_run(tmp_path, programs=4):
    trace_path = tmp_path / "trace.jsonl"
    store = SeenStore.at_dir(tmp_path / "state")
    cache = VerificationCache.at_dir(tmp_path / "state" / "cache")
    with tracing(trace_path):
        summary = run_ingest(seed=11, programs=programs,
                             regions=("arith", "bitops"),
                             store=store, cache=cache)
    return summary, aggregate(read_trace(trace_path))


class TestReconciliation:
    def test_traced_ingest_reconciles_exactly(self, tmp_path):
        summary, agg = traced_run(tmp_path)
        assert agg.corpus.active
        mismatches = reconcile(agg)
        assert mismatches == []
        assert agg.corpus.counts() == summary.counts()

    def test_tampered_counts_detected(self, tmp_path):
        _, agg = traced_run(tmp_path)
        tampered = copy.deepcopy(agg)
        tampered.corpus.report_counts["novel_rules"] += 1
        failures = reconcile_corpus(tampered)
        assert any("novel_rules" in line for line in failures)

    def test_missing_summary_record_detected(self, tmp_path):
        _, agg = traced_run(tmp_path)
        orphaned = copy.deepcopy(agg)
        orphaned.corpus.report_counts = None
        failures = reconcile_corpus(orphaned)
        assert failures == ["corpus: no corpus.report record in trace"]

    def test_inactive_corpus_is_silent(self):
        agg = aggregate([])
        assert not agg.corpus.active
        assert reconcile_corpus(agg) == []


class TestTableOne:
    def test_corpus_origins_excluded_from_table1(self, tmp_path):
        _, agg = traced_run(tmp_path)
        assert any(name.startswith("corpus:") for name in agg.learning)
        table = table1_from_trace(agg)
        assert not any(name.startswith("corpus:") for name in table)

    def test_render_rolls_corpus_into_its_own_section(self, tmp_path):
        summary, agg = traced_run(tmp_path)
        text = render_report(agg)
        assert "== corpus ingestion ==" in text
        assert "corpus origins:" in text
        assert f"{summary.fed} program(s)" in text
        # Per-origin learning rows are suppressed from the benchmark
        # table; no corpus: origin appears as a table row.
        table_section = text.split("== corpus ingestion ==")[0]
        assert "corpus:" not in table_section.replace(
            "corpus origins:", "")


class TestSummedReports:
    def test_learn_report_records_sum_per_benchmark(self, tmp_path):
        """LocalFeed emits one learn.report per style per origin; the
        aggregate must sum them, not keep the last."""
        summary, agg = traced_run(tmp_path, programs=2)
        origins = [name for name in agg.learning
                   if name.startswith("corpus:")]
        assert origins
        for name in origins:
            bench = agg.learning[name]
            # Two styles -> the summed report counts cover both, and
            # match the independently derived per-event tallies.
            assert bench.report_counts is not None
            assert bench.report_counts["total_sequences"] == \
                bench.total_sequences
