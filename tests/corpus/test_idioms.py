"""Idiom mining: safety filter, determinism, recombination."""

import pytest

from repro.corpus.diffcheck import check_source
from repro.corpus.grammar import REGIONS, GrammarConfig
from repro.corpus.idioms import (
    Idiom,
    generate_idiom_program,
    mine_idioms,
)

_SOURCES = {
    "alpha": (
        "int main(void) {\n"
        "  int a = 1;\n"
        "  int b = 2;\n"
        "  int c = (a + b) & 255;\n"
        "  c = (a + b) & 255;\n"
        "  int d = a / b;\n"
        "  int e = a << 2;\n"
        "  return c;\n"
        "}\n"
    ),
    "beta": (
        "int main(void) {\n"
        "  int x = 3;\n"
        "  int y = 4;\n"
        "  int z = (x + y) & 255;\n"
        "  z = x ^ (y - 1);\n"
        "  return z;\n"
        "}\n"
    ),
}


class TestMining:
    def test_frequency_ranking_and_safety(self):
        idioms = mine_idioms(_SOURCES)
        skeletons = [idiom.skeleton for idiom in idioms]
        # The accumulate-and-mask shape appears three times across both
        # sources and must rank first.
        assert skeletons[0] == "(($0 + $1) & 255)"
        assert idioms[0].count == 3
        assert idioms[0].arity == 2
        # Division and shifts are unsafe under substitution: rejected.
        assert not any("/" in s or "<<" in s for s in skeletons)

    def test_mining_is_deterministic(self):
        assert mine_idioms(_SOURCES) == mine_idioms(_SOURCES)

    def test_benchsuite_mining_yields_idioms(self):
        idioms = mine_idioms(top=8)
        assert len(idioms) == 8
        assert all(idiom.count >= 1 for idiom in idioms)
        assert all("$0" in idiom.skeleton for idiom in idioms)


class TestInstantiate:
    def test_placeholders_substituted_in_slot_order(self):
        idiom = Idiom(skeleton="(($0 + $1) & $0)", arity=2, count=1)
        assert idiom.instantiate(["x", "y"]) == "((x + y) & x)"

    def test_double_digit_slots(self):
        # $1 must not be corrupted by substituting $1 into $10's text.
        skeleton = "(" + " + ".join(f"${i}" for i in range(11)) + ")"
        idiom = Idiom(skeleton=skeleton, arity=11, count=1)
        names = [f"n{i}" for i in range(11)]
        assert idiom.instantiate(names) == \
            "(" + " + ".join(names) + ")"


class TestGeneration:
    def test_same_slot_same_bytes(self):
        config = REGIONS["idioms"]
        first = generate_idiom_program(config, 31, "idioms", 5)
        second = generate_idiom_program(config, 31, "idioms", 5)
        assert first == second

    def test_idiom_programs_are_sound(self):
        config = REGIONS["idioms"]
        for index in range(3):
            source = generate_idiom_program(config, 31, "idioms", index)
            result = check_source(source)
            assert result.ok, result.describe()

    def test_empty_idiom_list_rejected(self):
        with pytest.raises(ValueError):
            generate_idiom_program(GrammarConfig(), 1, idioms=[])
