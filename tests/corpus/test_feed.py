"""Feeds: novelty accounting, provenance, and the service ingest op."""

from repro.benchsuite import build_learning_pair
from repro.corpus.dedup import SeenStore
from repro.corpus.feed import LocalFeed
from repro.corpus.generate import generate_program
from repro.corpus.grammar import REGIONS
from repro.corpus.pipeline import IngestPipeline
from repro.learning.pipeline import learn_rules
from repro.service.learner import OnlineLearner
from repro.service.repo import RuleRepository
from repro.service.server import RuleService


def _program(index=0, region="mixed"):
    source = generate_program(REGIONS[region], 17, region, index)
    return IngestPipeline(SeenStore()).process(source, region=region,
                                               seed=17, index=index)


class TestLocalFeed:
    def test_rules_carry_corpus_provenance(self):
        program = _program()
        feed = LocalFeed()
        result = feed.feed(program)
        assert result.origin == program.origin
        assert result.origin.startswith("corpus:")
        for rule in result.rules:
            assert rule.origin == program.origin

    def test_baseline_rules_are_never_novel(self):
        """Rediscovering a benchsuite rule counts for nothing: novelty
        is rule identity, which ignores origin and line."""
        program = _program()
        cold = LocalFeed().feed(program)
        # Styles overlap, so distinct identities <= total rules.
        assert 0 < cold.novel <= len(cold.rules)
        seeded = LocalFeed(baseline=cold.rules).feed(program)
        assert seeded.rules
        assert seeded.novel == 0

    def test_repeat_feed_is_not_novel_again(self):
        feed = LocalFeed()
        first = feed.feed(_program())
        again = feed.feed(_program())
        assert first.novel > 0
        assert again.novel == 0

    def test_report_merged_per_origin_across_styles(self):
        program = _program()
        feed = LocalFeed()
        feed.feed(program)
        merged = feed.reports[program.origin]
        assert merged.benchmark == program.origin
        # Both styles contributed: the merged report saw at least as
        # many sequences as either style alone.
        guest, host = program.builds["llvm"]
        solo = learn_rules(guest, host, benchmark=program.origin)
        assert merged.total_sequences >= solo.report.total_sequences


class TestServiceIngest:
    def _service(self, tmp_path):
        learner = OnlineLearner(
            builds={"mcf": build_learning_pair("mcf")}
        )
        return RuleService(RuleRepository(tmp_path / "repo"),
                           learner=learner)

    def test_ingest_source_stages_and_queues_gaps(self, tmp_path):
        service = self._service(tmp_path)
        service.learner.staged_candidates()  # force initial staging
        program = _program(1)
        response = service.handle({
            "op": "ingest_source",
            "source": program.source,
            "origin": program.origin,
        })
        assert response["ok"], response
        assert response["origin"] == program.origin
        assert response["staged_candidates"] > 0
        assert response["gaps"] > 0
        assert service.corpus_stats["programs"] == 1

    def test_flush_publishes_corpus_rules(self, tmp_path):
        service = self._service(tmp_path)
        program = _program(2)
        ingest = service.handle({"op": "ingest_source",
                                 "source": program.source})
        assert ingest["ok"]
        flush = service.handle({"op": "flush"})
        assert flush["ok"]
        assert flush["rules"] > 0
        stats = service.handle({"op": "stats"})
        assert stats["corpus"]["programs"] == 1
        assert stats["corpus"]["rules"] > 0
        # Published rules keep their corpus provenance in the repo.
        origins = {
            str(rule.origin)
            for rule in service.repo.all_rules(service.direction)
        }
        assert any(origin.startswith("corpus:") for origin in origins)

    def test_ingest_source_validates(self, tmp_path):
        service = self._service(tmp_path)
        assert not service.handle({"op": "ingest_source"})["ok"]
        assert not service.handle({"op": "ingest_source",
                                   "source": "  "})["ok"]
        bare = RuleService(RuleRepository(tmp_path / "bare"))
        response = bare.handle({"op": "ingest_source",
                                "source": "int main(void){return 0;}"})
        assert not response["ok"]
        assert "learner" in response["error"]
