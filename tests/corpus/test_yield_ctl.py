"""Yield controller: deterministic UCB policy and barren cooldown."""

from repro.corpus.yield_ctl import YieldController


def make(regions=("a", "b", "c"), **kwargs):
    return YieldController(regions=regions, **kwargs)


class TestPolicy:
    def test_each_arm_probed_once_first_in_order(self):
        ctl = make()
        seen = []
        for _ in range(3):
            region = ctl.next_region()
            seen.append(region)
            ctl.record(region, fed=True, rules=1)
        assert seen == ["a", "b", "c"]

    def test_productive_region_earns_share(self):
        ctl = make()
        for _ in range(3):
            region = ctl.next_region()
            ctl.record(region, fed=True,
                       rules=3 if region == "b" else 0)
        pulls = {"a": 0, "b": 0, "c": 0}
        for _ in range(30):
            region = ctl.next_region()
            pulls[region] += 1
            ctl.record(region, fed=True,
                       rules=2 if region == "b" else 0)
        assert pulls["b"] > pulls["a"]
        assert pulls["b"] > pulls["c"]

    def test_policy_is_deterministic(self):
        def run():
            ctl = make(window=4, cooldown=6)
            choices = []
            for step in range(40):
                region = ctl.next_region()
                choices.append(region)
                # Deterministic synthetic yield: only "c" produces,
                # every third pull.
                rules = 1 if region == "c" and step % 3 == 0 else 0
                ctl.record(region, fed=True, rules=rules)
            return choices

        assert run() == run()


class TestCooldown:
    def test_barren_region_cools_down_and_resumes(self):
        ctl = make(regions=("a", "b"), window=3, cooldown=5)
        # Make "a" barren: a full window of zero-rule pulls.
        for _ in range(3):
            ctl.record("a", fed=True, rules=0)
        assert "a" in ctl.cooling()
        assert ctl.arms["a"].cooldowns == 1
        # While cooling, the policy only offers "b".
        ctl.record("b", fed=True, rules=1)
        assert ctl.next_region() == "b"
        # Advance the clock past resume_at; "a" becomes eligible again.
        for _ in range(5):
            ctl.record("b", fed=True, rules=0)
        assert "a" not in ctl.cooling()

    def test_window_cleared_on_cooldown(self):
        ctl = make(regions=("a",), window=2, cooldown=3)
        ctl.record("a", fed=True, rules=0)
        ctl.record("a", fed=True, rules=0)
        assert ctl.arms["a"].cooldowns == 1
        assert len(ctl.arms["a"].recent) == 0

    def test_all_cooling_reprobes_earliest(self):
        ctl = make(regions=("a", "b"), window=1, cooldown=10)
        ctl.record("a", fed=True, rules=0)   # a barren at step 1
        ctl.record("b", fed=True, rules=0)   # b barren at step 2
        assert set(ctl.cooling()) == {"a", "b"}
        # Everything cooling: re-probe the one that resumes first.
        assert ctl.next_region() == "a"


class TestSnapshot:
    def test_snapshot_shape(self):
        ctl = make(regions=("a",))
        ctl.record("a", fed=True, rules=2, verify_calls=9)
        ctl.record("a", fed=False)
        snap = ctl.snapshot()["a"]
        assert snap["pulls"] == 2
        assert snap["fed"] == 1
        assert snap["skipped"] == 1
        assert snap["rules"] == 2
        assert snap["verify_calls"] == 9
        assert snap["mean_yield"] == 1.0
        assert snap["cooling"] is False
