"""Seen-store classification, durability, and staleness handling."""

import json

from repro.corpus.dedup import (
    STORE_FILE_VERSION,
    STORE_FORMAT,
    SeenStore,
)
from repro.learning.cache import SEMANTICS_VERSION, VerificationCache
from repro.learning.canon import CandidateOutcome


class TestClassify:
    def test_unknown_program_is_fresh(self):
        store = SeenStore()
        decision = store.classify("p1", ["w1", "w2"])
        assert decision.verdict == "fresh"
        assert not decision.skipped
        assert decision.fresh_candidates == 2

    def test_seen_program_is_dup(self):
        store = SeenStore()
        store.add_program("p1", region="arith")
        decision = store.classify("p1", ["w1"])
        assert decision.verdict == "dup_program"
        assert decision.skipped

    def test_all_windows_settled_skips(self):
        store = SeenStore()
        store.add_windows(["w1", "w2"])
        decision = store.classify("p2", ["w1", "w2"])
        assert decision.verdict == "all_settled"
        assert decision.skipped
        assert decision.settled == 2

    def test_partially_settled_stays_fresh(self):
        """A program with even one unsettled window is still fuel:
        the cache replays the settled windows for free."""
        store = SeenStore()
        store.add_windows(["w1"])
        decision = store.classify("p2", ["w1", "w2", "w3"])
        assert decision.verdict == "fresh"
        assert decision.settled == 1
        assert decision.fresh_candidates == 2

    def test_cache_settles_windows_too(self, tmp_path):
        cache = VerificationCache.at_dir(tmp_path / "cache")
        cache.put("w1", CandidateOutcome(calls=1))
        store = SeenStore()
        decision = store.classify("p3", ["w1"], cache)
        assert decision.verdict == "all_settled"

    def test_no_candidates_is_fresh(self):
        # An empty window set can't prove settlement; let the feed
        # decide (it will learn nothing, cheaply).
        store = SeenStore()
        assert store.classify("p4", []).verdict == "fresh"


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        store = SeenStore.at_dir(tmp_path)
        store.add_program("p1", region="arith", seed=7)
        store.add_windows(["w1", "w2"])
        store.save()
        reloaded = SeenStore.at_dir(tmp_path)
        assert reloaded.seen_program("p1")
        assert reloaded.program_meta("p1")["region"] == "arith"
        assert reloaded.seen_window("w2")
        assert len(reloaded) == 1
        assert reloaded.windows == 2

    def test_save_is_noop_when_clean(self, tmp_path):
        store = SeenStore.at_dir(tmp_path)
        store.save()
        assert not (tmp_path / "corpus-seen.json").exists()

    def test_corrupt_file_quarantined(self, tmp_path):
        path = tmp_path / "corpus-seen.json"
        path.write_text("{not json")
        store = SeenStore(path)
        assert len(store) == 0
        assert store.stats.corrupt == 1
        quarantine = tmp_path / "corpus-seen.json.corrupt"
        assert quarantine.exists()
        assert quarantine.read_text() == "{not json"
        # The store must be usable (and savable) after quarantine.
        store.add_program("p1")
        store.save()
        assert SeenStore(path).seen_program("p1")

    def test_wrong_shape_quarantined(self, tmp_path):
        path = tmp_path / "corpus-seen.json"
        path.write_text(json.dumps({"format": STORE_FORMAT,
                                    "version": STORE_FILE_VERSION,
                                    "semantics": SEMANTICS_VERSION,
                                    "programs": [], "windows": {}}))
        store = SeenStore(path)
        assert store.stats.corrupt == 1
        assert (tmp_path / "corpus-seen.json.corrupt").exists()

    def test_semantics_bump_discards_as_stale(self, tmp_path):
        store = SeenStore.at_dir(tmp_path)
        store.add_program("p1")
        store.add_windows(["w1"])
        store.save()
        bumped = SeenStore(tmp_path / "corpus-seen.json",
                           semantics_version=SEMANTICS_VERSION + 1)
        assert len(bumped) == 0
        assert bumped.windows == 0
        assert bumped.stats.stale == 1
        assert bumped.stats.corrupt == 0
        # Stale is not corrupt: no quarantine file.
        assert not (tmp_path / "corpus-seen.json.corrupt").exists()
        # Saving under the new semantics overwrites the stale store.
        bumped.add_program("p2")
        bumped.save()
        reread = SeenStore(tmp_path / "corpus-seen.json",
                           semantics_version=SEMANTICS_VERSION + 1)
        assert reread.seen_program("p2")
        assert not reread.seen_program("p1")
