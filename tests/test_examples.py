"""Every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py")
)


def run_example(path, *args):
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True, text=True, timeout=420,
    )


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "paper_figures.py" in names
    assert len(EXAMPLES) >= 3


def test_quickstart():
    result = run_example("examples/quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "modeled speedup" in result.stdout
    assert "verified rules" in result.stdout.replace("\n", " ") or \
        "rules" in result.stdout


def test_paper_figures():
    result = run_example("examples/paper_figures.py")
    assert result.returncode == 0, result.stderr
    out = result.stdout
    # Every worked example learns its rule.
    assert out.count("learned rule:") >= 6
    assert "verification failed" not in out
    assert "parameterization failed" not in out
    # The carry-polarity subtlety resolves as the paper explains.
    assert "ARM C == NOT x86 CF after compare?  equal" in out


def test_inspect_rules():
    result = run_example("examples/inspect_rules.py", "mcf")
    assert result.returncode == 0, result.stderr
    assert "learning report for mcf" in result.stdout
    assert "rules ===" in result.stdout


def test_reverse_direction():
    result = run_example("examples/reverse_direction.py")
    assert result.returncode == 0, result.stderr
    assert "REJECTED" in result.stdout
    assert "assembles to add" in result.stdout


@pytest.mark.slow
def test_spec_run():
    result = run_example("examples/spec_run.py", "mcf", "test")
    assert result.returncode == 0, result.stderr
    assert "speedup over QEMU" in result.stdout
