"""Node-construction invariants of the bitvector IR."""

import pytest

from repro.ir.expr import (
    BinOp,
    Binary,
    CmpKind,
    CmpOp,
    Concat,
    Const,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
    mask,
    to_signed,
    to_unsigned,
)


class TestHelpers:
    def test_mask(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1, 32) == 0xFFFFFFFF
        assert to_unsigned(1 << 32, 32) == 0
        assert to_unsigned(0x1FF, 8) == 0xFF

    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF, 32) == -1
        assert to_signed(0x7FFFFFFF, 32) == 0x7FFFFFFF
        assert to_signed(0x80, 8) == -128

    def test_roundtrip(self):
        for value in (-5, 0, 5, 127, -128):
            assert to_signed(to_unsigned(value, 8), 8) == value


class TestConst:
    def test_canonicalizes_negative(self):
        assert Const(32, -1).value == 0xFFFFFFFF

    def test_signed_property(self):
        assert Const(8, 0xFF).signed == -1
        assert Const(8, 1).signed == 1

    def test_equality_after_canonicalization(self):
        assert Const(32, -1) == Const(32, 0xFFFFFFFF)

    def test_hashable(self):
        assert len({Const(32, 1), Const(32, 1), Const(32, 2)}) == 2

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            Const(0, 1)


class TestSym:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Sym(32, "")

    def test_same_name_same_node(self):
        assert Sym(32, "x") == Sym(32, "x")
        assert Sym(32, "x") != Sym(32, "y")


class TestShapeChecks:
    def test_binop_width_mismatch(self):
        with pytest.raises(ValueError):
            BinOp(32, Binary.ADD, Const(32, 1), Const(16, 1))

    def test_unop_width_mismatch(self):
        with pytest.raises(ValueError):
            UnOp(16, Unary.NOT, Const(32, 1))

    def test_cmp_must_be_one_bit(self):
        with pytest.raises(ValueError):
            CmpOp(32, CmpKind.EQ, Const(32, 1), Const(32, 1))

    def test_cmp_operand_widths_match(self):
        with pytest.raises(ValueError):
            CmpOp(1, CmpKind.EQ, Const(32, 1), Const(8, 1))

    def test_extract_bounds(self):
        with pytest.raises(ValueError):
            Extract(8, 34, 27, Const(32, 0))
        with pytest.raises(ValueError):
            Extract(9, 7, 0, Const(32, 0))  # inconsistent width

    def test_extend_must_widen(self):
        with pytest.raises(ValueError):
            Extend(32, False, Const(32, 1))

    def test_concat_width_is_sum(self):
        node = Concat(40, Const(8, 1), Const(32, 2))
        assert node.width == 40
        with pytest.raises(ValueError):
            Concat(32, Const(8, 1), Const(32, 2))

    def test_ite_condition_one_bit(self):
        with pytest.raises(ValueError):
            Ite(32, Const(32, 1), Const(32, 1), Const(32, 2))

    def test_ite_arm_widths(self):
        with pytest.raises(ValueError):
            Ite(32, Const(1, 1), Const(32, 1), Const(16, 2))


class TestPrinting:
    def test_const_str(self):
        assert str(Const(32, 255)) == "0xff:32"

    def test_sym_str(self):
        assert str(Sym(8, "x")) == "x:8"

    def test_binop_str(self):
        node = BinOp(32, Binary.ADD, Sym(32, "a"), Const(32, 1))
        assert str(node) == "(add a:32 0x1:32)"
