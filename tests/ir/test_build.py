"""Smart-constructor folding behaviour."""

from repro import ir
from repro.ir.expr import BinOp, Const, Sym


X = ir.sym(32, "x")
Y = ir.sym(32, "y")


class TestConstantFolding:
    def test_add(self):
        assert ir.add(ir.bv(32, 2), ir.bv(32, 3)) == ir.bv(32, 5)

    def test_add_wraps(self):
        assert ir.add(ir.bv(32, 0xFFFFFFFF), ir.bv(32, 1)) == ir.bv(32, 0)

    def test_sub_wraps(self):
        assert ir.sub(ir.bv(32, 0), ir.bv(32, 1)) == ir.bv(32, 0xFFFFFFFF)

    def test_mul(self):
        assert ir.mul(ir.bv(32, 6), ir.bv(32, 7)) == ir.bv(32, 42)

    def test_udiv_by_zero_is_all_ones(self):
        assert ir.udiv(ir.bv(32, 5), ir.bv(32, 0)) == ir.bv(32, 0xFFFFFFFF)

    def test_sdiv_truncates_toward_zero(self):
        assert ir.sdiv(ir.bv(32, -7), ir.bv(32, 2)) == ir.bv(32, -3)
        assert ir.sdiv(ir.bv(32, 7), ir.bv(32, -2)) == ir.bv(32, -3)

    def test_srem_sign_follows_dividend(self):
        assert ir.srem(ir.bv(32, -7), ir.bv(32, 2)) == ir.bv(32, -1)
        assert ir.srem(ir.bv(32, 7), ir.bv(32, -2)) == ir.bv(32, 1)

    def test_shift_beyond_width(self):
        assert ir.shl(ir.bv(32, 1), ir.bv(32, 33)) == ir.bv(32, 0)
        assert ir.lshr(ir.bv(32, 0xFF), ir.bv(32, 40)) == ir.bv(32, 0)

    def test_ashr_sign_fills(self):
        assert ir.ashr(ir.bv(32, 0x80000000), ir.bv(32, 40)) == \
            ir.bv(32, 0xFFFFFFFF)

    def test_comparisons(self):
        assert ir.slt(ir.bv(32, -1), ir.bv(32, 0)) == ir.bv(1, 1)
        assert ir.ult(ir.bv(32, -1), ir.bv(32, 0)) == ir.bv(1, 0)


class TestIdentities:
    def test_add_zero(self):
        assert ir.add(X, ir.bv(32, 0)) is X
        assert ir.add(ir.bv(32, 0), X) is X

    def test_and_identities(self):
        assert ir.and_(X, ir.bv(32, 0)) == ir.bv(32, 0)
        assert ir.and_(X, ir.bv(32, 0xFFFFFFFF)) is X

    def test_mul_identities(self):
        assert ir.mul(X, ir.bv(32, 1)) is X
        assert ir.mul(X, ir.bv(32, 0)) == ir.bv(32, 0)

    def test_double_negation(self):
        assert ir.neg(ir.neg(X)) is X
        assert ir.not_(ir.not_(X)) is X

    def test_reflexive_comparisons(self):
        assert ir.eq(X, X) == ir.bv(1, 1)
        assert ir.ne(X, X) == ir.bv(1, 0)
        assert ir.ule(X, X) == ir.bv(1, 1)
        assert ir.sgt(X, X) == ir.bv(1, 0)


class TestStructural:
    def test_extract_full_width_is_identity(self):
        assert ir.extract(31, 0, X) is X

    def test_extract_of_constant(self):
        assert ir.extract(15, 8, ir.bv(32, 0xAABB)) == ir.bv(8, 0xAA)

    def test_extract_of_extract(self):
        inner = ir.extract(23, 8, X)
        assert ir.extract(7, 0, inner) == ir.extract(15, 8, X)

    def test_extract_through_zext_high_bits(self):
        wide = ir.zext(64, X)
        assert ir.extract(63, 32, wide) == ir.bv(32, 0)

    def test_zext_of_constant(self):
        assert ir.zext(64, ir.bv(32, 5)) == ir.bv(64, 5)

    def test_sext_of_constant(self):
        assert ir.sext(64, ir.bv(32, -1)) == ir.bv(64, 0xFFFFFFFFFFFFFFFF)

    def test_zext_same_width_identity(self):
        assert ir.zext(32, X) is X

    def test_concat_of_constants(self):
        assert ir.concat(ir.bv(8, 0xAA), ir.bv(8, 0xBB)) == ir.bv(16, 0xAABB)

    def test_ite_constant_condition(self):
        assert ir.ite(ir.bv(1, 1), X, Y) is X
        assert ir.ite(ir.bv(1, 0), X, Y) is Y

    def test_ite_same_arms(self):
        assert ir.ite(ir.eq(X, Y), X, X) is X

    def test_ite_bool_arms_collapse_to_condition(self):
        cond = ir.eq(X, Y)
        assert ir.ite(cond, ir.bv(1, 1), ir.bv(1, 0)) is cond

    def test_symbolic_stays_symbolic(self):
        node = ir.add(X, Y)
        assert isinstance(node, BinOp)
        assert not isinstance(node, (Const, Sym))
