"""The simplifier: canonicalization properties + semantic preservation."""

from hypothesis import given, strategies as st

from repro import ir
from repro.ir.evaluate import evaluate
from repro.ir.simplify import simplify


X = ir.sym(32, "x")
Y = ir.sym(32, "y")
Z = ir.sym(32, "z")


class TestCanonicalEquality:
    """Equivalent expressions must simplify to identical trees — this is
    what lets most rule verifications succeed without the SAT/BDD
    engines."""

    def test_commutative_add(self):
        assert simplify(ir.add(X, Y)) == simplify(ir.add(Y, X))

    def test_associative_add(self):
        assert simplify(ir.add(ir.add(X, Y), Z)) == \
            simplify(ir.add(X, ir.add(Y, Z)))

    def test_sub_as_negative_add(self):
        a = ir.sub(ir.add(X, Y), ir.bv(32, 1))
        b = ir.add(ir.add(X, Y), ir.bv(32, 0xFFFFFFFF))
        assert simplify(a) == simplify(b)

    def test_shift_equals_scale(self):
        assert simplify(ir.shl(X, ir.bv(32, 2))) == \
            simplify(ir.mul(X, ir.bv(32, 4)))

    def test_address_forms(self):
        # ARM: (y + (x << 2)) - 4   vs  x86: y + x*4 + (-4)
        arm = ir.sub(ir.add(Y, ir.shl(X, ir.bv(32, 2))), ir.bv(32, 4))
        x86 = ir.add(ir.add(Y, ir.mul(X, ir.bv(32, 4))),
                     ir.bv(32, 0xFFFFFFFC))
        assert simplify(arm) == simplify(x86)

    def test_movzbl_equals_and_255(self):
        a = ir.zext(32, ir.extract(7, 0, X))
        b = ir.and_(X, ir.bv(32, 255))
        assert simplify(a) == simplify(b)

    def test_repeated_term_becomes_multiplication(self):
        a = ir.add(ir.add(X, X), X)
        b = ir.mul(X, ir.bv(32, 3))
        assert simplify(a) == simplify(b)

    def test_term_cancellation(self):
        expr = ir.sub(ir.add(X, Y), Y)
        assert simplify(expr) == X

    def test_full_cancellation_to_zero(self):
        expr = ir.sub(ir.add(X, Y), ir.add(Y, X))
        assert simplify(expr) == ir.bv(32, 0)

    def test_cmp_sub_zero_normalization(self):
        a = ir.eq(ir.sub(X, Y), ir.bv(32, 0))
        b = ir.eq(X, Y)
        assert simplify(a) == simplify(b)

    def test_neg_never_becomes_mul_by_minus_one(self):
        # mul by 0xffffffff would force a full multiplier in the BDD/SAT
        # engines (regression: exponential blowup).
        text = str(simplify(ir.sub(X, ir.mul(Y, ir.bv(32, 1)))))
        assert "0xffffffff" not in text

    def test_and_mask_collapse(self):
        expr = ir.and_(ir.and_(X, ir.bv(32, 0xFFFF)), ir.bv(32, 0xFF))
        assert simplify(expr) == simplify(ir.and_(X, ir.bv(32, 0xFF)))

    def test_xor_self_is_zero(self):
        assert simplify(ir.xor(X, X)) == ir.bv(32, 0)


_EXPR_DEPTH = 4


def _exprs(draw, depth: int):
    choice = draw(st.integers(0, 7 if depth > 0 else 1))
    if choice == 0:
        return ir.bv(32, draw(st.integers(0, 0xFFFFFFFF)))
    if choice == 1:
        return ir.sym(32, draw(st.sampled_from(["x", "y", "z"])))
    a = _exprs(draw, depth - 1)
    b = _exprs(draw, depth - 1)
    ops = [ir.add, ir.sub, ir.mul, ir.and_, ir.or_, ir.xor]
    if choice < 8 - 2:
        return ops[choice - 2](a, b)
    return ir.shl(a, ir.bv(32, draw(st.integers(0, 31))))


@st.composite
def random_expr(draw):
    return _exprs(draw, _EXPR_DEPTH)


@given(
    expr=random_expr(),
    x=st.integers(0, 0xFFFFFFFF),
    y=st.integers(0, 0xFFFFFFFF),
    z=st.integers(0, 0xFFFFFFFF),
)
def test_simplify_preserves_semantics(expr, x, y, z):
    env = {"x": x, "y": y, "z": z}
    assert evaluate(simplify(expr), env) == evaluate(expr, env)


@given(expr=random_expr())
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once
