"""Concrete evaluation, including a hypothesis oracle check."""

import pytest
from hypothesis import given, strategies as st

from repro import ir
from repro.ir.evaluate import UnboundSymbolError, evaluate


X = ir.sym(32, "x")
Y = ir.sym(32, "y")


class TestEvaluate:
    def test_symbol_lookup(self):
        assert evaluate(X, {"x": 42}) == 42

    def test_symbol_canonicalized(self):
        assert evaluate(X, {"x": -1}) == 0xFFFFFFFF

    def test_unbound_symbol_raises(self):
        with pytest.raises(UnboundSymbolError):
            evaluate(X, {})

    def test_nested_expression(self):
        expr = ir.add(ir.mul(X, ir.bv(32, 3)), Y)
        assert evaluate(expr, {"x": 10, "y": 5}) == 35

    def test_ite(self):
        expr = ir.ite(ir.slt(X, Y), X, Y)  # signed min
        assert evaluate(expr, {"x": 0xFFFFFFFF, "y": 3}) == 0xFFFFFFFF

    def test_extract_concat_roundtrip(self):
        expr = ir.concat(ir.extract(31, 16, X), ir.extract(15, 0, X))
        assert evaluate(expr, {"x": 0xDEADBEEF}) == 0xDEADBEEF

    def test_deep_chain_no_recursion_error(self):
        expr = X
        for _ in range(5000):
            expr = ir.add(expr, ir.sym(32, "y"))
        assert evaluate(expr, {"x": 1, "y": 0}) == 1


@given(
    a=st.integers(0, 0xFFFFFFFF),
    b=st.integers(0, 0xFFFFFFFF),
)
def test_binary_ops_match_python(a, b):
    """Every binary op agrees with a reference Python computation."""
    env = {"x": a, "y": b}
    sa = a - (1 << 32) if a >> 31 else a
    sb = b - (1 << 32) if b >> 31 else b
    mask = 0xFFFFFFFF
    cases = {
        ir.add(X, Y): (a + b) & mask,
        ir.sub(X, Y): (a - b) & mask,
        ir.mul(X, Y): (a * b) & mask,
        ir.and_(X, Y): a & b,
        ir.or_(X, Y): a | b,
        ir.xor(X, Y): a ^ b,
        ir.eq(X, Y): int(a == b),
        ir.ult(X, Y): int(a < b),
        ir.slt(X, Y): int(sa < sb),
        ir.not_(X): ~a & mask,
        ir.neg(X): -a & mask,
    }
    for expr, expected in cases.items():
        assert evaluate(expr, env) == expected


@given(a=st.integers(0, 0xFFFFFFFF), shift=st.integers(0, 63))
def test_shifts_match_python(a, shift):
    env = {"x": a}
    amount = ir.bv(32, shift)
    mask = 0xFFFFFFFF
    assert evaluate(ir.shl(X, amount), env) == \
        (0 if shift >= 32 else (a << shift) & mask)
    assert evaluate(ir.lshr(X, amount), env) == \
        (0 if shift >= 32 else a >> shift)
    signed = a - (1 << 32) if a >> 31 else a
    assert evaluate(ir.ashr(X, amount), env) == \
        (signed >> min(shift, 31)) & mask


@given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
def test_division_conventions(a, b):
    env = {"x": a, "y": b}
    mask = 0xFFFFFFFF
    if b == 0:
        assert evaluate(ir.udiv(X, Y), env) == mask
        assert evaluate(ir.urem(X, Y), env) == a
    else:
        assert evaluate(ir.udiv(X, Y), env) == a // b
        assert evaluate(ir.urem(X, Y), env) == a % b
        sa = a - (1 << 32) if a >> 31 else a
        sb = b - (1 << 32) if b >> 31 else b
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        assert evaluate(ir.sdiv(X, Y), env) == quotient & mask
        assert evaluate(ir.srem(X, Y), env) == (sa - quotient * sb) & mask
