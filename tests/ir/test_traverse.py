"""variables / substitute / expr_size."""

from repro import ir
from repro.ir.traverse import expr_size, map_symbols, substitute, variables


X = ir.sym(32, "x")
Y = ir.sym(8, "y")


class TestVariables:
    def test_collects_names_and_widths(self):
        expr = ir.add(X, ir.zext(32, Y))
        assert variables(expr) == {"x": 32, "y": 8}

    def test_constant_has_no_variables(self):
        assert variables(ir.bv(32, 7)) == {}

    def test_shared_subtree_counted_once(self):
        shared = ir.add(X, X)
        assert variables(shared) == {"x": 32}


class TestSubstitute:
    def test_replaces_symbol(self):
        expr = ir.add(X, ir.bv(32, 1))
        result = substitute(expr, {"x": ir.bv(32, 41)})
        assert result == ir.bv(32, 42)

    def test_partial_substitution(self):
        expr = ir.add(X, ir.sym(32, "k"))
        result = substitute(expr, {"k": ir.bv(32, 0)})
        assert result is X  # folding through smart constructors

    def test_symbol_for_symbol(self):
        expr = ir.mul(X, X)
        renamed = substitute(expr, {"x": ir.sym(32, "w")})
        assert variables(renamed) == {"w": 32}

    def test_map_symbols(self):
        expr = ir.add(X, ir.zext(32, Y))
        renamed = map_symbols(expr, lambda name: f"g_{name}")
        assert set(variables(renamed)) == {"g_x", "g_y"}


class TestExprSize:
    def test_counts_distinct_nodes(self):
        expr = ir.add(X, ir.bv(32, 1))
        assert expr_size(expr) == 3

    def test_shared_nodes_counted_once(self):
        node = ir.add(X, ir.bv(32, 1))
        expr = ir.mul(node, node)
        assert expr_size(expr) == 4
