"""bench_compare: tolerance bands, provenance annotation, verdicts."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / \
    "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules["bench_compare"] = bench_compare
_spec.loader.exec_module(bench_compare)


def _payload(**overrides) -> dict:
    payload = {
        "bench": "learning_throughput",
        "cpus": 4,
        "jobs": 4,
        "rules": 128,
        "sequential": {
            "candidates_per_second": 500.0,
            "verify_calls": 488,
            "dedup_saved_calls": 171,
        },
        "warm_cache": {
            "candidates_per_second": 3200.0,
            "verify_calls": 0,
            "hit_rate": 1.0,
            "speedup_over_cold": 6.8,
        },
        "parallel": {"speedup_over_sequential": 2.5},
    }
    for path, value in overrides.items():
        node = payload
        parts = path.split(".")
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = value
    return payload


def _verdicts(results) -> dict:
    return {r["metric"]: r["verdict"] for r in results if r["metric"]}


class TestCompare:
    def test_identity_is_clean(self):
        results = bench_compare.compare(_payload(), _payload())
        assert set(_verdicts(results).values()) == {"ok"}

    def test_within_band_is_ok(self):
        candidate = _payload(**{
            "sequential.candidates_per_second": 400.0  # -20% < 30% band
        })
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["sequential.candidates_per_second"] == "ok"

    def test_past_band_regresses(self):
        candidate = _payload(**{
            "sequential.candidates_per_second": 300.0  # -40% > 30% band
        })
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["sequential.candidates_per_second"] == \
            "regression"

    def test_zero_tolerance_counter_regresses_on_any_increase(self):
        candidate = _payload(**{"sequential.verify_calls": 489})
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["sequential.verify_calls"] == "regression"

    def test_improvement_is_reported_not_failed(self):
        candidate = _payload(**{"sequential.verify_calls": 400})
        results = bench_compare.compare(_payload(), candidate)
        assert _verdicts(results)["sequential.verify_calls"] == \
            "improved"
        assert not [r for r in results
                    if r["verdict"] == "regression"]

    def test_vanished_metric_is_a_regression(self):
        candidate = _payload()
        del candidate["parallel"]
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["parallel.speedup_over_sequential"] == \
            "regression"

    def test_metric_new_in_candidate_is_skipped(self):
        baseline = _payload()
        del baseline["warm_cache"]["hit_rate"]
        verdicts = _verdicts(bench_compare.compare(baseline, _payload()))
        assert verdicts["warm_cache.hit_rate"] == "skipped"

    def test_unknown_bench_is_skipped(self):
        (result,) = bench_compare.compare(
            {"bench": "mystery"}, {"bench": "mystery"}
        )
        assert result["verdict"] == "skipped"


class TestOversubscriptionAnnotation:
    def test_oversubscribed_speedup_annotates_not_fails(self):
        baseline = _payload(**{"parallel.speedup_over_sequential": 2.5})
        candidate = _payload(**{
            "cpus": 1, "jobs": 2,
            "parallel.speedup_over_sequential": 0.7,
        })
        results = bench_compare.compare(baseline, candidate)
        verdicts = _verdicts(results)
        assert verdicts["parallel.speedup_over_sequential"] == \
            "annotated"
        (row,) = [r for r in results
                  if r["metric"] == "parallel.speedup_over_sequential"]
        assert "oversubscribed" in row["note"]

    def test_wellprovisioned_speedup_collapse_still_fails(self):
        candidate = _payload(**{
            "parallel.speedup_over_sequential": 0.7
        })
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["parallel.speedup_over_sequential"] == \
            "regression"

    def test_other_metrics_not_excused_by_oversubscription(self):
        candidate = _payload(**{
            "cpus": 1, "jobs": 2, "sequential.verify_calls": 600
        })
        verdicts = _verdicts(bench_compare.compare(_payload(), candidate))
        assert verdicts["sequential.verify_calls"] == "regression"


class TestCli:
    @pytest.fixture()
    def baseline_path(self, tmp_path):
        path = tmp_path / "BENCH_learning.json"
        path.write_text(json.dumps(_payload()))
        return path

    def test_identity_exits_zero(self, baseline_path, capsys):
        assert bench_compare.main([
            "--baseline", str(baseline_path),
            "--candidate", str(baseline_path),
        ]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, baseline_path,
                                               tmp_path, capsys):
        tampered = _payload(**{"sequential.verify_calls": 600})
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(tampered))
        assert bench_compare.main([
            "--baseline", str(baseline_path),
            "--candidate", str(candidate),
        ]) == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_json_verdict_shape(self, baseline_path, tmp_path, capsys):
        tampered = _payload(**{"rules": 100})
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(tampered))
        assert bench_compare.main([
            "--baseline", str(baseline_path),
            "--candidate", str(candidate), "--json",
        ]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert verdict["regressions"] == 1
        assert any(r["metric"] == "rules"
                   and r["verdict"] == "regression"
                   for r in verdict["results"])

    def test_dir_mode_pairs_by_name(self, tmp_path, capsys):
        baseline_dir = tmp_path / "base"
        candidate_dir = tmp_path / "fresh"
        baseline_dir.mkdir()
        candidate_dir.mkdir()
        (baseline_dir / "BENCH_learning.json").write_text(
            json.dumps(_payload())
        )
        (candidate_dir / "BENCH_learning.json").write_text(
            json.dumps(_payload())
        )
        # A baseline with no fresh counterpart is simply not compared.
        (baseline_dir / "BENCH_other.json").write_text("{}")
        assert bench_compare.main([
            "--baseline-dir", str(baseline_dir),
            "--candidate-dir", str(candidate_dir),
        ]) == 0
        assert "1 payload(s)" in capsys.readouterr().out

    def test_no_pairs_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert bench_compare.main([
            "--baseline-dir", str(empty),
            "--candidate-dir", str(empty),
        ]) == 2
        assert "no baseline/candidate" in capsys.readouterr().err

    def test_committed_baseline_vs_itself_is_clean(self, capsys):
        root = Path(__file__).resolve().parents[2]
        baseline = root / "BENCH_learning.json"
        assert bench_compare.main([
            "--baseline", str(baseline), "--candidate", str(baseline),
        ]) == 0
