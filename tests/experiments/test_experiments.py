"""Experiment harness smoke tests on a reduced benchmark subset.

The full regenerations live in benchmarks/; here a two-benchmark
context checks the plumbing cheaply.
"""

import pytest

from repro.experiments import fig8, fig10, fig11, fig12, table1
from repro.experiments.common import (
    ExperimentContext,
    geometric_mean,
    render_table,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(benchmarks=("mcf", "libquantum"))


class TestContext:
    def test_builds_cached(self, context):
        first = context.build("mcf", "arm")
        assert context.build("mcf", "arm") is first

    def test_leave_one_out_excludes_self(self, context):
        store = context.rule_store_excluding("mcf")
        assert all(rule.origin != "mcf" for rule in store.all_rules())

    def test_runs_cached_and_consistent(self, context):
        first = context.run("mcf", "qemu", "test")
        assert context.run("mcf", "qemu", "test") is first

    def test_modes_agree_on_result(self, context):
        qemu = context.run("mcf", "qemu", "test")
        rules = context.run("mcf", "rules", "test")
        assert qemu.return_value == rules.return_value


class TestFigures:
    def test_table1(self, context):
        result = table1.run(context)
        assert set(result.reports) == {"mcf", "libquantum"}
        text = table1.render(result)
        assert "mcf" in text and "TOTAL" in text

    def test_fig8_speedups_positive(self, context):
        result = fig8.run(context)
        for per_bench in result.speedups.values():
            for value in per_bench.values():
                assert value > 0
        assert "GEOMEAN" in fig8.render(result)

    def test_fig10_reduction(self, context):
        result = fig10.run(context)
        assert set(result.reductions) == {"mcf", "libquantum"}
        assert all(-1 < frac < 1 for frac in result.reductions.values())

    def test_fig11_coverage(self, context):
        result = fig11.run(context)
        for static, dynamic in result.coverage.values():
            assert 0 <= static <= 1
            assert 0 <= dynamic <= 1

    def test_fig12_lengths(self, context):
        result = fig12.run(context)
        for dist in result.distributions.values():
            assert all(length >= 1 for length in dist)


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[2:])


class TestCli:
    def test_cli_runs_one_experiment(self, capsys, monkeypatch):
        import repro.experiments.cli as cli
        import repro.experiments.common as common

        monkeypatch.setattr(
            common, "_SHARED", ExperimentContext(benchmarks=("mcf",))
        )
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
