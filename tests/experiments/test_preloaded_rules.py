"""Pre-learned rule repositories on the experiment harness.

The ``repro-experiments --rules`` path: a context fed with serialized
rules must reproduce the leave-one-out evaluation without running the
learning pipeline at all.
"""

import pytest

from repro.experiments.common import ExperimentContext
from repro.learning.serialize import dumps_rules, loads_rules

BENCHMARKS = ("mcf", "libquantum")


@pytest.fixture(scope="module")
def exported():
    """Rules learned once and round-tripped through the JSON codec.

    One copy per (rule, origin) — a rule learned from several
    benchmarks must survive leave-one-out exclusion of any single
    one, so the export is deliberately not deduped across origins.
    """
    context = ExperimentContext(benchmarks=BENCHMARKS)
    outcomes = context.all_learning()
    rules = [
        rule for outcome in outcomes.values() for rule in outcome.rules
    ]
    return loads_rules(dumps_rules(rules))


class TestPreloadedRules:
    def test_no_learning_happens(self, exported):
        context = ExperimentContext(benchmarks=BENCHMARKS,
                                    preloaded_rules=list(exported))
        store = context.rule_store_excluding("mcf")
        assert len(store) > 0
        assert context._learning == {}

    def test_leave_one_out_respects_serialized_origin(self, exported):
        context = ExperimentContext(benchmarks=BENCHMARKS,
                                    preloaded_rules=list(exported))
        for excluded in BENCHMARKS:
            store = context.rule_store_excluding(excluded)
            assert all(rule.origin != excluded
                       for rule in store.all_rules())

    def test_preloaded_run_matches_inline_learning(self, exported):
        inline = ExperimentContext(benchmarks=BENCHMARKS)
        preloaded = ExperimentContext(benchmarks=BENCHMARKS,
                                      preloaded_rules=list(exported))
        for name in BENCHMARKS:
            a = inline.run(name, "rules", "test")
            b = preloaded.run(name, "rules", "test")
            assert a.return_value == b.return_value
            assert a.stats.dynamic_coverage == \
                pytest.approx(b.stats.dynamic_coverage)

    def test_export_import_is_lossless(self, exported):
        again = loads_rules(dumps_rules(list(exported)))
        assert again == list(exported)


class TestCliFlags:
    def test_rules_flag_loads_and_export_writes(self, tmp_path):
        from repro.experiments import cli as experiments_cli
        from repro.experiments import common as experiments_common

        rules_path = tmp_path / "rules.json"
        # isolate the module-global shared context
        previous = experiments_common._SHARED
        experiments_common._SHARED = None
        try:
            experiments_common.shared_context().benchmarks = BENCHMARKS
            assert experiments_cli.main([
                "fig11", "--no-cache", "--export-rules", str(rules_path),
            ]) == 0
            exported = loads_rules(rules_path.read_text())
            assert exported

            experiments_common._SHARED = None
            fresh = experiments_common.shared_context()
            fresh.benchmarks = BENCHMARKS
            assert experiments_cli.main([
                "fig11", "--no-cache", "--rules", str(rules_path),
            ]) == 0
            assert fresh.preloaded_rules is not None
            assert fresh._learning == {}
        finally:
            experiments_common._SHARED = previous
