"""Symbolic execution engine: states, shared memory, snippet runs."""

import pytest

from repro import ir
from repro.guest_arm import execute as execute_arm
from repro.guest_arm import parse_instruction as parse_arm
from repro.host_x86 import execute as execute_x86
from repro.host_x86 import parse_instruction as parse_x86
from repro.solver import prove_equal
from repro.symexec import (
    SharedSymbolicMemory,
    SymbolicExecutionError,
    SymbolicState,
    run_snippet,
)


P0 = ir.sym(32, "p0")
P1 = ir.sym(32, "p1")


class TestState:
    def test_fresh_register_gets_prefixed_symbol(self):
        state = SymbolicState("g")
        value = state.get_reg("r3")
        assert value == ir.sym(32, "g_r3")

    def test_seeded_register(self):
        state = SymbolicState("g", {"r0": P0})
        assert state.get_reg("r0") is P0

    def test_written_registers_tracked_in_order(self):
        state = SymbolicState("g")
        state.set_reg("r1", P0)
        state.set_reg("r0", P1)
        state.set_reg("r1", P1)
        assert state.written_regs == ("r1", "r0")

    def test_flags_are_one_bit_symbols(self):
        state = SymbolicState("h")
        assert state.get_flag("ZF").width == 1

    def test_reg_value_does_not_record_read(self):
        state = SymbolicState("g", {"r0": P0})
        state.reg_value("r0")
        assert state.read_regs == ()


class TestSharedMemory:
    def test_same_canonical_address_same_symbol(self):
        memory = SharedSymbolicMemory()
        guest = SymbolicState("g", {"r0": P0}, memory)
        host = SymbolicState("h", {"eax": P0}, memory)
        # Same symbolic address (p0 + 4) spelled differently:
        a1 = ir.add(P0, ir.bv(32, 4))
        a2 = ir.sub(P0, ir.bv(32, -4))
        assert guest.load(a1, 4) == host.load(a2, 4)

    def test_different_addresses_different_symbols(self):
        memory = SharedSymbolicMemory()
        state = SymbolicState("g", {}, memory)
        assert state.load(P0, 4) != state.load(P1, 4)

    def test_sizes_keyed_separately(self):
        memory = SharedSymbolicMemory()
        state = SymbolicState("g", {}, memory)
        assert state.load(P0, 4) != state.load(P0, 1)

    def test_read_your_own_write(self):
        state = SymbolicState("g", {}, SharedSymbolicMemory())
        state.store(P0, P1, 4)
        assert state.load(P0, 4) is P1

    def test_writes_not_visible_across_states(self):
        memory = SharedSymbolicMemory()
        writer = SymbolicState("g", {}, memory)
        reader = SymbolicState("h", {}, memory)
        writer.store(P0, P1, 4)
        assert reader.load(P0, 4) != P1

    def test_final_stores_keeps_last(self):
        state = SymbolicState("g", {}, SharedSymbolicMemory())
        state.store(P0, P1, 4)
        state.store(P0, ir.bv(32, 9), 4)
        stores = state.final_stores()
        assert list(stores.values()) == [ir.bv(32, 9)]


class TestRunSnippet:
    def test_figure1_register_result(self):
        memory = SharedSymbolicMemory()
        guest = SymbolicState("g", {"r0": P1, "r1": P0}, memory)
        host = SymbolicState("h", {"eax": P1, "edx": P0}, memory)
        run_snippet(
            [parse_arm("add r1, r1, r0"), parse_arm("sub r1, r1, #1")],
            execute_arm, guest,
        )
        run_snippet(
            [parse_x86("leal -1(%edx,%eax), %edx")], execute_x86, host
        )
        assert prove_equal(guest.reg_value("r1"), host.reg_value("edx"))

    def test_branch_condition_captured(self):
        state = SymbolicState("g", {"r0": P0, "r1": P1},
                              SharedSymbolicMemory())
        result = run_snippet(
            [parse_arm("cmp r0, r1"), parse_arm("bne .L")],
            execute_arm, state,
        )
        assert result.branch_cond is not None
        assert result.branch_target == ".L"
        assert result.mid_branches == 0

    def test_mid_branch_counted(self):
        state = SymbolicState("g", {}, SharedSymbolicMemory())
        result = run_snippet(
            [parse_arm("b .skip"), parse_arm("mov r0, #1")],
            execute_arm, state,
        )
        assert result.mid_branches == 1

    def test_semantics_error_wrapped(self):
        state = SymbolicState("g", {}, SharedSymbolicMemory())
        from repro.isa.instruction import Instruction

        bogus = Instruction("add", ())  # malformed operand list
        with pytest.raises(SymbolicExecutionError):
            run_snippet([bogus], execute_arm, state)

    def test_recorded_store_addresses_use_value_at_access_time(self):
        """Section 3.3: address registers modified after a store must
        not change the recorded location."""
        state = SymbolicState("g", {"r1": P0, "r0": P1},
                              SharedSymbolicMemory())
        run_snippet(
            [parse_arm("str r0, [r1]"), parse_arm("add r1, r1, #4")],
            execute_arm, state,
        )
        (store,) = state.stores
        assert store.addr is P0  # not p0 + 4
