"""TAC IR plumbing: uses/replace_uses, addresses, rendering."""

from repro.minic.tac import GlobalData, Instr, TacFunction, TacProgram, TAddr


class TestTAddr:
    def test_values(self):
        addr = TAddr(base="%a", index="%b", scale=4, disp=8)
        assert addr.values() == ("%a", "%b")

    def test_with_disp(self):
        addr = TAddr(symbol="slot", disp=4)
        assert addr.with_disp(12).disp == 12
        assert addr.disp == 4  # original untouched

    def test_str_forms(self):
        assert str(TAddr(symbol="g", disp=4)) == "[g+4]"
        assert str(TAddr(base="%a", index="%i", scale=4)) == "[%a+%i*4]"


class TestInstrUses:
    def test_bin_uses(self):
        instr = Instr(op="bin", line=1, dest="%d", bin_op="+", a="%x", b=3)
        assert instr.uses() == ("%x",)

    def test_addr_registers_used(self):
        instr = Instr(op="load", line=1, dest="%d",
                      addr=TAddr(base="%p", index="%i", scale=4))
        assert set(instr.uses()) == {"%p", "%i"}

    def test_call_args_used(self):
        instr = Instr(op="call", line=1, dest="%d", name="f",
                      args=("%a", 7, "%b"))
        assert instr.uses() == ("%a", "%b")

    def test_select_uses_all(self):
        instr = Instr(op="select", line=1, dest="%d", bin_op="<",
                      a="%c1", b="%c2", tval="%t", fval="%f")
        assert set(instr.uses()) == {"%c1", "%c2", "%t", "%f"}

    def test_replace_uses_rewrites_values(self):
        instr = Instr(op="bin", line=1, dest="%d", bin_op="+",
                      a="%x", b="%y")
        instr.replace_uses({"%x": "%z", "%y": 9})
        assert instr.a == "%z"
        assert instr.b == 9

    def test_replace_uses_folds_constant_base(self):
        instr = Instr(op="load", line=1, dest="%d",
                      addr=TAddr(base="%p", disp=4))
        instr.replace_uses({"%p": 0x1000})
        assert instr.addr.base is None
        assert instr.addr.disp == 0x1004

    def test_replace_uses_folds_constant_index(self):
        instr = Instr(op="load", line=1, dest="%d",
                      addr=TAddr(base="%p", index="%i", scale=4, disp=4))
        instr.replace_uses({"%i": 3})
        assert instr.addr.index is None
        assert instr.addr.disp == 16


class TestContainers:
    def test_temp_and_label_names_unique(self):
        func = TacFunction("f", params=[])
        names = {func.new_temp() for _ in range(10)}
        labels = {func.new_label() for _ in range(10)}
        assert len(names) == 10
        assert len(labels) == 10

    def test_program_dump_readable(self):
        program = TacProgram()
        func = TacFunction("f", params=["%a0"])
        func.instrs.append(Instr(op="ret", line=1, a="%a0"))
        program.functions["f"] = func
        program.globals["g"] = GlobalData("g", 4, 4, [1])
        text = program.dump()
        assert "func f(%a0):" in text
        assert "ret %a0" in text

    def test_instr_str_forms(self):
        cases = [
            (Instr(op="const", line=1, dest="%d", a=5), "%d = 5"),
            (Instr(op="bin", line=1, dest="%d", bin_op="*", a="%x", b=2),
             "%d = %x * 2"),
            (Instr(op="jmp", line=1, label=".L"), "jmp .L"),
            (Instr(op="cbr", line=1, bin_op="<", a="%x", b=0,
                   label=".t", label2=".f"),
             "if %x < 0 goto .t else .f"),
        ]
        for instr, expected in cases:
            assert str(instr) == expected
