"""The hand-written ARM division runtime, exhaustively-ish."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbt.direct import run_arm_program
from repro.minic import compile_source


def _divmod_program(a: int, b: int) -> str:
    return f"""
int main(void) {{
  int a = {a};
  int b = {b};
  int q = a / b;
  int r = a % b;
  return (q & 0xffff) * 65536 + (r & 0xffff);
}}
"""


def _expected(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    remainder = a - quotient * b
    return ((quotient & 0xFFFF) * 65536 + (remainder & 0xFFFF)) & 0xFFFFFFFF


@pytest.mark.parametrize("a,b", [
    (0, 1), (1, 1), (7, 2), (100, 7), (-100, 7), (100, -7), (-100, -7),
    (2147483647, 2), (-2147483647, 3), (1, 1000000), (999, 1000),
])
def test_division_corner_cases(a, b):
    program = compile_source(_divmod_program(a, b), "arm", 0, "llvm")
    assert run_arm_program(program).return_value == _expected(a, b)


@settings(max_examples=25, deadline=None)
@given(
    a=st.integers(-(2**31) + 1, 2**31 - 1),
    b=st.integers(-(2**31) + 1, 2**31 - 1).filter(lambda v: v != 0),
)
def test_division_random(a, b):
    program = compile_source(_divmod_program(a, b), "arm", 0, "llvm")
    assert run_arm_program(program).return_value == _expected(a, b)


def test_runtime_is_hand_written_assembly():
    """The helpers must stay source-line-free (no rules can be learned
    from them — the omnetpp effect depends on it)."""
    program = compile_source("int main(void) { return 9 / 3; }", "arm")
    for name in ("__aeabi_idiv", "__aeabi_idivmod"):
        func = program.functions[name]
        assert all(instr.line is None for instr in func.instrs)
