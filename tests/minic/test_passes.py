"""Optimization passes: semantics preservation + specific transforms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program


def _outputs(source: str) -> list[int]:
    results = []
    for level in range(4):
        tac = lower_program(parse(source))
        optimize_program(tac, level)
        results.append(run_tac(tac) & 0xFFFFFFFF)
    return results


class TestSemanticPreservation:
    SOURCES = [
        # mem2reg + folding
        "int main(void) { int a = 3; int b = a * 4; return b - a; }",
        # strength reduction: signed division by power of two, negatives
        "int main(void) { int x = -13; return x / 4 * 1000 + x % 4; }",
        # if-conversion shapes
        """int main(void) {
             int best = 0;
             for (int i = 0; i < 20; ++i) {
               int c = (i * 7) % 11;
               if (c > best) best = c;
               if (c == 3) { best += 100; } else { best += 1; }
             }
             return best;
           }""",
        # boolean materialization
        "int main(void) { int a = 5; int b = (a > 3) + (a < 3); return b; }",
        # CSE candidates
        """int a[4];
           int main(void) {
             a[1] = 7;
             return a[1] * a[1] + a[1];
           }""",
        # abs via one-sided if (speculated select)
        """int main(void) {
             int d = -42;
             if (d < 0) { d = 0 - d; }
             return d;
           }""",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_all_levels_agree(self, source):
        results = _outputs(source)
        assert len(set(results)) == 1, results


class TestSpecificTransforms:
    def test_mem2reg_removes_scalar_slots(self):
        tac = lower_program(parse(
            "int main(void) { int a = 1; int b = a + 2; return b; }"
        ))
        optimize_program(tac, 1)
        func = tac.functions["main"]
        assert not func.slots  # all scalars promoted

    def test_address_taken_scalar_stays_in_memory(self):
        tac = lower_program(parse(
            "int main(void) { int a = 1; int *p = &a; *p = 3; return a; }"
        ))
        optimize_program(tac, 1)
        assert len(tac.functions["main"].slots) == 1

    def test_arrays_never_promoted(self):
        tac = lower_program(parse(
            "int main(void) { int a[4]; a[0] = 1; return a[0]; }"
        ))
        optimize_program(tac, 2)
        assert len(tac.functions["main"].slots) == 1

    def test_constant_folding(self):
        tac = lower_program(parse("int main(void) { return 6 * 7; }"))
        optimize_program(tac, 1)
        instrs = tac.functions["main"].instrs
        assert any(i.op == "ret" and i.a == 42 for i in instrs)

    def test_mul_by_power_of_two_becomes_shift(self):
        tac = lower_program(parse(
            "int f(int x) { return x * 8; } int main(void) { return f(1); }"
        ))
        optimize_program(tac, 2)
        ops = [(i.op, i.bin_op) for i in tac.functions["f"].instrs]
        assert ("bin", "<<") in ops
        assert ("bin", "*") not in ops

    def test_sdiv_by_power_of_two_expanded(self):
        tac = lower_program(parse(
            "int f(int x) { return x / 4; } int main(void) { return f(8); }"
        ))
        optimize_program(tac, 2)
        ops = [(i.op, i.bin_op) for i in tac.functions["f"].instrs]
        assert ("bin", "/") not in ops
        assert ("bin", "u>>") in ops  # the bias sequence

    def test_if_conversion_produces_select(self):
        tac = lower_program(parse("""
            int f(int a, int b) {
              int r;
              if (a < b) { r = 1; } else { r = 2; }
              return r;
            }
            int main(void) { return f(1, 2); }
        """))
        optimize_program(tac, 2)
        assert any(i.op == "select" for i in tac.functions["f"].instrs)

    def test_no_select_at_o1(self):
        tac = lower_program(parse("""
            int f(int a, int b) {
              int r;
              if (a < b) { r = 1; } else { r = 2; }
              return r;
            }
            int main(void) { return f(1, 2); }
        """))
        optimize_program(tac, 1)
        assert not any(i.op == "select" for i in tac.functions["f"].instrs)

    def test_dead_code_removed(self):
        tac = lower_program(parse(
            "int main(void) { int unused = 3 * 14; return 1; }"
        ))
        optimize_program(tac, 1)
        instrs = tac.functions["main"].instrs
        assert all(i.op in ("ret",) for i in instrs)

    def test_copy_coalescing_shrinks(self):
        source = """
        int f(int s, int x) { s = s + x - 1; return s; }
        int main(void) { return f(10, 5); }
        """
        tac1 = lower_program(parse(source))
        optimize_program(tac1, 0)
        tac2 = lower_program(parse(source))
        optimize_program(tac2, 2)
        assert len(tac2.functions["f"].instrs) < \
            len(tac1.functions["f"].instrs)


@st.composite
def arith_program(draw):
    """Random straight-line arithmetic over three locals."""
    lines = ["int a = %d;" % draw(st.integers(-100, 100)),
             "int b = %d;" % draw(st.integers(-100, 100)),
             "int c = 1;"]
    variables = ["a", "b", "c"]
    for _ in range(draw(st.integers(1, 8))):
        dest = draw(st.sampled_from(variables))
        lhs = draw(st.sampled_from(variables))
        rhs = draw(st.sampled_from(variables + ["3", "7"]))
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<"]))
        if op == "<<":
            rhs = str(draw(st.integers(0, 8)))
        lines.append(f"{dest} = {lhs} {op} {rhs};")
    body = "\n  ".join(lines)
    return f"int main(void) {{\n  {body}\n  return a ^ b ^ c;\n}}"


@settings(max_examples=60, deadline=None)
@given(source=arith_program())
def test_random_programs_agree_across_levels(source):
    results = _outputs(source)
    assert len(set(results)) == 1, (source, results)
