"""Backend correctness: compiled ARM/x86 output vs. the TAC oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dbt.direct import run_arm_program, run_x86_program
from repro.minic import compile_source
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program


def oracle(source: str, level: int = 2) -> int:
    tac = lower_program(parse(source))
    optimize_program(tac, level)
    return run_tac(tac) & 0xFFFFFFFF


def check_all(source: str, levels=(0, 1, 2, 3), styles=("llvm", "gcc")):
    for level in levels:
        expected = oracle(source, level)
        for style in styles:
            arm = compile_source(source, "arm", level, style)
            assert run_arm_program(arm).return_value == expected, \
                (level, style, "arm")
            x86 = compile_source(source, "x86", level, style)
            assert run_x86_program(x86).return_value == expected, \
                (level, style, "x86")


class TestPrograms:
    def test_loops_and_arrays(self):
        check_all("""
        int a[16];
        int main(void) {
          int i = 0;
          while (i < 16) { a[i] = i * 3; i += 1; }
          int s = 0;
          i = 0;
          while (i < 16) { s += a[i]; i += 1; }
          return s;
        }
        """)

    def test_calls_and_callee_saved(self):
        check_all("""
        int mix(int a, int b) { return a * 31 + b; }
        int main(void) {
          int x = 3;
          int y = 5;
          int z = mix(x, y);
          // x and y must survive the call
          return z + x * 100 + y * 10;
        }
        """)

    def test_division_via_runtime(self):
        check_all("""
        int main(void) {
          int total = 0;
          int i = 1;
          while (i < 30) {
            total += 1000 / i + 1000 % i;
            i += 1;
          }
          return total;
        }
        """)

    def test_negative_division(self):
        check_all("""
        int main(void) {
          int a = -17;
          int b = 5;
          return (a / b) * 1000 + (a % b) + 500;
        }
        """)

    def test_char_buffers(self):
        check_all("""
        char buf[32];
        int main(void) {
          int i = 0;
          while (i < 32) { buf[i] = (i * 7) & 255; i += 1; }
          int s = 0;
          i = 0;
          while (i < 32) { s += buf[i]; i += 1; }
          return s;
        }
        """)

    def test_four_arguments(self):
        check_all("""
        int f(int a, int b, int c, int d) { return a + b * 2 + c * 3 + d * 4; }
        int main(void) { return f(1, 2, 3, 4); }
        """)

    def test_deep_recursion_uses_stack(self):
        check_all("""
        int down(int n) {
          if (n == 0) { return 0; }
          return down(n - 1) + n;
        }
        int main(void) { return down(200); }
        """, levels=(0, 2))

    def test_shifts_by_variable(self):
        check_all("""
        int main(void) {
          int total = 0;
          int k = 0;
          while (k < 32) {
            total ^= (0x9e3779b9 >> k) + (1 << k);
            k += 1;
          }
          return total;
        }
        """, levels=(2,))

    def test_conditional_select_paths(self):
        check_all("""
        int clamp(int x, int lo, int hi) {
          if (x < lo) { x = lo; }
          if (x > hi) { x = hi; }
          return x;
        }
        int main(void) {
          return clamp(-5, 0, 10) + clamp(5, 0, 10) * 10
               + clamp(50, 0, 10) * 100;
        }
        """)

    def test_register_pressure_forces_spills(self):
        # 10 simultaneously-live values exceed both register files.
        check_all("""
        int main(void) {
          int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
          int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
          int k = a + b; int l = c + d; int m = e + f; int n = g + h;
          int o = i + j;
          return (a*b + c*d + e*f + g*h + i*j) ^ (k + l*2 + m*3 + n*4 + o*5);
        }
        """, levels=(2,))


@st.composite
def looped_program(draw):
    iterations = draw(st.integers(1, 12))
    seed = draw(st.integers(1, 10_000))
    op = draw(st.sampled_from(["+", "^", "*"]))
    shift = draw(st.integers(0, 4))
    return f"""
int main(void) {{
  int acc = {seed};
  int i = 0;
  while (i < {iterations}) {{
    acc = acc {op} (i << {shift});
    acc = acc + (acc >> 3);
    i += 1;
  }}
  return acc;
}}
"""


@settings(max_examples=25, deadline=None)
@given(source=looped_program())
def test_random_loops_match_oracle(source):
    expected = oracle(source, 2)
    arm = compile_source(source, "arm", 2, "llvm")
    x86 = compile_source(source, "x86", 2, "gcc")
    assert run_arm_program(arm).return_value == expected
    assert run_x86_program(x86).return_value == expected
