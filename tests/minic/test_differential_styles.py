"""Style/level differential matrix on randomized programs.

Compiles hypothesis-generated programs under every (target, level,
style) combination and checks all sixteen against the TAC oracle —
the broad safety net for compiler changes.
"""

from hypothesis import given, settings, strategies as st

from repro.dbt.direct import run_arm_program, run_x86_program
from repro.minic import compile_source
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program


@st.composite
def program(draw):
    n = draw(st.integers(2, 10))
    seed = draw(st.integers(1, 1 << 16))
    use_call = draw(st.booleans())
    use_mem = draw(st.booleans())
    cond_op = draw(st.sampled_from(["<", ">", "==", "!="]))
    body_op = draw(st.sampled_from(["+", "-", "^", "&", "|"]))
    helper = """
int helper(int x, int y) {
  if (x < y) {
    x = x + y * 3;
  }
  return x - y;
}
""" if use_call else ""
    mem_decl = "int buf[8];\n" if use_mem else ""
    mem_write = "buf[i & 7] = acc;\n      acc += buf[(i + 3) & 7];" \
        if use_mem else ""
    call_line = "acc = helper(acc, i);" if use_call else ""
    return f"""
{mem_decl}{helper}
int main(void) {{
  int acc = {seed};
  int i = 0;
  while (i < {n}) {{
    acc = acc {body_op} (i << 1);
    if (acc {cond_op} 100) {{
      acc += 17;
    }}
    {mem_write}
    {call_line}
    i += 1;
  }}
  return acc;
}}
"""


@settings(max_examples=12, deadline=None)
@given(source=program())
def test_sixteen_configurations_agree(source):
    results = set()
    for level in (0, 1, 2, 3):
        tac = lower_program(parse(source))
        optimize_program(tac, level)
        results.add(run_tac(tac) & 0xFFFFFFFF)
    assert len(results) == 1, "oracle differs across levels"
    (expected,) = results
    for level in (0, 2):
        for style in ("llvm", "gcc"):
            arm = compile_source(source, "arm", level, style)
            assert run_arm_program(arm).return_value == expected, \
                ("arm", level, style)
            x86 = compile_source(source, "x86", level, style)
            assert run_x86_program(x86).return_value == expected, \
                ("x86", level, style)
