"""Register allocator unit tests on hand-built machine code."""

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.minic.backend.arm_backend import arm_imm_ok, target_info as arm_ti
from repro.minic.backend.mach import MachineFunction, rewrite_registers
from repro.minic.backend.regalloc import allocate
from repro.minic.backend.x86_backend import target_info as x86_ti


def instr(mnemonic, *ops, meta=None):
    return Instruction(mnemonic, tuple(ops), meta=meta)


class TestArmImmediates:
    def test_small_values_ok(self):
        assert arm_imm_ok(0)
        assert arm_imm_ok(255)

    def test_rotated_ok(self):
        assert arm_imm_ok(0xFF000000)
        assert arm_imm_ok(0x3FC00)

    def test_arbitrary_not_ok(self):
        assert not arm_imm_ok(0x12345678)
        assert not arm_imm_ok(257)


class TestRewriteRegisters:
    def test_plain_and_mem(self):
        original = instr(
            "movl", Mem(base=Reg("%a"), index=Reg("%b"), scale=4), Reg("%c")
        )
        rewritten = rewrite_registers(
            original, {"%a": "eax", "%b": "ecx", "%c": "edx"}
        )
        assert rewritten.operands[0] == Mem(Reg("eax"), Reg("ecx"), 4)
        assert rewritten.operands[1] == Reg("edx")

    def test_low8_follows_parent(self):
        original = instr("sete", Reg("%t.b"))
        rewritten = rewrite_registers(original, {"%t": "eax"})
        assert rewritten.operands[0] == Reg("al")

    def test_untouched_instruction_identical(self):
        original = instr("movl", Reg("eax"), Reg("edx"))
        assert rewrite_registers(original, {"%x": "ecx"}) is original


class TestAllocation:
    def test_simple_chain(self):
        func = MachineFunction("f", instrs=[
            instr("movl", Imm(1), Reg("%a")),
            instr("movl", Imm(2), Reg("%b")),
            instr("addl", Reg("%a"), Reg("%b")),
            instr("movl", Reg("%b"), Mem(base=None, disp=0x1000)),
        ])
        mapping = allocate(func, x86_ti("llvm"))
        assert set(mapping) == {"%a", "%b"}
        assert mapping["%a"] != mapping["%b"]

    def test_non_overlapping_reuse(self):
        func = MachineFunction("f", instrs=[
            instr("movl", Imm(1), Reg("%a")),
            instr("movl", Reg("%a"), Mem(base=None, disp=0x1000)),
            instr("movl", Imm(2), Reg("%b")),
            instr("movl", Reg("%b"), Mem(base=None, disp=0x1004)),
        ])
        mapping = allocate(func, x86_ti("llvm"))
        assert mapping["%a"] == mapping["%b"]  # intervals do not overlap

    def test_values_live_across_call_get_callee_saved(self):
        target = arm_ti("llvm")
        func = MachineFunction("f", instrs=[
            instr("mov", Reg("%x"), Imm(5)),
            instr("bl", Label("g"),
                  meta={"clobbers": ("r0", "r1", "r2", "r3", "r12")}),
            instr("add", Reg("%y"), Reg("%x"), Imm(1)),
            instr("mov", Reg("r0"), Reg("%y")),
        ])
        mapping = allocate(func, target)
        assert mapping["%x"] in target.callee_saved

    def test_spilling_when_out_of_registers(self):
        # 9 simultaneously live values on x86 (6 registers available).
        target = x86_ti("llvm")
        n = 9
        instrs = [instr("movl", Imm(i), Reg(f"%v{i}")) for i in range(n)]
        for i in range(n):
            instrs.append(
                instr("movl", Reg(f"%v{i}"), Mem(base=None, disp=0x1000 + 4 * i))
            )
        # Interleave so all are live at once: uses come after all defs.
        func = MachineFunction("f", instrs=instrs)
        mapping = allocate(func, target)
        # Spill code was inserted and everything got a register.
        assert func.spill_bytes > 0
        for i in func.instrs:
            for reg in i.registers():
                assert not reg.name.startswith("%"), i

    def test_low8_constraint_respected(self):
        target = x86_ti("llvm")
        func = MachineFunction("f", instrs=[
            instr("movl", Imm(0), Reg("%flag")),
            instr("sete", Reg("%flag.b"), meta={"needs_low8": ("%flag",)}),
            instr("movl", Reg("%flag"), Mem(base=None, disp=0x1000)),
        ])
        mapping = allocate(func, target)
        assert mapping["%flag"] in target.low8_regs

    def test_labels_updated_after_spill(self):
        target = x86_ti("llvm")
        n = 9
        instrs = [instr("movl", Imm(i), Reg(f"%v{i}")) for i in range(n)]
        for i in range(n):
            instrs.append(
                instr("movl", Reg(f"%v{i}"), Mem(base=None, disp=0x1000 + 4 * i))
            )
        instrs.append(instr("ret"))
        func = MachineFunction("f", instrs=instrs, labels={"end": len(instrs) - 1})
        allocate(func, target)
        assert func.instrs[func.labels["end"]].mnemonic == "ret"
