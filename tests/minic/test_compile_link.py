"""Compile driver: linking, addresses, global layout, options."""

import pytest

from repro.minic import CompileOptions, compile_source
from repro.minic.compile import CODE_BASE, GLOBAL_BASE


SOURCE = """
int first = 7;
char bytes[10];
int second[3] = {1, 2, 3};
int helper(int x) { return x + first; }
int main(void) { return helper(second[1]); }
"""


class TestOptions:
    def test_bad_target(self):
        with pytest.raises(ValueError):
            CompileOptions(target="mips")

    def test_bad_level(self):
        with pytest.raises(ValueError):
            CompileOptions(opt_level=5)

    def test_bad_style(self):
        with pytest.raises(ValueError):
            CompileOptions(style="icc")


class TestLinking:
    def test_every_function_has_an_entry_label(self):
        program = compile_source(SOURCE, "arm")
        for name in program.functions:
            assert name in program.labels

    def test_labels_unique_and_in_range(self):
        program = compile_source(SOURCE, "arm")
        positions = list(program.labels.values())
        assert all(0 <= p <= len(program.code) for p in positions)

    def test_function_of_index_consistent(self):
        program = compile_source(SOURCE, "arm")
        assert len(program.function_of_index) == len(program.code)
        start = program.labels["helper"]
        assert program.function_of_index[start] == "helper"

    def test_addr_roundtrip(self):
        program = compile_source(SOURCE, "arm")
        addr = program.addr_of("main")
        assert addr >= CODE_BASE
        assert program.index_of_addr(addr) == program.labels["main"]

    def test_bad_address_rejected(self):
        program = compile_source(SOURCE, "arm")
        with pytest.raises(ValueError):
            program.index_of_addr(CODE_BASE - 4)
        with pytest.raises(ValueError):
            program.index_of_addr(CODE_BASE + 2)  # misaligned

    def test_runtime_linked_for_arm_only(self):
        arm = compile_source(SOURCE, "arm")
        x86 = compile_source(SOURCE, "x86")
        assert "__aeabi_idivmod" in arm.functions
        assert "__aeabi_idivmod" not in x86.functions


class TestGlobals:
    def test_layout_word_aligned(self):
        program = compile_source(SOURCE, "arm")
        for addr in program.global_addrs.values():
            assert addr % 4 == 0
            assert addr >= GLOBAL_BASE

    def test_layout_disjoint(self):
        program = compile_source(SOURCE, "arm")
        spans = []
        for name, addr in program.global_addrs.items():
            size = program.globals[name].size
            spans.append((addr, addr + size))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_initial_memory_contents(self):
        program = compile_source(SOURCE, "arm")
        memory = program.initial_memory()
        first_addr = program.global_addrs["first"]
        assert memory[first_addr] == 7
        second_addr = program.global_addrs["second"]
        value = sum(memory.get(second_addr + 4 + i, 0) << (8 * i)
                    for i in range(4))
        assert value == 2

    def test_uninitialized_globals_zero(self):
        program = compile_source(SOURCE, "arm")
        bytes_addr = program.global_addrs["bytes"]
        memory = program.initial_memory()
        assert all(memory.get(bytes_addr + i, 0) == 0 for i in range(10))
