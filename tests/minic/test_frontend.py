"""MiniC lexer + parser + lowering + TAC interpreter."""

import pytest

from repro.minic.errors import ParseError, SemanticError
from repro.minic.interp import TacRuntimeError, run_tac
from repro.minic.lexer import tokenize
from repro.minic.lower import lower_program
from repro.minic.parser import parse


def run_source(source: str, entry: str = "main") -> int:
    return run_tac(lower_program(parse(source)), entry)


class TestLexer:
    def test_tokens_carry_lines(self):
        tokens = tokenize("int x;\nint y;\n")
        assert tokens[0].line == 1
        assert tokens[3].line == 2

    def test_comments_skipped(self):
        tokens = tokenize("// c\nint /* block\n comment */ x;")
        assert [t.text for t in tokens if t.kind != "eof"] == ["int", "x", ";"]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n' '\\0'")
        assert [t.value for t in tokens[:3]] == [97, 10, 0]

    def test_hex_literals(self):
        assert tokenize("0xFF")[0].value == 255

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("int @x;")


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main(void) { return 1 }")

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            lower_program(parse("int main(void) { return nope; }"))

    def test_redeclaration(self):
        with pytest.raises(SemanticError):
            lower_program(parse("int main(void) { int a; int a; return 0; }"))

    def test_call_arity_checked(self):
        source = "int f(int a) { return a; } int main(void) { return f(); }"
        with pytest.raises(SemanticError):
            lower_program(parse(source))

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            lower_program(parse("int main(void) { break; return 0; }"))


class TestSemantics:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 / 3", 3),
        ("-10 / 3", -3 & 0xFFFFFFFF),
        ("10 % 3", 1),
        ("-10 % 3", -1 & 0xFFFFFFFF),
        ("1 << 4", 16),
        ("-16 >> 2", -4 & 0xFFFFFFFF),
        ("6 & 3", 2),
        ("6 | 3", 7),
        ("6 ^ 3", 5),
        ("~0", 0xFFFFFFFF),
        ("!5", 0),
        ("!0", 1),
        ("3 < 4", 1),
        ("4 <= 4", 1),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("1 && 0", 0),
        ("1 || 0", 1),
    ])
    def test_expressions(self, expr, expected):
        assert run_source(f"int main(void) {{ return {expr}; }}") == expected

    def test_short_circuit_and(self):
        source = """
        int g;
        int bump(void) { g += 1; return 1; }
        int main(void) {
          int r = 0 && bump();
          return g * 10 + r;
        }
        """
        assert run_source(source) == 0

    def test_short_circuit_or(self):
        source = """
        int g;
        int bump(void) { g += 1; return 1; }
        int main(void) {
          int r = 1 || bump();
          return g * 10 + r;
        }
        """
        assert run_source(source) == 1

    def test_while_and_compound_assign(self):
        source = """
        int main(void) {
          int s = 0;
          int i = 0;
          while (i < 10) { s += i; i += 1; }
          return s;
        }
        """
        assert run_source(source) == 45

    def test_for_with_break_continue(self):
        source = """
        int main(void) {
          int s = 0;
          for (int i = 0; i < 100; ++i) {
            if (i == 50) { break; }
            if (i % 2 == 1) { continue; }
            s += i;
          }
          return s;
        }
        """
        assert run_source(source) == sum(range(0, 50, 2))

    def test_recursion(self):
        source = """
        int fact(int n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        int main(void) { return fact(10); }
        """
        assert run_source(source) == 3628800

    def test_mutual_recursion_without_prototypes(self):
        source = """
        int is_even(int n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        int is_odd(int n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        int main(void) { return is_even(10) * 10 + is_odd(7); }
        """
        assert run_source(source) == 11

    def test_global_arrays_and_pointers(self):
        source = """
        int a[8];
        int sum(int *p, int n) {
          int s = 0;
          int i = 0;
          while (i < n) { s += p[i]; i += 1; }
          return s;
        }
        int main(void) {
          int i = 0;
          while (i < 8) { a[i] = i * i; i += 1; }
          return sum(a, 8) + *(a + 2);
        }
        """
        assert run_source(source) == sum(i * i for i in range(8)) + 4

    def test_char_arrays_are_bytes(self):
        source = """
        char buf[4];
        int main(void) {
          buf[0] = 300;   // truncates to 44
          buf[1] = 'A';
          return buf[0] * 1000 + buf[1];
        }
        """
        assert run_source(source) == 44 * 1000 + 65

    def test_address_of_local(self):
        source = """
        int main(void) {
          int x = 5;
          int *p = &x;
          *p = *p + 37;
          return x;
        }
        """
        assert run_source(source) == 42

    def test_global_initializers(self):
        source = """
        int scalar = 7;
        int table[4] = {1, 2, 3, 4};
        int main(void) { return scalar * 100 + table[2]; }
        """
        assert run_source(source) == 703

    def test_division_by_zero_raises(self):
        with pytest.raises(TacRuntimeError):
            run_source("int main(void) { int z = 0; return 5 / z; }")

    def test_signed_wraparound(self):
        assert run_source(
            "int main(void) { int x = 2147483647; return x + 1; }"
        ) == 0x80000000
