"""The statement-per-line reformatter and its effect on learning."""

from repro.learning import learn_rules
from repro.minic import compile_source
from repro.minic.format import format_source
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program


def oracle(source: str) -> int:
    tac = lower_program(parse(source))
    optimize_program(tac, 2)
    return run_tac(tac) & 0xFFFFFFFF


PACKED = (
    "int a[4]; int main(void) { int s = 0; int i = 0; "
    "while (i < 4) { a[i] = i * 3; s += a[i]; i += 1; } return s; }"
)


class TestFormatting:
    def test_semantics_preserved(self):
        assert oracle(format_source(PACKED)) == oracle(PACKED)

    def test_one_statement_per_line(self):
        formatted = format_source(PACKED)
        for line in formatted.splitlines():
            body = line.strip()
            if body in ("{", "}") or body.endswith("{"):
                continue
            # At most one statement terminator outside for-headers.
            assert body.count(";") <= 1 or body.startswith("for"), line

    def test_for_header_kept_on_one_line(self):
        formatted = format_source(
            "int main(void) { int s = 0; "
            "for (int i = 0; i < 3; ++i) { s += i; } return s; }"
        )
        header_lines = [l for l in formatted.splitlines() if "for" in l]
        assert len(header_lines) == 1
        assert header_lines[0].count(";") == 2

    def test_idempotent(self):
        once = format_source(PACKED)
        assert format_source(once) == once

    def test_comments_removed(self):
        formatted = format_source("int main(void) { /* hi */ return 1; }")
        assert "hi" not in formatted


class TestLearnabilityEffect:
    def test_packed_source_learns_nothing_per_line(self):
        """All of main is one source line: every snippet is one huge
        multi-block pair, so the packed program yields nothing."""
        guest = compile_source(PACKED, "arm", 2, "llvm")
        host = compile_source(PACKED, "x86", 2, "llvm")
        packed_rules = learn_rules(guest, host).report.rules

        formatted = format_source(PACKED)
        guest2 = compile_source(formatted, "arm", 2, "llvm")
        host2 = compile_source(formatted, "x86", 2, "llvm")
        formatted_rules = learn_rules(guest2, host2).report.rules

        assert formatted_rules > packed_rules
