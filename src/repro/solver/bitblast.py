"""Tseitin bit-blasting of IR expressions to CNF.

The word-level circuits live in :mod:`repro.solver.gates`; this module
provides the CNF gate backend (literals on a :class:`Solver`) plus the
:class:`BitBlaster` facade used by the equivalence portfolio and tests.
"""

from __future__ import annotations

from repro.ir.expr import Expr
from repro.solver.gates import CircuitBuilder
from repro.solver.sat import Solver

Bits = list[int]  # literal per bit, LSB first


class CnfBackend:
    """Gate backend emitting Tseitin clauses onto a SAT solver."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self._true = solver.new_var()
        solver.add_clause([self._true])

    @property
    def true_bit(self) -> int:
        return self._true

    @property
    def false_bit(self) -> int:
        return -self._true

    def not_gate(self, a: int) -> int:
        return -a

    def and_gate(self, a: int, b: int) -> int:
        if a == self.false_bit or b == self.false_bit or a == -b:
            return self.false_bit
        if a == self.true_bit:
            return b
        if b == self.true_bit or a == b:
            return a
        out = self.solver.new_var()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        return out

    def xor_gate(self, a: int, b: int) -> int:
        if a == self.false_bit:
            return b
        if b == self.false_bit:
            return a
        if a == self.true_bit:
            return -b
        if b == self.true_bit:
            return -a
        if a == b:
            return self.false_bit
        if a == -b:
            return self.true_bit
        out = self.solver.new_var()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    def fresh_symbol_bits(self, name: str, width: int) -> Bits:
        return [self.solver.new_var() for _ in range(width)]


class BitBlaster:
    """Facade pairing a CNF backend with the generic circuit builder."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self.backend = CnfBackend(solver)
        self.circuit = CircuitBuilder(self.backend)

    def blast(self, expr: Expr) -> Bits:
        """Return the literal vector denoting ``expr``."""
        return self.circuit.lower(expr)

    def symbol_bits(self) -> dict[str, Bits]:
        return self.circuit.symbol_bits()

    @property
    def true_lit(self) -> int:
        return self.backend.true_bit

    @property
    def false_lit(self) -> int:
        return self.backend.false_bit

    def xor_bit(self, a: int, b: int) -> int:
        return self.backend.xor_gate(a, b)

    def decode_symbol(self, name: str, model: dict[int, bool]) -> int:
        """Read a symbol's value out of a SAT model."""
        bits = self.circuit.symbol_bits()[name]
        value = 0
        for i, lit in enumerate(bits):
            var = abs(lit)
            bit = model.get(var, False)
            if lit < 0:
                bit = not bit
            if bit:
                value |= 1 << i
        return value
