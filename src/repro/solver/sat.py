"""A compact CDCL SAT solver.

Implements the classic architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style activity
heuristics, geometric restarts, and phase saving.  Variables are positive
integers; literals are signed integers (``-v`` is the negation of ``v``),
i.e. the DIMACS convention.

It is deliberately minimal but complete — the bit-blasted formulas the
learner produces are small (hundreds to a few thousand variables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"


@dataclass
class _Clause:
    literals: list[int]
    learned: bool = False
    activity: float = 0.0


@dataclass
class Solver:
    """CDCL SAT solver over DIMACS-style integer literals."""

    _clauses: list[_Clause] = field(default_factory=list)
    _num_vars: int = 0

    def __post_init__(self) -> None:
        self._watches: dict[int, list[_Clause]] = {}
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, _Clause | None] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._activity: dict[int, float] = {}
        self._phase: dict[int, bool] = {}
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._ok = True

    # -- public API --------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, literals: list[int]) -> None:
        """Add a clause (a disjunction of literals)."""
        if not self._ok:
            return
        for lit in literals:
            self._num_vars = max(self._num_vars, abs(lit))
        seen: set[int] = set()
        pruned: list[int] = []
        for lit in literals:
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                pruned.append(lit)
        if not pruned:
            self._ok = False
            return
        if len(pruned) == 1:
            if not self._enqueue(pruned[0], None):
                self._ok = False
            return
        clause = _Clause(pruned)
        self._clauses.append(clause)
        self._watch(clause)

    def solve(self, assumptions: list[int] | None = None) -> SatResult:
        """Decide satisfiability; model is readable via :meth:`value`."""
        if not self._ok:
            return SatResult.UNSAT
        if self._propagate() is not None:
            self._ok = False
            return SatResult.UNSAT
        root_level = 0
        for lit in assumptions or []:
            if self.value(lit) is False:
                return SatResult.UNSAT
            if self.value(lit) is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                if self._propagate() is not None:
                    self._cancel_until(0)
                    return SatResult.UNSAT
        root_level = len(self._trail_lim)
        conflicts_before_restart = 100
        conflict_count = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflict_count += 1
                if self._decision_level() == root_level:
                    self._cancel_until(0)
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, root_level)
                self._cancel_until(back_level)
                self._record(learned)
                self._decay_activities()
                if conflict_count >= conflicts_before_restart:
                    conflict_count = 0
                    conflicts_before_restart = int(conflicts_before_restart * 1.5)
                    self._cancel_until(root_level)
                continue
            lit = self._pick_branch()
            if lit is None:
                return SatResult.SAT
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def value(self, lit: int) -> bool | None:
        """Current assignment of a literal (None if unassigned)."""
        var = abs(lit)
        if var not in self._assign:
            return None
        val = self._assign[var]
        return val if lit > 0 else not val

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment after a SAT result."""
        return dict(self._assign)

    # -- internals ----------------------------------------------------------

    def _watch(self, clause: _Clause) -> None:
        for lit in clause.literals[:2]:
            self._watches.setdefault(-lit, []).append(clause)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        current = self.value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> _Clause | None:
        index = getattr(self, "_qhead", 0)
        while index < len(self._trail):
            lit = self._trail[index]
            index += 1
            watchers = self._watches.get(lit, [])
            self._watches[lit] = []
            while watchers:
                clause = watchers.pop()
                if not self._propagate_clause(clause, lit):
                    # Conflict: _propagate_clause already re-watched this
                    # clause; restore the not-yet-visited watchers.
                    self._watches[lit].extend(watchers)
                    self._qhead = len(self._trail)
                    return clause
        self._qhead = index
        return None

    def _propagate_clause(self, clause: _Clause, false_lit: int) -> bool:
        lits = clause.literals
        # Ensure the false literal is in slot 1.
        if lits[0] == -false_lit:
            lits[0], lits[1] = lits[1], lits[0]
        first = lits[0]
        if self.value(first) is True:
            self._watches.setdefault(false_lit, []).append(clause)
            return True
        for i in range(2, len(lits)):
            if self.value(lits[i]) is not False:
                lits[1], lits[i] = lits[i], lits[1]
                self._watches.setdefault(-lits[1], []).append(clause)
                return True
        # Unit or conflicting.
        self._watches.setdefault(false_lit, []).append(clause)
        return self._enqueue(first, clause)

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen: set[int] = set()
        counter = 0
        implied = 0  # the trail literal whose reason we are resolving on
        clause: _Clause | None = conflict
        index = len(self._trail) - 1
        while True:
            assert clause is not None
            for cl_lit in clause.literals:
                if cl_lit == implied:
                    continue
                var = abs(cl_lit)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == self._decision_level():
                    counter += 1
                else:
                    learned.append(cl_lit)
            # Find the next literal on the trail to resolve on.
            while abs(self._trail[index]) not in seen:
                index -= 1
            implied = self._trail[index]
            var = abs(implied)
            seen.discard(var)
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause = self._reason[var]
        learned[0] = -implied
        if len(learned) == 1:
            return learned, 0
        # Backjump level = max level among the non-asserting literals.
        back = max(self._level[abs(l)] for l in learned[1:])
        # Put a literal from the backjump level into slot 1 for watching.
        for i in range(1, len(learned)):
            if self._level[abs(learned[i])] == back:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, back

    def _record(self, learned: list[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        clause = _Clause(learned, learned=True)
        self._clauses.append(clause)
        self._watch(clause)
        self._enqueue(learned[0], clause)

    def _cancel_until(self, level: int) -> None:
        while self._decision_level() > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = abs(lit)
                self._phase[var] = self._assign[var]
                del self._assign[var]
                del self._level[var]
                self._reason.pop(var, None)
        self._qhead = min(getattr(self, "_qhead", 0), len(self._trail))

    def _pick_branch(self) -> int | None:
        best_var = None
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if var in self._assign:
                continue
            act = self._activity.get(var, 0.0)
            if act > best_act:
                best_act = act
                best_var = var
        if best_var is None:
            return None
        phase = self._phase.get(best_var, False)
        return best_var if phase else -best_var

    def _bump_var(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= 0.95
