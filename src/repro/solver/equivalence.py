"""Equivalence checking of IR expressions (the STP-substitute API).

The decision procedure is a portfolio:

1. canonicalization (:func:`repro.ir.simplify.simplify`) — structural
   equality proves equivalence,
2. directed + random concrete testing — a mismatch disproves it,
3. ROBDD construction with interleaved variable order — identical BDDs
   prove equivalence; differing BDDs yield a counterexample path,
4. if the BDD node budget is exceeded (essentially only variable-times-
   variable multiplication), CNF + CDCL SAT for narrow widths, else the
   query is reported UNKNOWN and the caller decides (the rule learner
   counts these as "Other" verification failures, like the paper's
   symbolic-execution timeouts).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.ir.evaluate import evaluate
from repro.ir.expr import Expr, mask
from repro.ir.simplify import simplify
from repro.ir.traverse import variables
from repro.solver.bdd import BddBackend, BddBudgetExceeded, BddManager
from repro.solver.bitblast import BitBlaster
from repro.solver.gates import CircuitBuilder
from repro.solver.sat import SatResult, Solver

_RANDOM_SAMPLES = 24
_INTERESTING = (0, 1, 2, 0xFF, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF)
_SAT_FALLBACK_MAX_WIDTH = 8


class Verdict(enum.Enum):
    EQUAL = "equal"
    NOT_EQUAL = "not_equal"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence query.

    Attributes:
        verdict: EQUAL, NOT_EQUAL, or UNKNOWN (budget exceeded).
        counterexample: Symbol assignment witnessing inequality, if any.
        method: Which engine decided ("syntactic", "random", "bdd",
            "sat", "budget").
    """

    verdict: Verdict
    counterexample: dict[str, int] | None
    method: str

    @property
    def equal(self) -> bool:
        return self.verdict is Verdict.EQUAL


def check_equal(
    a: Expr,
    b: Expr,
    *,
    seed: int = 0,
    bdd_budget: int = 400_000,
) -> EquivalenceResult:
    """Decide whether ``a`` and ``b`` denote the same function.

    The two expressions must have the same width.  Free symbols with the
    same name are shared between the two sides.
    """
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    sa, sb = simplify(a), simplify(b)
    if sa == sb:
        return EquivalenceResult(Verdict.EQUAL, None, "syntactic")

    names: dict[str, int] = {}
    names.update(variables(sa))
    names.update(variables(sb))
    rng = random.Random(seed)
    for sample in range(_RANDOM_SAMPLES):
        env = _sample_env(names, rng, sample)
        if evaluate(sa, env) != evaluate(sb, env):
            return EquivalenceResult(Verdict.NOT_EQUAL, env, "random")

    try:
        return _check_bdd(sa, sb, names, bdd_budget)
    except BddBudgetExceeded:
        pass

    max_width = max(names.values(), default=1)
    if max_width <= _SAT_FALLBACK_MAX_WIDTH:
        return _check_sat(sa, sb, names)
    return EquivalenceResult(Verdict.UNKNOWN, None, "budget")


def prove_equal(a: Expr, b: Expr, *, seed: int = 0) -> bool:
    """Convenience wrapper: True only when equivalence is *proven*."""
    return check_equal(a, b, seed=seed).equal


def find_counterexample(a: Expr, b: Expr, *, seed: int = 0) -> dict[str, int] | None:
    """Return a symbol assignment where ``a`` and ``b`` differ, if any."""
    return check_equal(a, b, seed=seed).counterexample


def _check_bdd(
    a: Expr, b: Expr, names: dict[str, int], budget: int
) -> EquivalenceResult:
    manager = BddManager(node_budget=budget)
    backend = BddBackend(manager, names)
    circuit = CircuitBuilder(backend)
    bits_a = circuit.lower(a)
    bits_b = circuit.lower(b)
    for bit_a, bit_b in zip(bits_a, bits_b):
        if bit_a == bit_b:
            continue
        diff = manager.xor(bit_a, bit_b)
        path = manager.satisfying_path(diff)
        if path is None:
            continue
        env = backend.decode_assignment(path)
        for name, width in names.items():
            env.setdefault(name, 0)
            env[name] &= mask(width)
        return EquivalenceResult(Verdict.NOT_EQUAL, env, "bdd")
    return EquivalenceResult(Verdict.EQUAL, None, "bdd")


def _check_sat(a: Expr, b: Expr, names: dict[str, int]) -> EquivalenceResult:
    solver = Solver()
    blaster = BitBlaster(solver)
    bits_a = blaster.blast(a)
    bits_b = blaster.blast(b)
    diff_bits = [blaster.xor_bit(x, y) for x, y in zip(bits_a, bits_b)]
    solver.add_clause(diff_bits)
    if solver.solve() is SatResult.UNSAT:
        return EquivalenceResult(Verdict.EQUAL, None, "sat")
    model = solver.model()
    env = {name: blaster.decode_symbol(name, model)
           for name in blaster.symbol_bits()}
    for name, width in names.items():
        env.setdefault(name, 0)
        env[name] &= mask(width)
    return EquivalenceResult(Verdict.NOT_EQUAL, env, "sat")


def _sample_env(names: dict[str, int], rng: random.Random, round_no: int) -> dict:
    env: dict[str, int] = {}
    for name, width in names.items():
        if round_no < len(_INTERESTING):
            env[name] = _INTERESTING[round_no] & mask(width)
        else:
            env[name] = rng.getrandbits(width)
    return env
