"""Word-level circuit construction, generic over a bit backend.

The same adder / shifter / divider / comparator circuits serve two
engines: Tseitin CNF (:mod:`repro.solver.bitblast`) and ROBDDs
(:mod:`repro.solver.bdd`).  A backend supplies boolean *bit handles* and
the three fundamental gates; everything word-level lives here once.
"""

from __future__ import annotations

from typing import Generic, Protocol, TypeVar

from repro.ir.expr import (
    BinOp,
    Binary,
    CmpKind,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
)

Bit = TypeVar("Bit")


class GateBackend(Protocol[Bit]):
    """The primitive gate set a circuit backend must provide."""

    @property
    def true_bit(self) -> Bit: ...

    @property
    def false_bit(self) -> Bit: ...

    def not_gate(self, a: Bit) -> Bit: ...

    def and_gate(self, a: Bit, b: Bit) -> Bit: ...

    def xor_gate(self, a: Bit, b: Bit) -> Bit: ...

    def fresh_symbol_bits(self, name: str, width: int) -> list[Bit]: ...


class CircuitBuilder(Generic[Bit]):
    """Lowers IR expressions to bit-handle vectors over any backend.

    Vectors are LSB-first.  Expression nodes are cached so shared
    subtrees are lowered once.
    """

    def __init__(self, backend: GateBackend) -> None:
        self.backend = backend
        self._cache: dict[Expr, list[Bit]] = {}
        self._symbols: dict[str, list[Bit]] = {}

    # -- gate sugar ---------------------------------------------------------

    def _and(self, a: Bit, b: Bit) -> Bit:
        return self.backend.and_gate(a, b)

    def _or(self, a: Bit, b: Bit) -> Bit:
        backend = self.backend
        return backend.not_gate(
            backend.and_gate(backend.not_gate(a), backend.not_gate(b))
        )

    def _xor(self, a: Bit, b: Bit) -> Bit:
        return self.backend.xor_gate(a, b)

    def _not(self, a: Bit) -> Bit:
        return self.backend.not_gate(a)

    def _mux(self, sel: Bit, then: Bit, other: Bit) -> Bit:
        return self._or(self._and(sel, then), self._and(self._not(sel), other))

    @property
    def _true(self) -> Bit:
        return self.backend.true_bit

    @property
    def _false(self) -> Bit:
        return self.backend.false_bit

    # -- word-level circuits --------------------------------------------------

    def const_word(self, width: int, value: int) -> list[Bit]:
        return [self._true if value >> i & 1 else self._false for i in range(width)]

    def adder(self, a: list[Bit], b: list[Bit], cin: Bit) -> list[Bit]:
        out: list[Bit] = []
        carry = cin
        for abit, bbit in zip(a, b):
            axb = self._xor(abit, bbit)
            out.append(self._xor(axb, carry))
            carry = self._or(self._and(abit, bbit), self._and(axb, carry))
        return out

    def negate(self, a: list[Bit]) -> list[Bit]:
        inverted = [self._not(bit) for bit in a]
        return self.adder(inverted, self.const_word(len(a), 0), self._true)

    def mux_word(self, sel: Bit, then: list[Bit], other: list[Bit]) -> list[Bit]:
        return [self._mux(sel, t, o) for t, o in zip(then, other)]

    def eq_bit(self, a: list[Bit], b: list[Bit]) -> Bit:
        result = self._true
        for abit, bbit in zip(a, b):
            result = self._and(result, self._not(self._xor(abit, bbit)))
        return result

    def ult_bit(self, a: list[Bit], b: list[Bit]) -> Bit:
        result = self._false
        for abit, bbit in zip(a, b):  # fold LSB..MSB so the MSB dominates
            eq_here = self._not(self._xor(abit, bbit))
            lt_here = self._and(self._not(abit), bbit)
            result = self._or(lt_here, self._and(eq_here, result))
        return result

    def slt_bit(self, a: list[Bit], b: list[Bit]) -> Bit:
        flipped_a = a[:-1] + [self._not(a[-1])]
        flipped_b = b[:-1] + [self._not(b[-1])]
        return self.ult_bit(flipped_a, flipped_b)

    def shifter(self, a: list[Bit], amount: list[Bit], kind: Binary) -> list[Bit]:
        """Barrel shifter; amounts >= width give 0 (sign fill for ASHR)."""
        width = len(a)
        fill = a[-1] if kind is Binary.ASHR else self._false
        current = list(a)
        stages = max(1, (width - 1).bit_length())
        for stage in range(stages):
            step = 1 << stage
            sel = amount[stage] if stage < len(amount) else self._false
            if kind is Binary.SHL:
                shifted = [self._false] * min(step, width) + current[: width - step]
            else:
                shifted = current[step:] + [fill] * min(step, width)
            shifted = shifted[:width]
            while len(shifted) < width:
                shifted.append(fill)
            current = self.mux_word(sel, shifted, current)
        overflow = self._false
        for bit in amount[stages:]:
            overflow = self._or(overflow, bit)
        if width & (width - 1):  # non-power-of-two width: amount >= width
            width_word = self.const_word(len(amount), width)
            overflow = self._or(overflow, self._not(self.ult_bit(amount, width_word)))
        return self.mux_word(overflow, [fill] * width, current)

    def _constant_value(self, bits: list[Bit]) -> int | None:
        """If every bit handle is the constant true/false, decode it."""
        value = 0
        for i, bit in enumerate(bits):
            if bit == self._true:
                value |= 1 << i
            elif bit != self._false:
                return None
        return value

    def multiplier(self, a: list[Bit], b: list[Bit]) -> list[Bit]:
        width = len(a)
        const_b = self._constant_value(b)
        if const_b is None and self._constant_value(a) is not None:
            a, b = b, a
            const_b = self._constant_value(b)
        if const_b is not None:
            return self._multiply_by_constant(a, const_b)
        accum = self.const_word(width, 0)
        for i in range(width):
            partial = [
                self._and(b[i], a[j - i]) if j >= i else self._false
                for j in range(width)
            ]
            accum = self.adder(accum, partial, self._false)
        return accum

    def _multiply_by_constant(self, a: list[Bit], value: int) -> list[Bit]:
        """Shift-add over set bits; negate first when that is cheaper."""
        width = len(a)
        value &= (1 << width) - 1
        complement = (-value) & ((1 << width) - 1)
        if bin(complement).count("1") < bin(value).count("1"):
            return self.negate(self._multiply_by_constant(a, complement))
        accum = self.const_word(width, 0)
        for i in range(width):
            if value >> i & 1:
                shifted = [self._false] * i + a[: width - i]
                accum = self.adder(accum, shifted, self._false)
        return accum

    def divider(self, a: list[Bit], b: list[Bit]) -> tuple[list[Bit], list[Bit]]:
        """Restoring unsigned division -> (quotient, remainder).

        Division by zero: quotient all-ones, remainder = a (IR convention).
        """
        width = len(a)
        remainder = self.const_word(width, 0)
        quotient: list[Bit] = [self._false] * width
        for i in range(width - 1, -1, -1):
            remainder = [a[i]] + remainder[:-1]
            can_sub = self._not(self.ult_bit(remainder, b))
            diff = self.adder(remainder, [self._not(bit) for bit in b], self._true)
            remainder = self.mux_word(can_sub, diff, remainder)
            quotient[i] = can_sub
        b_is_zero = self.eq_bit(b, self.const_word(width, 0))
        quotient = self.mux_word(b_is_zero, [self._true] * width, quotient)
        remainder = self.mux_word(b_is_zero, a, remainder)
        return quotient, remainder

    def abs_word(self, a: list[Bit]) -> list[Bit]:
        return self.mux_word(a[-1], self.negate(a), a)

    # -- expression lowering ----------------------------------------------------

    def lower(self, expr: Expr) -> list[Bit]:
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        bits = self._lower(expr)
        self._cache[expr] = bits
        return bits

    def symbol_bits(self) -> dict[str, list[Bit]]:
        return dict(self._symbols)

    def _lower(self, expr: Expr) -> list[Bit]:
        if isinstance(expr, Const):
            return self.const_word(expr.width, expr.value)
        if isinstance(expr, Sym):
            bits = self._symbols.get(expr.name)
            if bits is None:
                bits = self.backend.fresh_symbol_bits(expr.name, expr.width)
                self._symbols[expr.name] = bits
            return bits
        if isinstance(expr, UnOp):
            a = self.lower(expr.a)
            if expr.op is Unary.NOT:
                return [self._not(bit) for bit in a]
            return self.negate(a)
        if isinstance(expr, BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, CmpOp):
            return [self._lower_cmp(expr)]
        if isinstance(expr, Extract):
            return self.lower(expr.a)[expr.lo : expr.hi + 1]
        if isinstance(expr, Extend):
            a = self.lower(expr.a)
            fill = a[-1] if expr.signed else self._false
            return a + [fill] * (expr.width - expr.a.width)
        if isinstance(expr, Concat):
            high = self.lower(expr.a)
            low = self.lower(expr.b)
            return low + high
        if isinstance(expr, Ite):
            sel = self.lower(expr.cond)[0]
            return self.mux_word(sel, self.lower(expr.then), self.lower(expr.other))
        raise AssertionError(f"unhandled expr {type(expr).__name__}")

    def _lower_binop(self, expr: BinOp) -> list[Bit]:
        a = self.lower(expr.a)
        b = self.lower(expr.b)
        op = expr.op
        if op is Binary.ADD:
            return self.adder(a, b, self._false)
        if op is Binary.SUB:
            return self.adder(a, [self._not(bit) for bit in b], self._true)
        if op is Binary.MUL:
            return self.multiplier(a, b)
        if op is Binary.AND:
            return [self._and(x, y) for x, y in zip(a, b)]
        if op is Binary.OR:
            return [self._or(x, y) for x, y in zip(a, b)]
        if op is Binary.XOR:
            return [self._xor(x, y) for x, y in zip(a, b)]
        if op in (Binary.SHL, Binary.LSHR, Binary.ASHR):
            return self.shifter(a, b, op)
        if op is Binary.UDIV:
            return self.divider(a, b)[0]
        if op is Binary.UREM:
            return self.divider(a, b)[1]
        if op in (Binary.SDIV, Binary.SREM):
            return self._lower_signed_div(a, b, op)
        raise AssertionError(f"unhandled binop {op}")

    def _lower_signed_div(self, a: list[Bit], b: list[Bit], op: Binary) -> list[Bit]:
        width = len(a)
        quotient, remainder = self.divider(self.abs_word(a), self.abs_word(b))
        b_is_zero = self.eq_bit(b, self.const_word(width, 0))
        if op is Binary.SDIV:
            flip = self._xor(a[-1], b[-1])
            result = self.mux_word(flip, self.negate(quotient), quotient)
            return self.mux_word(b_is_zero, [self._true] * width, result)
        result = self.mux_word(a[-1], self.negate(remainder), remainder)
        return self.mux_word(b_is_zero, a, result)

    def _lower_cmp(self, expr: CmpOp) -> Bit:
        a = self.lower(expr.a)
        b = self.lower(expr.b)
        kind = expr.kind
        if kind is CmpKind.EQ:
            return self.eq_bit(a, b)
        if kind is CmpKind.NE:
            return self._not(self.eq_bit(a, b))
        if kind is CmpKind.ULT:
            return self.ult_bit(a, b)
        if kind is CmpKind.UGE:
            return self._not(self.ult_bit(a, b))
        if kind is CmpKind.UGT:
            return self.ult_bit(b, a)
        if kind is CmpKind.ULE:
            return self._not(self.ult_bit(b, a))
        if kind is CmpKind.SLT:
            return self.slt_bit(a, b)
        if kind is CmpKind.SGE:
            return self._not(self.slt_bit(a, b))
        if kind is CmpKind.SGT:
            return self.slt_bit(b, a)
        if kind is CmpKind.SLE:
            return self._not(self.slt_bit(b, a))
        raise AssertionError(f"unhandled cmp {kind}")
