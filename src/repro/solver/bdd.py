"""Reduced ordered binary decision diagrams (ROBDD).

The primary equivalence engine.  With an interleaved variable order
(bit *i* of every symbol adjacent), the circuits the learner produces —
adders, subtractors, comparators, shifts and multiplications by
constants — all have polynomially-sized BDDs, so equivalence of typical
guest/host snippets is decided in milliseconds.  Genuinely hard cases
(variable x variable multiplication) blow the node budget and raise
:class:`BddBudgetExceeded`; the portfolio in
:mod:`repro.solver.equivalence` then falls back to other engines.

Nodes are integers indexing parallel arrays; 0 and 1 are the terminals.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

_TERMINAL_VAR = sys.maxsize


class BddBudgetExceeded(Exception):
    """Raised when the unique table outgrows the configured budget."""


@dataclass
class BddManager:
    """Owns the unique table and the memoized ``ite`` operation."""

    node_budget: int = 2_000_000

    _var: list[int] = field(default_factory=lambda: [_TERMINAL_VAR, _TERMINAL_VAR])
    _low: list[int] = field(default_factory=lambda: [0, 1])
    _high: list[int] = field(default_factory=lambda: [0, 1])

    def __post_init__(self) -> None:
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._num_vars = 0

    FALSE = 0
    TRUE = 1

    @property
    def node_count(self) -> int:
        return len(self._var)

    def new_var_index(self) -> int:
        """Allocate the next variable in the global order."""
        index = self._num_vars
        self._num_vars += 1
        return index

    def var_node(self, var_index: int) -> int:
        """The BDD for the bare variable ``var_index``."""
        return self._mk(var_index, self.FALSE, self.TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._var) >= self.node_budget:
            raise BddBudgetExceeded(f"BDD exceeded {self.node_budget} nodes")
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else, the universal BDD operation (iterative)."""
        # Terminal shortcuts.
        result = self._ite_terminal(f, g, h)
        if result is not None:
            return result
        stack: list[tuple] = [("call", f, g, h)]
        results: list[int] = []
        while stack:
            frame = stack.pop()
            if frame[0] == "call":
                _, cf, cg, ch = frame
                shortcut = self._ite_terminal(cf, cg, ch)
                if shortcut is not None:
                    results.append(shortcut)
                    continue
                key = (cf, cg, ch)
                cached = self._ite_cache.get(key)
                if cached is not None:
                    results.append(cached)
                    continue
                top = min(self._var[cf], self._var[cg], self._var[ch])
                f_low, f_high = self._cofactors(cf, top)
                g_low, g_high = self._cofactors(cg, top)
                h_low, h_high = self._cofactors(ch, top)
                stack.append(("combine", key, top))
                stack.append(("call", f_high, g_high, h_high))
                stack.append(("call", f_low, g_low, h_low))
            else:
                _, key, top = frame
                high = results.pop()
                low = results.pop()
                node = self._mk(top, low, high)
                self._ite_cache[key] = node
                results.append(node)
        return results[0]

    def _ite_terminal(self, f: int, g: int, h: int) -> int | None:
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        return None

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # -- boolean sugar -------------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        return self.ite(a, b, self.FALSE)

    def or_(self, a: int, b: int) -> int:
        return self.ite(a, self.TRUE, b)

    def not_(self, a: int) -> int:
        return self.ite(a, self.FALSE, self.TRUE)

    def xor(self, a: int, b: int) -> int:
        return self.ite(a, self.not_(b), b)

    def satisfying_path(self, node: int) -> dict[int, bool] | None:
        """Return a variable assignment reaching TRUE, or None."""
        if node == self.FALSE:
            return None
        assignment: dict[int, bool] = {}
        while node != self.TRUE:
            if self._low[node] != self.FALSE:
                assignment[self._var[node]] = False
                node = self._low[node]
            else:
                assignment[self._var[node]] = True
                node = self._high[node]
        return assignment


class BddBackend:
    """Gate backend over a :class:`BddManager` for the circuit builder.

    Symbols must be registered up front (so bit variables can be
    interleaved across symbols, which keeps adder BDDs linear).
    """

    def __init__(self, manager: BddManager, symbol_widths: dict[str, int]) -> None:
        self.manager = manager
        self._bits: dict[str, list[int]] = {name: [] for name in symbol_widths}
        self._var_origin: dict[int, tuple[str, int]] = {}
        max_width = max(symbol_widths.values(), default=0)
        names = sorted(symbol_widths)
        for bit in range(max_width):
            for name in names:
                if bit < symbol_widths[name]:
                    var = manager.new_var_index()
                    self._bits[name].append(manager.var_node(var))
                    self._var_origin[var] = (name, bit)

    @property
    def true_bit(self) -> int:
        return self.manager.TRUE

    @property
    def false_bit(self) -> int:
        return self.manager.FALSE

    def not_gate(self, a: int) -> int:
        return self.manager.not_(a)

    def and_gate(self, a: int, b: int) -> int:
        return self.manager.and_(a, b)

    def xor_gate(self, a: int, b: int) -> int:
        return self.manager.xor(a, b)

    def fresh_symbol_bits(self, name: str, width: int) -> list[int]:
        bits = self._bits.get(name)
        if bits is None or len(bits) != width:
            raise KeyError(f"symbol {name!r} was not pre-registered at width {width}")
        return bits

    def decode_assignment(self, assignment: dict[int, bool]) -> dict[str, int]:
        """Turn a variable assignment into symbol values (unset bits = 0)."""
        values: dict[str, int] = {name: 0 for name in self._bits}
        for var, value in assignment.items():
            if value:
                name, bit = self._var_origin[var]
                values[name] |= 1 << bit
        return values
