"""Equivalence prover for IR expressions.

This package plays the role of the STP SMT solver in the paper's
toolchain.  The decision procedure for ``a == b`` over bitvectors is a
portfolio (see :mod:`repro.solver.equivalence`):

1. canonicalization; structural equality proves equivalence,
2. directed + random testing; a mismatch disproves it,
3. ROBDDs with interleaved variable order (the primary engine),
4. Tseitin CNF + a from-scratch CDCL SAT solver for narrow widths when
   the BDD budget is exceeded; otherwise UNKNOWN.
"""

from repro.solver.bdd import BddBackend, BddBudgetExceeded, BddManager
from repro.solver.bitblast import BitBlaster, CnfBackend
from repro.solver.equivalence import (
    EquivalenceResult,
    Verdict,
    check_equal,
    find_counterexample,
    prove_equal,
)
from repro.solver.gates import CircuitBuilder
from repro.solver.sat import SatResult, Solver as SatSolver

__all__ = [
    "BddBackend",
    "BddBudgetExceeded",
    "BddManager",
    "BitBlaster",
    "CnfBackend",
    "CircuitBuilder",
    "EquivalenceResult",
    "Verdict",
    "check_equal",
    "find_counterexample",
    "prove_equal",
    "SatResult",
    "SatSolver",
]
