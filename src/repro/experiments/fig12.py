"""Figure 12: length distribution of hit translation rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentContext,
    render_table,
    shared_context,
)


@dataclass
class Fig12Result:
    # benchmark -> {rule length: hit count (distinct translations)}
    distributions: dict[str, dict[int, int]]

    def max_length(self) -> int:
        lengths = [
            length
            for dist in self.distributions.values()
            for length in dist
        ]
        return max(lengths, default=1)

    def share_of_multi_instruction_hits(self) -> float:
        total = 0
        multi = 0
        for dist in self.distributions.values():
            for length, count in dist.items():
                total += count
                if length >= 2:
                    multi += count
        return multi / total if total else 0.0


def run(context: ExperimentContext | None = None) -> Fig12Result:
    context = context or shared_context()
    distributions: dict[str, dict[int, int]] = {}
    for name in context.benchmarks:
        stats = context.run(name, "rules", "ref").stats
        distributions[name] = dict(sorted(stats.hit_rule_lengths.items()))
    return Fig12Result(distributions)


def render(result: Fig12Result) -> str:
    max_len = result.max_length()
    headers = ["benchmark"] + [f"len={length}"
                               for length in range(1, max_len + 1)]
    rows = []
    for name, dist in result.distributions.items():
        rows.append(
            [name] + [str(dist.get(length, 0))
                      for length in range(1, max_len + 1)]
        )
    table = render_table(
        headers, rows, "Figure 12: length distribution of hit rules"
    )
    share = result.share_of_multi_instruction_hits()
    return table + (
        f"\nhits with length >= 2: {share:.0%} "
        "(paper: hits beyond 2 guest instructions are common)"
    )
