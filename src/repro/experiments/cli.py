"""Command-line entry point: regenerate any table/figure.

Usage::

    repro-experiments table1
    repro-experiments fig8 fig10
    repro-experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import fig6, fig8, fig9, fig10, fig11, fig12, table1

EXPERIMENTS = {
    "table1": table1,
    "fig6": fig6,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if "all" in args.experiments else \
        args.experiments
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        result = module.run()
        print(module.render(result))
        print(f"[{name} regenerated in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
