"""Command-line entry point: regenerate any table/figure.

Usage::

    repro-experiments table1
    repro-experiments fig8 fig10
    repro-experiments all --jobs 8
    repro-experiments fig6 --cache-dir /tmp/verify-cache
    repro-experiments table1 --no-cache
    repro-experiments table1 fig11 --trace t.jsonl --metrics

With ``--trace``, every learning candidate and DBT block event lands
in the trace file; ``python -m repro.obs.report t.jsonl`` then
re-derives the Table 1 / Figure 11 / Figure 12 numbers from the trace
alone and cross-checks them against the ``LearningReport``/``DBTStats``
accounting embedded in the same trace.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

from repro.dbt.guard import GuardPolicy
from repro.experiments import fig6, fig8, fig9, fig10, fig11, fig12, table1
from repro.experiments.common import shared_context
from repro.learning.cache import VerificationCache
from repro.learning.cli import ECONOMY_PREFIXES, record_cache_metrics
from repro.learning.serialize import dump_rules, load_rules
from repro.obs.metrics import format_metrics, get_metrics, set_metrics
from repro.obs.trace import tracing

EXPERIMENTS = {
    "table1": table1,
    "fig6": fig6,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}

DEFAULT_CACHE_DIR = ".repro-cache"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for rule learning "
             "(default: all CPUs; 1 = sequential)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help="persistent verification-cache directory "
             f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="learn without the persistent verification cache",
    )
    parser.add_argument(
        "--guard", action="store_true",
        help="enable the differential execution guard: sampled "
             "rule-translated blocks are cross-checked against the TCG "
             "baseline, and diverging rules are quarantined at runtime",
    )
    parser.add_argument(
        "--rules", metavar="PATH",
        help="install pre-learned rules from this JSON repository "
             "(see --export-rules) instead of learning inline; "
             "leave-one-out still applies via each rule's origin. "
             "Experiments that measure learning itself (table1, fig6) "
             "still learn.",
    )
    parser.add_argument(
        "--export-rules", metavar="PATH",
        help="after running, write every learned rule (with origins) "
             "to this JSON file for later --rules runs or repro-serve "
             "seeding",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a structured JSON-lines trace of learning + DBT "
             "execution here (inspect with `python -m repro.obs.report`)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="dump every metrics counter/histogram to stderr when done",
    )
    args = parser.parse_args(argv)

    set_metrics(None)  # a fresh registry per invocation
    context = shared_context()
    context.jobs = args.jobs if args.jobs is not None else \
        (os.cpu_count() or 1)
    if not args.no_cache:
        context.cache = VerificationCache.at_dir(args.cache_dir)
    if args.guard:
        context.guard = GuardPolicy()
    if args.rules:
        with open(args.rules) as fp:
            context.preloaded_rules = load_rules(fp)
        print(f"installed {len(context.preloaded_rules)} pre-learned "
              f"rule(s) from {args.rules}", file=sys.stderr)

    names = list(EXPERIMENTS) if "all" in args.experiments else \
        args.experiments
    trace_scope = tracing(args.trace) if args.trace \
        else contextlib.nullcontext()
    with trace_scope:
        for name in names:
            module = EXPERIMENTS[name]
            start = time.perf_counter()
            result = module.run()
            print(module.render(result))
            print(f"[{name} regenerated in "
                  f"{time.perf_counter() - start:.1f}s]\n")
    if args.export_rules:
        outcomes = context.all_learning()
        # Keep one copy per (rule, origin) — NOT deduped across
        # benchmarks: a rule learned from several benchmarks must
        # survive leave-one-out exclusion of any single one of them.
        exported = [
            rule for outcome in outcomes.values()
            for rule in outcome.rules
        ]
        with open(args.export_rules, "w") as fp:
            dump_rules(exported, fp)
        print(f"exported {len(exported)} rule(s) to {args.export_rules}",
              file=sys.stderr)
    if context.cache is not None:
        context.cache.save()
    record_cache_metrics(context.cache)
    print(
        format_metrics(get_metrics(), title="verification economy",
                       prefix=ECONOMY_PREFIXES),
        file=sys.stderr,
    )
    if args.metrics:
        print(format_metrics(get_metrics()), file=sys.stderr)
    if args.trace:
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
