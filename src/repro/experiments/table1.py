"""Table 1: learning results (failure breakdown, yield, learning time)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.learning.pipeline import LearningReport
from repro.experiments.common import (
    ExperimentContext,
    render_table,
    shared_context,
)


@dataclass
class Table1Result:
    reports: dict[str, LearningReport]

    @property
    def totals(self) -> LearningReport:
        total = LearningReport(benchmark="TOTAL")
        for report in self.reports.values():
            total.merge(report)
        return total

    @property
    def prep_fraction(self) -> float:
        total = self.totals
        return total.prep_failures / max(total.total_sequences, 1)

    @property
    def param_fraction(self) -> float:
        total = self.totals
        return total.param_failures / max(total.total_sequences, 1)

    @property
    def verify_fraction(self) -> float:
        total = self.totals
        return total.verify_failures / max(total.total_sequences, 1)

    @property
    def yield_fraction(self) -> float:
        total = self.totals
        return total.rules / max(total.total_sequences, 1)

    @property
    def seconds_per_rule(self) -> float:
        total = self.totals
        return total.learn_seconds / max(total.rules, 1)

    @property
    def verify_time_share(self) -> float:
        total = self.totals
        if total.learn_seconds == 0:
            return 0.0
        return total.verify_seconds / total.learn_seconds


def run(context: ExperimentContext | None = None) -> Table1Result:
    context = context or shared_context()
    return Table1Result(
        {name: outcome.report
         for name, outcome in context.all_learning().items()}
    )


def render(result: Table1Result) -> str:
    headers = ["benchmark", "#seq", "CI", "PI", "MB", "Num", "Name",
               "FailG", "Rg", "Mm", "Br", "Other", "TO", "EC",
               "#Rules", "Time(s)"]
    rows = []
    for name, report in result.reports.items():
        rows.append([
            name, str(report.total_sequences),
            str(report.prep_ci), str(report.prep_pi), str(report.prep_mb),
            str(report.param_num), str(report.param_name),
            str(report.param_failg),
            str(report.verify_rg), str(report.verify_mm),
            str(report.verify_br), str(report.verify_other),
            str(report.verify_to), str(report.verify_ec),
            str(report.rules), f"{report.learn_seconds:.2f}",
        ])
    total = result.totals
    rows.append([
        "TOTAL", str(total.total_sequences),
        str(total.prep_ci), str(total.prep_pi), str(total.prep_mb),
        str(total.param_num), str(total.param_name), str(total.param_failg),
        str(total.verify_rg), str(total.verify_mm), str(total.verify_br),
        str(total.verify_other), str(total.verify_to), str(total.verify_ec),
        str(total.rules), f"{total.learn_seconds:.2f}",
    ])
    table = render_table(headers, rows, "Table 1: learning results")
    summary = (
        f"\nfailure shares: preparation {result.prep_fraction:.0%}, "
        f"parameterization {result.param_fraction:.0%}, "
        f"verification {result.verify_fraction:.0%}; "
        f"yield {result.yield_fraction:.0%}\n"
        f"avg learning time per rule: {result.seconds_per_rule * 1000:.1f} ms "
        f"(paper: < 2 s); verification share of learning time: "
        f"{result.verify_time_share:.0%} (paper: ~95%)"
    )
    return table + summary
