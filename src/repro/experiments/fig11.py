"""Figure 11: static and dynamic coverage of the learned rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentContext,
    render_table,
    shared_context,
)


@dataclass
class Fig11Result:
    coverage: dict[str, tuple[float, float]]  # benchmark -> (S_p, D_p)

    @property
    def average_static(self) -> float:
        return sum(s for s, _ in self.coverage.values()) / len(self.coverage)

    @property
    def average_dynamic(self) -> float:
        return sum(d for _, d in self.coverage.values()) / len(self.coverage)


def run(context: ExperimentContext | None = None) -> Fig11Result:
    context = context or shared_context()
    coverage: dict[str, tuple[float, float]] = {}
    for name in context.benchmarks:
        stats = context.run(name, "rules", "ref").stats
        coverage[name] = (stats.static_coverage, stats.dynamic_coverage)
    return Fig11Result(coverage)


def render(result: Fig11Result) -> str:
    headers = ["benchmark", "static S_p", "dynamic D_p"]
    rows = [
        [name, f"{static:.1%}", f"{dynamic:.1%}"]
        for name, (static, dynamic) in result.coverage.items()
    ]
    rows.append([
        "AVERAGE",
        f"{result.average_static:.1%}",
        f"{result.average_dynamic:.1%}",
    ])
    return render_table(
        headers, rows,
        "Figure 11: rule coverage (ref workload, paper average: >60%)",
    )
