"""Figure 6: sensitivity of learning to the compiler optimization level."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentContext,
    render_table,
    shared_context,
)

LEVELS = (0, 1, 2, 3)


@dataclass
class Fig6Result:
    rules_by_level: dict[str, dict[int, int]]  # benchmark -> level -> #rules

    def totals(self) -> dict[int, int]:
        totals = {level: 0 for level in LEVELS}
        for counts in self.rules_by_level.values():
            for level, count in counts.items():
                totals[level] += count
        return totals


def run(context: ExperimentContext | None = None) -> Fig6Result:
    context = context or shared_context()
    by_level = {
        level: context.all_learning(opt_level=level) for level in LEVELS
    }
    result: dict[str, dict[int, int]] = {}
    for name in context.benchmarks:
        result[name] = {
            level: by_level[level][name].report.rules for level in LEVELS
        }
    return Fig6Result(result)


def render(result: Fig6Result) -> str:
    headers = ["benchmark"] + [f"-O{level}" for level in LEVELS]
    rows = [
        [name] + [str(counts[level]) for level in LEVELS]
        for name, counts in result.rules_by_level.items()
    ]
    totals = result.totals()
    rows.append(["TOTAL"] + [str(totals[level]) for level in LEVELS])
    return render_table(
        headers, rows,
        "Figure 6: number of learned rules per optimization level",
    )
