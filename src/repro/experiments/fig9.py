"""Figure 9: speedup over QEMU for GCC-built guests.

Rules are still learned from the LLVM-style builds — the experiment
shows the learned rules transfer to binaries from a different compiler
(paper Section 6.2).
"""

from __future__ import annotations

from repro.experiments import fig8
from repro.experiments.common import ExperimentContext, shared_context


def run(context: ExperimentContext | None = None) -> fig8.SpeedupResult:
    return fig8.run(context or shared_context(), guest_style="gcc")


def render(result: fig8.SpeedupResult) -> str:
    return fig8.render(result, figure="Figure 9")
