"""Figure 10: dynamic host instructions reduced by the learned rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentContext,
    render_table,
    shared_context,
)


@dataclass
class Fig10Result:
    reductions: dict[str, float]  # benchmark -> fraction reduced

    @property
    def average(self) -> float:
        if not self.reductions:
            return 0.0
        return sum(self.reductions.values()) / len(self.reductions)


def run(context: ExperimentContext | None = None) -> Fig10Result:
    context = context or shared_context()
    reductions: dict[str, float] = {}
    for name in context.benchmarks:
        baseline = context.run(name, "qemu", "ref")
        rules = context.run(name, "rules", "ref")
        base_count = baseline.stats.dynamic_host_instructions
        rule_count = rules.stats.dynamic_host_instructions
        reductions[name] = 1.0 - rule_count / base_count
    return Fig10Result(reductions)


def render(result: Fig10Result) -> str:
    headers = ["benchmark", "dyn. host instrs reduced"]
    rows = [
        [name, f"{fraction:.1%}"]
        for name, fraction in result.reductions.items()
    ]
    rows.append(["AVERAGE", f"{result.average:.1%}"])
    return render_table(
        headers, rows,
        "Figure 10: dynamic host instruction reduction vs. QEMU "
        "(ref workload, paper average: 34%)",
    )
