"""Experiment regeneration: one module per paper table/figure.

Every module exposes a ``run(...)`` function returning a structured
result plus a ``render(result)`` function producing the text table the
benchmark harness and the CLI print.  ``repro.experiments.common``
caches compiled builds, learned rule sets, and DBT runs so that the
figure modules can share work within one process.
"""

from repro.experiments import fig6, fig8, fig9, fig10, fig11, fig12, table1
from repro.experiments.common import ExperimentContext

__all__ = [
    "ExperimentContext",
    "table1",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
]
