"""Shared experiment infrastructure: build/learn/run caching.

The evaluation protocol mirrors the paper's Section 6: rules applied to
benchmark *B* are those learned from the other eleven benchmarks
(leave-one-out), learning uses LLVM-style ``-O2`` builds, and guest
binaries come from either compiler style (Figure 8 vs Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchsuite import BENCHMARK_NAMES, benchmark_source
from repro.dbt.engine import DBTEngine, DBTRunResult
from repro.dbt.guard import GuardPolicy
from repro.dbt.perf import speedup
from repro.learning.cache import VerificationCache
from repro.learning.parallel import learn_corpus_parallel
from repro.learning.pipeline import (
    LearningOutcome,
    learn_corpus,
    learn_rules,
    leave_one_out,
)
from repro.learning.store import RuleStore
from repro.minic.compile import CompiledProgram, compile_source

LEARN_OPT_LEVEL = 2
LEARN_STYLE = "llvm"


@dataclass
class ExperimentContext:
    """Caches everything the figure modules need.

    One context per process is enough; creating a fresh one simply
    recomputes from scratch (useful for isolation in tests).

    ``jobs`` > 1 fans corpus learning out over a process pool;
    ``cache`` (a :class:`VerificationCache`) lets repeated experiment
    runs skip already-settled verifications.  Both only affect
    wall-clock — learned rules and reports are deterministic.
    """

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    jobs: int = 1
    cache: VerificationCache | None = None
    #: Differential execution guard for rules-mode runs (None = off).
    guard: GuardPolicy | None = None
    #: Pre-learned rules (``repro-experiments --rules``).  When set,
    #: rule stores come from here instead of inline learning; the
    #: leave-one-out protocol still applies via each rule's ``origin``.
    preloaded_rules: list | None = None
    _builds: dict = field(default_factory=dict)
    _learning: dict = field(default_factory=dict)
    _runs: dict = field(default_factory=dict)
    _stores: dict = field(default_factory=dict)

    # -- builds -------------------------------------------------------------

    def build(self, name: str, target: str, opt_level: int = LEARN_OPT_LEVEL,
              style: str = LEARN_STYLE, workload: str = "ref"
              ) -> CompiledProgram:
        key = (name, target, opt_level, style, workload)
        program = self._builds.get(key)
        if program is None:
            program = compile_source(
                benchmark_source(name, workload), target, opt_level, style
            )
            self._builds[key] = program
        return program

    # -- learning --------------------------------------------------------------

    def learning_outcome(self, name: str, opt_level: int = LEARN_OPT_LEVEL,
                         style: str = LEARN_STYLE) -> LearningOutcome:
        """Rules + Table 1 statistics for one benchmark."""
        key = (name, opt_level, style)
        outcome = self._learning.get(key)
        if outcome is None:
            guest = self.build(name, "arm", opt_level, style)
            host = self.build(name, "x86", opt_level, style)
            outcome = learn_rules(guest, host, benchmark=name,
                                  cache=self.cache)
            if self.cache is not None:
                self.cache.save()
            self._learning[key] = outcome
        return outcome

    def all_learning(self, opt_level: int = LEARN_OPT_LEVEL,
                     style: str = LEARN_STYLE) -> dict[str, LearningOutcome]:
        """Learning outcomes for the whole corpus (one shared dedup
        memo, parallel when ``jobs`` > 1)."""
        missing = [
            name for name in self.benchmarks
            if (name, opt_level, style) not in self._learning
        ]
        if missing:
            builds = {
                name: (self.build(name, "arm", opt_level, style),
                       self.build(name, "x86", opt_level, style))
                for name in missing
            }
            learner = learn_corpus_parallel if self.jobs > 1 else learn_corpus
            kwargs = {"jobs": self.jobs} if self.jobs > 1 else {}
            outcomes = learner(builds, cache=self.cache, **kwargs)
            for name, outcome in outcomes.items():
                self._learning[(name, opt_level, style)] = outcome
        return {
            name: self._learning[(name, opt_level, style)]
            for name in self.benchmarks
        }

    def rule_store_excluding(self, excluded: str) -> RuleStore:
        """Leave-one-out store, the paper's evaluation protocol.

        With preloaded rules, leave-one-out filters on the ``origin``
        each rule was serialized with — no learning runs at all.
        """
        store = self._stores.get(excluded)
        if store is None:
            if self.preloaded_rules is not None:
                store = RuleStore.from_rules([
                    rule for rule in self.preloaded_rules
                    if rule.origin != excluded
                ])
            else:
                outcomes = self.all_learning()
                store = RuleStore.from_rules(
                    leave_one_out(outcomes, excluded)
                )
            self._stores[excluded] = store
        return store

    # -- DBT runs ----------------------------------------------------------------

    def run(self, name: str, mode: str, workload: str,
            guest_style: str = LEARN_STYLE) -> DBTRunResult:
        """One emulation of a benchmark under one backend."""
        key = (name, mode, workload, guest_style)
        result = self._runs.get(key)
        if result is None:
            guest = self.build(name, "arm", LEARN_OPT_LEVEL, guest_style,
                               workload)
            store = (
                self.rule_store_excluding(name) if mode == "rules" else None
            )
            guard = self.guard if mode == "rules" else None
            engine = DBTEngine(guest, mode, store, guard=guard)
            result = engine.run()
            expected = self.run(name, "qemu", workload, guest_style) \
                if mode != "qemu" else None
            if expected is not None and \
                    expected.return_value != result.return_value:
                raise AssertionError(
                    f"{name}/{workload}: {mode} returned "
                    f"{result.return_value}, qemu {expected.return_value}"
                )
            self._runs[key] = result
        return result

    def speedup_over_qemu(self, name: str, mode: str, workload: str,
                          guest_style: str = LEARN_STYLE) -> float:
        baseline = self.run(name, "qemu", workload, guest_style)
        candidate = self.run(name, mode, workload, guest_style)
        return speedup(baseline.stats.perf, candidate.stats.perf)


_SHARED: ExperimentContext | None = None


def shared_context() -> ExperimentContext:
    """The process-wide cache used by the figure modules and benches."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentContext()
    return _SHARED


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def render_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Plain-text table renderer used by every experiment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
