"""Figure 8: speedup over QEMU for LLVM-built guests (test + ref)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentContext,
    geometric_mean,
    render_table,
    shared_context,
)

GUEST_STYLE = "llvm"


@dataclass
class SpeedupResult:
    guest_style: str
    # benchmark -> {(mode, workload): speedup}
    speedups: dict[str, dict[tuple[str, str], float]] = field(
        default_factory=dict
    )

    def mean(self, mode: str, workload: str) -> float:
        values = [
            per_bench[(mode, workload)]
            for per_bench in self.speedups.values()
        ]
        return geometric_mean(values)


def run(context: ExperimentContext | None = None,
        guest_style: str = GUEST_STYLE) -> SpeedupResult:
    context = context or shared_context()
    result = SpeedupResult(guest_style)
    for name in context.benchmarks:
        per_bench: dict[tuple[str, str], float] = {}
        for workload in ("test", "ref"):
            for mode in ("rules", "llvmjit"):
                per_bench[(mode, workload)] = context.speedup_over_qemu(
                    name, mode, workload, guest_style
                )
        result.speedups[name] = per_bench
    return result


def render(result: SpeedupResult, figure: str = "Figure 8") -> str:
    headers = ["benchmark", "rules/test", "jit/test", "rules/ref", "jit/ref"]
    rows = []
    for name, per_bench in result.speedups.items():
        rows.append([
            name,
            f"{per_bench[('rules', 'test')]:.2f}x",
            f"{per_bench[('llvmjit', 'test')]:.2f}x",
            f"{per_bench[('rules', 'ref')]:.2f}x",
            f"{per_bench[('llvmjit', 'ref')]:.2f}x",
        ])
    rows.append([
        "GEOMEAN",
        f"{result.mean('rules', 'test'):.2f}x",
        f"{result.mean('llvmjit', 'test'):.2f}x",
        f"{result.mean('rules', 'ref'):.2f}x",
        f"{result.mean('llvmjit', 'ref'):.2f}x",
    ])
    title = (
        f"{figure}: speedup over QEMU "
        f"({result.guest_style}-built guests, leave-one-out rules)"
    )
    return render_table(headers, rows, title)
