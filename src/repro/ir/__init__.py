"""Bitvector expression IR.

This package implements the symbolic intermediate representation used by
the binary symbolic executor (:mod:`repro.symexec`) and the equivalence
prover (:mod:`repro.solver`).  It plays the role of the Vine IR / FuzzBALL
expression language in the original paper's toolchain.

Expressions are immutable trees of fixed-width bitvector operations.  All
values are canonicalized modulo ``2 ** width``.  Booleans are represented
as 1-bit vectors so that a single evaluator / bit-blaster covers the whole
language.

The public surface is:

* node classes (:class:`Const`, :class:`Sym`, :class:`UnOp`,
  :class:`BinOp`, :class:`CmpOp`, :class:`Extract`, :class:`Extend`,
  :class:`Concat`, :class:`Ite`),
* smart constructors in :mod:`repro.ir.build` (``add``, ``sub``, ...) that
  perform light constant folding,
* :func:`repro.ir.simplify.simplify` for deeper algebraic rewriting,
* :func:`repro.ir.evaluate.evaluate` for concrete evaluation under an
  environment of symbol values,
* :func:`repro.ir.traverse.variables` / ``substitute`` for analysis.
"""

from repro.ir.expr import (
    BinOp,
    Binary,
    CmpKind,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
    mask,
    to_signed,
    to_unsigned,
)
from repro.ir.build import (
    add,
    and_,
    ashr,
    bv,
    concat,
    eq,
    extract,
    ite,
    lshr,
    mul,
    ne,
    neg,
    not_,
    or_,
    sdiv,
    sext,
    sge,
    sgt,
    shl,
    sle,
    slt,
    srem,
    sub,
    sym,
    udiv,
    uge,
    ugt,
    ule,
    ult,
    urem,
    xor,
    zext,
)
from repro.ir.evaluate import evaluate
from repro.ir.simplify import simplify
from repro.ir.traverse import expr_size, substitute, variables

__all__ = [
    "BinOp",
    "Binary",
    "CmpKind",
    "CmpOp",
    "Concat",
    "Const",
    "Expr",
    "Extend",
    "Extract",
    "Ite",
    "Sym",
    "UnOp",
    "Unary",
    "mask",
    "to_signed",
    "to_unsigned",
    "add",
    "and_",
    "ashr",
    "bv",
    "concat",
    "eq",
    "extract",
    "ite",
    "lshr",
    "mul",
    "ne",
    "neg",
    "not_",
    "or_",
    "sdiv",
    "sext",
    "sge",
    "sgt",
    "shl",
    "sle",
    "slt",
    "srem",
    "sub",
    "sym",
    "udiv",
    "uge",
    "ugt",
    "ule",
    "ult",
    "urem",
    "xor",
    "zext",
    "evaluate",
    "simplify",
    "expr_size",
    "substitute",
    "variables",
]
