"""Smart constructors for IR expressions.

These perform *light* peephole folding (constant folding plus trivial
identities) so that the symbolic executor produces compact trees.  Deeper
rewriting lives in :mod:`repro.ir.simplify`.
"""

from __future__ import annotations

from repro.ir.expr import (
    BinOp,
    Binary,
    CmpKind,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
    mask,
    to_signed,
    to_unsigned,
)

TRUE = Const(1, 1)
FALSE = Const(1, 0)


def bv(width: int, value: int) -> Const:
    """Build a constant bitvector."""
    return Const(width, value)


def sym(width: int, name: str) -> Sym:
    """Build a symbolic variable."""
    return Sym(width, name)


def _fold_binary(op: Binary, a: int, b: int, width: int) -> int:
    """Concrete semantics of every binary operator, on canonical ints."""
    if op is Binary.ADD:
        return a + b
    if op is Binary.SUB:
        return a - b
    if op is Binary.MUL:
        return a * b
    if op is Binary.UDIV:
        return mask(width) if b == 0 else a // b
    if op is Binary.SDIV:
        sa, sb = to_signed(a, width), to_signed(b, width)
        if sb == 0:
            return -1
        quotient = abs(sa) // abs(sb)
        return quotient if (sa < 0) == (sb < 0) else -quotient
    if op is Binary.UREM:
        return a if b == 0 else a % b
    if op is Binary.SREM:
        sa, sb = to_signed(a, width), to_signed(b, width)
        if sb == 0:
            return sa
        remainder = abs(sa) % abs(sb)
        return -remainder if sa < 0 else remainder
    if op is Binary.AND:
        return a & b
    if op is Binary.OR:
        return a | b
    if op is Binary.XOR:
        return a ^ b
    if op is Binary.SHL:
        return 0 if b >= width else a << b
    if op is Binary.LSHR:
        return 0 if b >= width else a >> b
    if op is Binary.ASHR:
        sa = to_signed(a, width)
        return sa >> min(b, width - 1)
    raise AssertionError(f"unhandled binary op {op}")


def _fold_cmp(kind: CmpKind, a: int, b: int, width: int) -> bool:
    """Concrete semantics of every comparison operator."""
    sa, sb = to_signed(a, width), to_signed(b, width)
    table = {
        CmpKind.EQ: a == b,
        CmpKind.NE: a != b,
        CmpKind.ULT: a < b,
        CmpKind.ULE: a <= b,
        CmpKind.UGT: a > b,
        CmpKind.UGE: a >= b,
        CmpKind.SLT: sa < sb,
        CmpKind.SLE: sa <= sb,
        CmpKind.SGT: sa > sb,
        CmpKind.SGE: sa >= sb,
    }
    return table[kind]


def _binop(op: Binary, a: Expr, b: Expr) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.width, _fold_binary(op, a.value, b.value, a.width))
    # Trivial identities that keep symbolic trees small.
    if isinstance(b, Const):
        if b.value == 0 and op in (
            Binary.ADD,
            Binary.SUB,
            Binary.OR,
            Binary.XOR,
            Binary.SHL,
            Binary.LSHR,
            Binary.ASHR,
        ):
            return a
        if b.value == 0 and op is Binary.AND:
            return Const(a.width, 0)
        if b.value == mask(a.width) and op is Binary.AND:
            return a
        if b.value == 1 and op is Binary.MUL:
            return a
        if b.value == 0 and op is Binary.MUL:
            return Const(a.width, 0)
    if isinstance(a, Const):
        if a.value == 0 and op in (Binary.ADD, Binary.OR, Binary.XOR):
            return b
        if a.value == 0 and op in (Binary.AND, Binary.MUL, Binary.SHL, Binary.LSHR):
            return Const(a.width, 0)
    return BinOp(a.width, op, a, b)


def add(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.ADD, a, b)


def sub(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.SUB, a, b)


def mul(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.MUL, a, b)


def udiv(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.UDIV, a, b)


def sdiv(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.SDIV, a, b)


def urem(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.UREM, a, b)


def srem(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.SREM, a, b)


def and_(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.AND, a, b)


def or_(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.OR, a, b)


def xor(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.XOR, a, b)


def shl(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.SHL, a, b)


def lshr(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.LSHR, a, b)


def ashr(a: Expr, b: Expr) -> Expr:
    return _binop(Binary.ASHR, a, b)


def not_(a: Expr) -> Expr:
    if isinstance(a, Const):
        return Const(a.width, ~a.value)
    if isinstance(a, UnOp) and a.op is Unary.NOT:
        return a.a
    return UnOp(a.width, Unary.NOT, a)


def neg(a: Expr) -> Expr:
    if isinstance(a, Const):
        return Const(a.width, -a.value)
    if isinstance(a, UnOp) and a.op is Unary.NEG:
        return a.a
    return UnOp(a.width, Unary.NEG, a)


def _cmp(kind: CmpKind, a: Expr, b: Expr) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        return TRUE if _fold_cmp(kind, a.value, b.value, a.width) else FALSE
    if a == b:
        reflexive_true = kind in (CmpKind.EQ, CmpKind.ULE, CmpKind.UGE,
                                  CmpKind.SLE, CmpKind.SGE)
        reflexive_false = kind in (CmpKind.NE, CmpKind.ULT, CmpKind.UGT,
                                   CmpKind.SLT, CmpKind.SGT)
        if reflexive_true:
            return TRUE
        if reflexive_false:
            return FALSE
    return CmpOp(1, kind, a, b)


def eq(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.EQ, a, b)


def ne(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.NE, a, b)


def ult(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.ULT, a, b)


def ule(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.ULE, a, b)


def ugt(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.UGT, a, b)


def uge(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.UGE, a, b)


def slt(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.SLT, a, b)


def sle(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.SLE, a, b)


def sgt(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.SGT, a, b)


def sge(a: Expr, b: Expr) -> Expr:
    return _cmp(CmpKind.SGE, a, b)


def extract(hi: int, lo: int, a: Expr) -> Expr:
    if hi == a.width - 1 and lo == 0:
        return a
    if isinstance(a, Const):
        return Const(hi - lo + 1, a.value >> lo)
    if isinstance(a, Extract):
        return extract(a.lo + hi, a.lo + lo, a.a)
    if isinstance(a, Concat):
        if lo >= a.b.width:
            return extract(hi - a.b.width, lo - a.b.width, a.a)
        if hi < a.b.width:
            return extract(hi, lo, a.b)
    if isinstance(a, Extend) and hi < a.a.width:
        return extract(hi, lo, a.a)
    if isinstance(a, Extend) and not a.signed and lo >= a.a.width:
        return Const(hi - lo + 1, 0)
    return Extract(hi - lo + 1, hi, lo, a)


def zext(width: int, a: Expr) -> Expr:
    if width == a.width:
        return a
    if isinstance(a, Const):
        return Const(width, a.value)
    return Extend(width, False, a)


def sext(width: int, a: Expr) -> Expr:
    if width == a.width:
        return a
    if isinstance(a, Const):
        return Const(width, to_signed(a.value, a.width))
    return Extend(width, True, a)


def concat(a: Expr, b: Expr) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.width + b.width, (a.value << b.width) | b.value)
    if isinstance(a, Const) and a.value == 0:
        return zext(a.width + b.width, b)
    return Concat(a.width + b.width, a, b)


def ite(cond: Expr, then: Expr, other: Expr) -> Expr:
    if isinstance(cond, Const):
        return then if cond.value else other
    if then == other:
        return then
    # (ite c 1 0) over 1-bit arms is just the condition itself.
    if (
        then.width == 1
        and isinstance(then, Const)
        and isinstance(other, Const)
        and then.value == 1
        and other.value == 0
    ):
        return cond
    return Ite(then.width, cond, then, other)
