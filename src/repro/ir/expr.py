"""Expression node classes for the bitvector IR.

Every node is an immutable, hashable tree.  Widths are in bits and are
strictly positive.  Constants are canonicalized into ``[0, 2**width)`` on
construction, so two structurally equal expressions are always ``==``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


def mask(width: int) -> int:
    """Return the all-ones bitmask for ``width`` bits."""
    return (1 << width) - 1


def to_unsigned(value: int, width: int) -> int:
    """Canonicalize ``value`` into the unsigned range ``[0, 2**width)``."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


class Binary(enum.Enum):
    """Binary bitvector operators (result width == operand width)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"


class Unary(enum.Enum):
    """Unary bitvector operators."""

    NOT = "not"
    NEG = "neg"


class CmpKind(enum.Enum):
    """Comparison operators (result is a 1-bit vector)."""

    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"


@dataclass(frozen=True)
class Expr:
    """Base class for all IR expressions.

    Attributes:
        width: Bit width of the value this expression denotes.
    """

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"expression width must be positive, got {self.width}")


@dataclass(frozen=True)
class Const(Expr):
    """A constant bitvector value, stored canonically unsigned."""

    value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "value", to_unsigned(self.value, self.width))

    @property
    def signed(self) -> int:
        """The constant interpreted as a signed integer."""
        return to_signed(self.value, self.width)

    def __str__(self) -> str:
        return f"0x{self.value:x}:{self.width}"


@dataclass(frozen=True)
class Sym(Expr):
    """A free symbolic variable, identified by name.

    Two symbols with the same name must have the same width; the symbolic
    executor enforces this by owning symbol creation.
    """

    name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.name:
            raise ValueError("symbol name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}:{self.width}"


@dataclass(frozen=True)
class UnOp(Expr):
    """Application of a unary operator."""

    op: Unary = Unary.NOT
    a: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.a.width != self.width:
            raise ValueError(f"unop width mismatch: {self.width} vs {self.a.width}")

    def __str__(self) -> str:
        return f"({self.op.value} {self.a})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Application of a binary operator.

    Shift amounts (for SHL/LSHR/ASHR) are interpreted as full unsigned
    values: a shift by ``>= width`` yields 0 (or sign fill for ASHR).
    Division and remainder by zero yield the SMT-LIB conventions:
    ``x udiv 0 = all-ones``, ``x urem 0 = x`` (and the signed analogues).
    """

    op: Binary = Binary.ADD
    a: Expr = field(default=None)  # type: ignore[assignment]
    b: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.a.width != self.width or self.b.width != self.width:
            raise ValueError(
                f"binop width mismatch: {self.width} vs "
                f"{self.a.width}/{self.b.width}"
            )

    def __str__(self) -> str:
        return f"({self.op.value} {self.a} {self.b})"


@dataclass(frozen=True)
class CmpOp(Expr):
    """A comparison; always 1 bit wide, operands of matching width."""

    kind: CmpKind = CmpKind.EQ
    a: Expr = field(default=None)  # type: ignore[assignment]
    b: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width != 1:
            raise ValueError("comparison results are 1 bit wide")
        if self.a.width != self.b.width:
            raise ValueError(
                f"cmp operand width mismatch: {self.a.width} vs {self.b.width}"
            )

    def __str__(self) -> str:
        return f"({self.kind.value} {self.a} {self.b})"


@dataclass(frozen=True)
class Extract(Expr):
    """Bit slice ``a[hi:lo]`` inclusive; width == hi - lo + 1."""

    hi: int = 0
    lo: int = 0
    a: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.lo <= self.hi < self.a.width:
            raise ValueError(
                f"bad extract [{self.hi}:{self.lo}] from width {self.a.width}"
            )
        if self.width != self.hi - self.lo + 1:
            raise ValueError("extract width inconsistent with bounds")

    def __str__(self) -> str:
        return f"({self.a})[{self.hi}:{self.lo}]"


@dataclass(frozen=True)
class Extend(Expr):
    """Zero or sign extension of ``a`` to a strictly larger width."""

    signed: bool = False
    a: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width <= self.a.width:
            raise ValueError(
                f"extend must widen: {self.a.width} -> {self.width}"
            )

    def __str__(self) -> str:
        op = "sext" if self.signed else "zext"
        return f"({op}{self.width} {self.a})"


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation; ``a`` supplies the high bits, ``b`` the low bits."""

    a: Expr = field(default=None)  # type: ignore[assignment]
    b: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width != self.a.width + self.b.width:
            raise ValueError("concat width must be the sum of operand widths")

    def __str__(self) -> str:
        return f"({self.a} . {self.b})"


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else on a 1-bit condition."""

    cond: Expr = field(default=None)  # type: ignore[assignment]
    then: Expr = field(default=None)  # type: ignore[assignment]
    other: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cond.width != 1:
            raise ValueError("ite condition must be 1 bit wide")
        if self.then.width != self.width or self.other.width != self.width:
            raise ValueError("ite arm widths must match the result width")

    def __str__(self) -> str:
        return f"(ite {self.cond} {self.then} {self.other})"
