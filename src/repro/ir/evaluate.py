"""Concrete evaluation of IR expressions.

Used by the random-testing falsifier in the solver and as a ground-truth
oracle in tests.  Evaluation is iterative (explicit stack) so that deep
expressions produced by long symbolic executions cannot hit Python's
recursion limit.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.build import _fold_binary, _fold_cmp
from repro.ir.expr import (
    BinOp,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
    to_signed,
    to_unsigned,
)


class UnboundSymbolError(KeyError):
    """Raised when evaluation encounters a symbol missing from the env."""


def evaluate(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` under ``env`` (symbol name -> unsigned value).

    Returns the canonical unsigned value of the expression.  Shared
    subtrees are evaluated once via memoization on identity.
    """
    cache: dict[int, int] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        key = id(node)
        if key in cache:
            continue
        if isinstance(node, Const):
            cache[key] = node.value
            continue
        if isinstance(node, Sym):
            try:
                cache[key] = to_unsigned(env[node.name], node.width)
            except KeyError as exc:
                raise UnboundSymbolError(node.name) from exc
            continue
        children = _children(node)
        if not ready:
            stack.append((node, True))
            stack.extend((child, False) for child in children)
            continue
        values = [cache[id(child)] for child in children]
        cache[key] = _apply(node, values)
    return cache[id(expr)]


def _children(node: Expr) -> tuple[Expr, ...]:
    if isinstance(node, UnOp):
        return (node.a,)
    if isinstance(node, (BinOp, CmpOp, Concat)):
        return (node.a, node.b)
    if isinstance(node, (Extract, Extend)):
        return (node.a,)
    if isinstance(node, Ite):
        return (node.cond, node.then, node.other)
    raise AssertionError(f"unhandled node type {type(node).__name__}")


def _apply(node: Expr, values: list[int]) -> int:
    if isinstance(node, UnOp):
        (a,) = values
        result = ~a if node.op is Unary.NOT else -a
        return to_unsigned(result, node.width)
    if isinstance(node, BinOp):
        a, b = values
        return to_unsigned(_fold_binary(node.op, a, b, node.width), node.width)
    if isinstance(node, CmpOp):
        a, b = values
        return 1 if _fold_cmp(node.kind, a, b, node.a.width) else 0
    if isinstance(node, Extract):
        (a,) = values
        return to_unsigned(a >> node.lo, node.width)
    if isinstance(node, Extend):
        (a,) = values
        if node.signed:
            return to_unsigned(to_signed(a, node.a.width), node.width)
        return a
    if isinstance(node, Concat):
        a, b = values
        return (a << node.b.width) | b
    if isinstance(node, Ite):
        cond, then, other = values
        return then if cond else other
    raise AssertionError(f"unhandled node type {type(node).__name__}")
