"""Algebraic simplification of IR expressions.

The smart constructors already fold constants; this pass adds the
rewrites that matter for proving cross-ISA equivalences *syntactically*
(so the SAT solver is only needed for genuinely hard cases):

* flattening + re-association of ADD/SUB chains into a canonical
  ``sum(terms) + constant`` form with multiplicity counting,
* commutative-operand ordering for ADD/MUL/AND/OR/XOR,
* ``x - y`` -> ``x + (-1)*y`` normal form inside sums,
* shift-by-constant -> multiply-by-power-of-two canonicalization inside
  sums (so ARM's ``lsl #2`` matches x86's ``*4`` scaling),
* AND-mask / extract-extend interplay (``zext(extract(x, 7, 0))`` ==
  ``x & 0xff``) so ``movzbl`` matches ``and #255``.
"""

from __future__ import annotations

from collections import Counter

from repro.ir import build
from repro.ir.expr import (
    BinOp,
    Binary,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
    Unary,
    mask,
    to_unsigned,
)


def simplify(expr: Expr) -> Expr:
    """Return a canonical, simplified form of ``expr``."""
    cache: dict[int, Expr] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in cache:
            continue
        if isinstance(node, (Const, Sym)):
            cache[id(node)] = node
            continue
        children = _children(node)
        if not ready:
            stack.append((node, True))
            stack.extend((child, False) for child in children)
            continue
        simplified = [cache[id(child)] for child in children]
        cache[id(node)] = _simplify_node(node, simplified)
    return cache[id(expr)]


def _children(node: Expr) -> tuple[Expr, ...]:
    if isinstance(node, UnOp):
        return (node.a,)
    if isinstance(node, (BinOp, CmpOp, Concat)):
        return (node.a, node.b)
    if isinstance(node, (Extract, Extend)):
        return (node.a,)
    if isinstance(node, Ite):
        return (node.cond, node.then, node.other)
    raise AssertionError(f"unhandled node {type(node).__name__}")


def _simplify_node(node: Expr, kids: list[Expr]) -> Expr:
    if isinstance(node, UnOp):
        (a,) = kids
        if node.op is Unary.NEG:
            # -x == 0 - x; fold into sum canonicalization.
            return _canon_sum(build.sub(Const(node.width, 0), a))
        return build.not_(a)
    if isinstance(node, BinOp):
        a, b = kids
        if node.op in (Binary.ADD, Binary.SUB):
            return _canon_sum(BinOp(node.width, node.op, a, b))
        if node.op is Binary.SHL and isinstance(b, Const) and b.value < node.width:
            # x << k  ->  x * 2**k, re-canonicalized (may merge into sums).
            power = Const(node.width, 1 << b.value)
            return _canon_mul(build.mul(a, power))
        if node.op is Binary.MUL:
            return _canon_mul(build.mul(a, b))
        if node.op in (Binary.AND, Binary.OR, Binary.XOR):
            return _canon_bitwise(node.op, a, b, node.width)
        return build._binop(node.op, a, b)
    if isinstance(node, CmpOp):
        a, b = kids
        return _canon_cmp(node, a, b)
    if isinstance(node, Extract):
        return build.extract(node.hi, node.lo, kids[0])
    if isinstance(node, Extend):
        (a,) = kids
        if not node.signed and isinstance(a, Extract) and a.lo == 0:
            # zext(x[k:0]) == x & mask  when widths line up with the source.
            if a.a.width == node.width:
                return _canon_bitwise(
                    Binary.AND, a.a, Const(node.width, mask(a.width)), node.width
                )
        builder = build.sext if node.signed else build.zext
        return builder(node.width, a)
    if isinstance(node, Concat):
        return build.concat(kids[0], kids[1])
    if isinstance(node, Ite):
        return build.ite(kids[0], kids[1], kids[2])
    raise AssertionError(f"unhandled node {type(node).__name__}")


# --- sum canonicalization -------------------------------------------------


def _sum_terms(expr: Expr, sign: int, terms: Counter, width: int) -> int:
    """Accumulate ``sign * expr`` into ``terms``; return constant part."""
    if isinstance(expr, Const):
        return sign * expr.value
    if isinstance(expr, BinOp) and expr.op is Binary.ADD:
        return _sum_terms(expr.a, sign, terms, width) + _sum_terms(
            expr.b, sign, terms, width
        )
    if isinstance(expr, BinOp) and expr.op is Binary.SUB:
        return _sum_terms(expr.a, sign, terms, width) + _sum_terms(
            expr.b, -sign, terms, width
        )
    if isinstance(expr, UnOp) and expr.op is Unary.NEG:
        return _sum_terms(expr.a, -sign, terms, width)
    if (
        isinstance(expr, BinOp)
        and expr.op is Binary.MUL
        and isinstance(expr.b, Const)
    ):
        terms[expr.a] += sign * expr.b.value
        return 0
    if isinstance(expr, BinOp) and expr.op is Binary.SHL and isinstance(
        expr.b, Const
    ) and expr.b.value < width:
        terms[expr.a] += sign * (1 << expr.b.value)
        return 0
    terms[expr] += sign
    return 0


def _term_key(term: Expr) -> str:
    return str(term)


def _canon_sum(expr: Expr) -> Expr:
    """Canonicalize a +/- chain as ``(pos_terms + const) - neg_terms``.

    Multiplicities are kept signed so that ``x - y`` never degenerates
    into ``x + y * 0xffffffff`` (which would force a full multiplier in
    the bit-level engines).
    """
    width = expr.width
    terms: Counter = Counter()
    constant = _sum_terms(expr, 1, terms, width)
    constant = to_unsigned(constant, width)
    positives: list[tuple[str, Expr]] = []
    negatives: list[tuple[str, Expr]] = []
    for term, count in terms.items():
        signed_count = to_unsigned(count, width)
        if signed_count == 0:
            continue
        signed_count = Const(width, signed_count).signed
        bucket = positives if signed_count > 0 else negatives
        magnitude = abs(signed_count)
        part = term if magnitude == 1 else build.mul(term, Const(width, magnitude))
        bucket.append((_term_key(term), part))
    positives.sort(key=lambda pair: pair[0])
    negatives.sort(key=lambda pair: pair[0])
    result: Expr | None = None
    for _, part in positives:
        result = part if result is None else BinOp(width, Binary.ADD, result, part)
    if result is None and not negatives:
        return Const(width, constant)
    if result is None:
        result = Const(width, constant)
        constant = 0
    if constant:
        result = BinOp(width, Binary.ADD, result, Const(width, constant))
    for _, part in negatives:
        result = BinOp(width, Binary.SUB, result, part)
    return result


def _canon_mul(expr: Expr) -> Expr:
    if not isinstance(expr, BinOp) or expr.op is not Binary.MUL:
        return expr
    a, b = expr.a, expr.b
    # Constants on the right; order symbolic operands deterministically.
    if isinstance(a, Const) and not isinstance(b, Const):
        a, b = b, a
    if not isinstance(b, Const) and _term_key(b) < _term_key(a):
        a, b = b, a
    # (x * c1) * c2 -> x * (c1*c2)
    if (
        isinstance(b, Const)
        and isinstance(a, BinOp)
        and a.op is Binary.MUL
        and isinstance(a.b, Const)
    ):
        return build.mul(a.a, Const(expr.width, a.b.value * b.value))
    return build.mul(a, b)


def _canon_bitwise(op: Binary, a: Expr, b: Expr, width: int) -> Expr:
    if isinstance(a, Const) and not isinstance(b, Const):
        a, b = b, a
    if not isinstance(b, Const) and _term_key(b) < _term_key(a):
        a, b = b, a
    if a == b:
        if op in (Binary.AND, Binary.OR):
            return a
        return Const(width, 0)  # x xor x
    # (x op c1) op c2 -> x op (c1 op c2) for the same associative op.
    if (
        isinstance(b, Const)
        and isinstance(a, BinOp)
        and a.op is op
        and isinstance(a.b, Const)
    ):
        folded = build._binop(op, a.b, b)
        return build._binop(op, a.a, folded)
    # zext(extract(x,k,0)) & mask patterns: AND with a low mask of an AND
    # with the same mask collapses.
    if (
        op is Binary.AND
        and isinstance(b, Const)
        and isinstance(a, BinOp)
        and a.op is Binary.AND
        and isinstance(a.b, Const)
        and (a.b.value & b.value) == b.value
    ):
        return build.and_(a.a, b)
    return build._binop(op, a, b)


def _canon_cmp(node: CmpOp, a: Expr, b: Expr) -> Expr:
    # Normalize (a - b) cmp 0 into a cmp b for EQ/NE, which is how ARM's
    # cmp-driven Z flag usually meets x86's.
    from repro.ir.expr import CmpKind

    if (
        isinstance(b, Const)
        and b.value == 0
        and node.kind in (CmpKind.EQ, CmpKind.NE)
        and isinstance(a, BinOp)
        and a.op is Binary.SUB
    ):
        return build._cmp(node.kind, a.a, a.b)
    # (x + c) ==/!= 0  ->  x ==/!= -c  (canonical sums put SUB this way).
    if (
        isinstance(b, Const)
        and b.value == 0
        and node.kind in (CmpKind.EQ, CmpKind.NE)
        and isinstance(a, BinOp)
        and a.op is Binary.ADD
        and isinstance(a.b, Const)
    ):
        return build._cmp(node.kind, a.a, Const(a.width, -a.b.value))
    if node.kind in (CmpKind.EQ, CmpKind.NE) and _term_key(b) < _term_key(a):
        a, b = b, a
    return build._cmp(node.kind, a, b)
