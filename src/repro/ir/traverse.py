"""Generic traversals over IR expressions: variables, substitution, size."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.ir.expr import (
    BinOp,
    CmpOp,
    Concat,
    Const,
    Expr,
    Extend,
    Extract,
    Ite,
    Sym,
    UnOp,
)
from repro.ir import build


def iter_nodes(expr: Expr):
    """Yield every node of ``expr`` once (shared subtrees visited once)."""
    seen: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        if isinstance(node, UnOp):
            stack.append(node.a)
        elif isinstance(node, (BinOp, CmpOp, Concat)):
            stack.extend((node.a, node.b))
        elif isinstance(node, (Extract, Extend)):
            stack.append(node.a)
        elif isinstance(node, Ite):
            stack.extend((node.cond, node.then, node.other))


def variables(expr: Expr) -> dict[str, int]:
    """Return the free symbols of ``expr`` as a name -> width mapping."""
    result: dict[str, int] = {}
    for node in iter_nodes(expr):
        if isinstance(node, Sym):
            result[node.name] = node.width
    return result


def expr_size(expr: Expr) -> int:
    """Number of distinct nodes in the expression DAG."""
    return sum(1 for _ in iter_nodes(expr))


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace symbols by expressions (by name), rebuilding bottom-up.

    Rebuilding goes through the smart constructors so substitution also
    re-applies light folding (e.g. substituting a constant for a symbol
    collapses the surrounding arithmetic).
    """
    cache: dict[int, Expr] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in cache:
            continue
        if isinstance(node, Const):
            cache[id(node)] = node
            continue
        if isinstance(node, Sym):
            cache[id(node)] = mapping.get(node.name, node)
            continue
        if not ready:
            stack.append((node, True))
            if isinstance(node, UnOp):
                stack.append((node.a, False))
            elif isinstance(node, (BinOp, CmpOp, Concat)):
                stack.extend(((node.a, False), (node.b, False)))
            elif isinstance(node, (Extract, Extend)):
                stack.append((node.a, False))
            elif isinstance(node, Ite):
                stack.extend(
                    ((node.cond, False), (node.then, False), (node.other, False))
                )
            continue
        cache[id(node)] = _rebuild(node, cache)
    return cache[id(expr)]


def _rebuild(node: Expr, cache: dict[int, Expr]) -> Expr:
    if isinstance(node, UnOp):
        return _unop(node, cache[id(node.a)])
    if isinstance(node, BinOp):
        return build._binop(node.op, cache[id(node.a)], cache[id(node.b)])
    if isinstance(node, CmpOp):
        return build._cmp(node.kind, cache[id(node.a)], cache[id(node.b)])
    if isinstance(node, Extract):
        return build.extract(node.hi, node.lo, cache[id(node.a)])
    if isinstance(node, Extend):
        builder = build.sext if node.signed else build.zext
        return builder(node.width, cache[id(node.a)])
    if isinstance(node, Concat):
        return build.concat(cache[id(node.a)], cache[id(node.b)])
    if isinstance(node, Ite):
        return build.ite(
            cache[id(node.cond)], cache[id(node.then)], cache[id(node.other)]
        )
    raise AssertionError(f"unhandled node type {type(node).__name__}")


def _unop(node: UnOp, a: Expr) -> Expr:
    from repro.ir.expr import Unary

    return build.not_(a) if node.op is Unary.NOT else build.neg(a)


def map_symbols(expr: Expr, rename: Callable[[str], str]) -> Expr:
    """Rename every symbol of ``expr`` through ``rename``."""
    names = variables(expr)
    mapping = {name: Sym(width, rename(name)) for name, width in names.items()}
    return substitute(expr, mapping)
