"""ISA-neutral machine-code modeling.

This package holds everything the ARM and x86 models share:

* the operand algebra (:mod:`repro.isa.operands`),
* the :class:`~repro.isa.instruction.Instruction` record and its
  metadata protocol,
* the ALU abstraction (:mod:`repro.isa.alu`) through which every
  instruction's semantics is written exactly once and then run either
  concretely (Python ints — drives the DBT's host interpreter and the
  MiniC oracle) or symbolically (IR expressions — drives verification),
* machine-state protocols and the step-outcome records
  (:mod:`repro.isa.state`).
"""

from repro.isa.alu import ALU, ConcreteALU, SymbolicALU
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg
from repro.isa.state import BranchKind, BranchOutcome, MachineState, StepOutcome

__all__ = [
    "ALU",
    "ConcreteALU",
    "SymbolicALU",
    "Instruction",
    "Imm",
    "Label",
    "Mem",
    "Reg",
    "ShiftedReg",
    "BranchKind",
    "BranchOutcome",
    "MachineState",
    "StepOutcome",
]
