"""Operand algebra shared by the ARM and x86 models.

The paper distinguishes exactly three operand types — register, memory,
immediate — plus branch labels; ARM additionally has the "flexible
second operand" (a register with an inline shift).  A single
:class:`Mem` form covers both ISAs' compiler-emitted addressing modes:
``base + index * scale + disp`` (x86 SIB) and ``[base, #disp]`` /
``[base, index, lsl #s]`` (ARM), which is also the normalized form the
learner's address mapper works on (paper Section 3.2).

Memory operands carry an optional ``var`` annotation: the name of the
compiler-IR variable they access.  This models LLVM-IR variable names in
debug output and is what the learner's memory-operand mapping keys on.
The annotation is metadata: it does not participate in equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand (stored as a Python int, signed allowed)."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class SymImm:
    """A *parameterized* immediate, used in learned-rule templates.

    ``expr`` is a small hashable AST over immediate slots::

        ("slot", "i0")          the value bound to guest slot i0
        ("const", 42)           a literal
        ("neg", x) ("not", x)   unary ops
        ("add"|"sub"|"mul"|"and"|"or"|"xor"|"shl"|"shr", x, y)

    During rule verification, slots evaluate to fresh 32-bit symbols (so
    the proved equivalence holds for *every* immediate value); during
    rule application they evaluate to the concrete values bound from the
    matched guest instructions.
    """

    expr: tuple

    def __str__(self) -> str:
        return f"#<{format_immexpr(self.expr)}>"


def format_immexpr(expr: tuple) -> str:
    kind = expr[0]
    if kind == "slot":
        return str(expr[1])
    if kind == "const":
        return str(expr[1])
    if kind in ("neg", "not"):
        return f"{kind}({format_immexpr(expr[1])})"
    return f"({format_immexpr(expr[1])} {kind} {format_immexpr(expr[2])})"


def eval_immexpr(expr: tuple, env, ops) -> object:
    """Evaluate an immediate AST.

    ``env`` maps slot names to values, ``ops`` supplies the operations
    (a dict with const/neg/not/add/sub/mul/and/or/xor/shl/shr) so the
    same AST runs over ints and over IR expressions.
    """
    kind = expr[0]
    if kind == "slot":
        return env[expr[1]]
    if kind == "const":
        return ops["const"](expr[1])
    if kind in ("neg", "not"):
        return ops[kind](eval_immexpr(expr[1], env, ops))
    return ops[kind](
        eval_immexpr(expr[1], env, ops), eval_immexpr(expr[2], env, ops)
    )


INT_IMMEXPR_OPS = {
    "const": lambda c: c & 0xFFFFFFFF,
    "neg": lambda a: (-a) & 0xFFFFFFFF,
    "not": lambda a: (~a) & 0xFFFFFFFF,
    "add": lambda a, b: (a + b) & 0xFFFFFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFFFFFF,
    "mul": lambda a, b: (a * b) & 0xFFFFFFFF,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: 0 if b >= 32 else (a << b) & 0xFFFFFFFF,
    "shr": lambda a, b: 0 if b >= 32 else (a & 0xFFFFFFFF) >> b,
}


@dataclass(frozen=True)
class ShiftedReg:
    """ARM flexible second operand: ``reg, <shift> #amount``."""

    reg: Reg
    shift: str  # "lsl" | "lsr" | "asr"
    amount: int

    def __post_init__(self) -> None:
        if self.shift not in ("lsl", "lsr", "asr"):
            raise ValueError(f"bad shift kind {self.shift!r}")
        if not 0 <= self.amount < 32:
            raise ValueError(f"bad shift amount {self.amount}")

    def __str__(self) -> str:
        return f"{self.reg}, {self.shift} #{self.amount}"


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``base + index * scale + disp``.

    ``scale`` must be a power of two (ARM encodes it as ``lsl #log2``).
    ``var`` optionally names the compiler-IR variable being accessed.
    ``disp_param``, set only in learned-rule templates, is an immediate
    AST (see :class:`SymImm`) added to ``disp``.
    """

    base: Reg | None = None
    index: Reg | None = None
    scale: int = 1
    disp: int = 0
    var: str | None = field(default=None, compare=False)
    disp_param: tuple | None = None

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            # ARM's lsl can express larger scales; allow powers of two.
            if self.scale <= 0 or self.scale & (self.scale - 1):
                raise ValueError(f"scale must be a power of two, got {self.scale}")

    def registers(self) -> tuple[Reg, ...]:
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def with_var(self, var: str | None) -> "Mem":
        return Mem(self.base, self.index, self.scale, self.disp, var,
                   self.disp_param)

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(str(self.base))
        if self.index is not None:
            scaled = str(self.index)
            if self.scale != 1:
                scaled += f"*{self.scale}"
            parts.append(scaled)
        inner = " + ".join(parts) if parts else "0"
        if self.disp:
            inner += f" {'+' if self.disp >= 0 else '-'} {abs(self.disp)}"
        return f"[{inner}]"


@dataclass(frozen=True)
class Label:
    """A branch-target label."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Reg | Imm | SymImm | ShiftedReg | Mem | Label
