"""The instruction record shared by both ISA models.

Instructions are plain data: a mnemonic plus an operand tuple.  All
per-opcode knowledge (operand roles, defs/uses, flag behaviour,
semantics) lives in the ISA modules' tables, keeping this record
ISA-neutral so the learner and the DBT can treat guest and host
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.operands import Imm, Label, Mem, Operand, Reg, ShiftedReg


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Attributes:
        mnemonic: Lower-case opcode name (e.g. ``"add"``, ``"movl"``).
        operands: Operand tuple in the ISA's canonical order (ARM:
            destination first; x86 AT&T: source first).
        line: Source line this instruction was compiled from (debug
            info; metadata, not part of equality).
        block: Id of the machine basic block the instruction belongs to
            (metadata; lets the learner detect multi-block source lines).
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    line: int | None = field(default=None, compare=False)
    block: int | None = field(default=None, compare=False)
    meta: dict | None = field(default=None, compare=False, hash=False)

    def with_operands(self, operands: tuple[Operand, ...]) -> "Instruction":
        return replace(self, operands=operands)

    def with_debug(self, line: int | None, block: int | None) -> "Instruction":
        return replace(self, line=line, block=block)

    def registers(self) -> tuple[Reg, ...]:
        """Every register mentioned by any operand, in operand order."""
        regs: list[Reg] = []
        for op in self.operands:
            if isinstance(op, Reg):
                regs.append(op)
            elif isinstance(op, ShiftedReg):
                regs.append(op.reg)
            elif isinstance(op, Mem):
                regs.extend(op.registers())
        return tuple(regs)

    def immediates(self) -> tuple[int, ...]:
        """Every immediate value mentioned (excluding Mem disp/scale)."""
        return tuple(op.value for op in self.operands if isinstance(op, Imm))

    def memory_operands(self) -> tuple[Mem, ...]:
        return tuple(op for op in self.operands if isinstance(op, Mem))

    def labels(self) -> tuple[Label, ...]:
        return tuple(op for op in self.operands if isinstance(op, Label))

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(op) for op in self.operands)
