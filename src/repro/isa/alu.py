"""The ALU abstraction: single-source instruction semantics.

Each ISA's semantics is written once against this interface.  Two
implementations exist:

* :class:`ConcreteALU` — values are Python ints canonicalized to their
  width; drives the DBT's host interpreter and test oracles.
* :class:`SymbolicALU` — values are :class:`repro.ir.Expr` trees; drives
  the verification step of rule learning.

Widths are implicit: the ISA semantics layers work almost entirely at
32 bits, dipping to 8/16 bits only via ``extract``/``zext``/``sext``.
Boolean results (comparisons) are 1-bit values.
"""

from __future__ import annotations

from typing import Protocol, TypeVar

from repro import ir
from repro.ir.expr import mask, to_signed

Value = TypeVar("Value")


class ALU(Protocol[Value]):
    """Operations an instruction-semantics function may perform."""

    def const(self, width: int, value: int) -> Value: ...

    def width_of(self, value: Value) -> int: ...

    def add(self, a: Value, b: Value) -> Value: ...

    def sub(self, a: Value, b: Value) -> Value: ...

    def mul(self, a: Value, b: Value) -> Value: ...

    def udiv(self, a: Value, b: Value) -> Value: ...

    def sdiv(self, a: Value, b: Value) -> Value: ...

    def and_(self, a: Value, b: Value) -> Value: ...

    def or_(self, a: Value, b: Value) -> Value: ...

    def xor(self, a: Value, b: Value) -> Value: ...

    def not_(self, a: Value) -> Value: ...

    def neg(self, a: Value) -> Value: ...

    def shl(self, a: Value, b: Value) -> Value: ...

    def lshr(self, a: Value, b: Value) -> Value: ...

    def ashr(self, a: Value, b: Value) -> Value: ...

    def eq(self, a: Value, b: Value) -> Value: ...

    def ne(self, a: Value, b: Value) -> Value: ...

    def ult(self, a: Value, b: Value) -> Value: ...

    def slt(self, a: Value, b: Value) -> Value: ...

    def ite(self, cond: Value, then: Value, other: Value) -> Value: ...

    def extract(self, hi: int, lo: int, a: Value) -> Value: ...

    def zext(self, width: int, a: Value) -> Value: ...

    def sext(self, width: int, a: Value) -> Value: ...

    # Boolean connectives over 1-bit values.

    def bool_and(self, a: Value, b: Value) -> Value: ...

    def bool_or(self, a: Value, b: Value) -> Value: ...

    def bool_not(self, a: Value) -> Value: ...

    # Wide helpers used by x86 idivl / imull flag semantics.

    def divmod_signed_64(self, hi: Value, lo: Value, divisor: Value
                         ) -> tuple[Value, Value]: ...

    def mul_overflow_signed(self, a: Value, b: Value) -> Value: ...


class ConcreteALU:
    """ALU over Python ints; every value is paired with its width.

    To keep the hot interpreter path cheap, values are bare ints and the
    width is tracked by the semantics layer's usage discipline: all
    general-purpose values are 32-bit, comparisons are 1-bit, and the
    narrowing/widening operations take explicit widths.
    """

    def const(self, width: int, value: int) -> int:
        return value & mask(width)

    def width_of(self, value: int) -> int:  # pragma: no cover - unused hook
        raise NotImplementedError("ConcreteALU does not track widths")

    def add(self, a: int, b: int) -> int:
        return (a + b) & 0xFFFFFFFF

    def sub(self, a: int, b: int) -> int:
        return (a - b) & 0xFFFFFFFF

    def mul(self, a: int, b: int) -> int:
        return (a * b) & 0xFFFFFFFF

    def udiv(self, a: int, b: int) -> int:
        return 0xFFFFFFFF if b == 0 else (a // b) & 0xFFFFFFFF

    def sdiv(self, a: int, b: int) -> int:
        sa, sb = to_signed(a, 32), to_signed(b, 32)
        if sb == 0:
            return 0xFFFFFFFF
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return quotient & 0xFFFFFFFF

    def and_(self, a: int, b: int) -> int:
        return a & b

    def or_(self, a: int, b: int) -> int:
        return a | b

    def xor(self, a: int, b: int) -> int:
        return a ^ b

    def not_(self, a: int) -> int:
        return ~a & 0xFFFFFFFF

    def neg(self, a: int) -> int:
        return -a & 0xFFFFFFFF

    def shl(self, a: int, b: int) -> int:
        return 0 if b >= 32 else (a << b) & 0xFFFFFFFF

    def lshr(self, a: int, b: int) -> int:
        return 0 if b >= 32 else a >> b

    def ashr(self, a: int, b: int) -> int:
        return (to_signed(a, 32) >> min(b, 31)) & 0xFFFFFFFF

    def eq(self, a: int, b: int) -> int:
        return 1 if a == b else 0

    def ne(self, a: int, b: int) -> int:
        return 1 if a != b else 0

    def ult(self, a: int, b: int) -> int:
        return 1 if a < b else 0

    def slt(self, a: int, b: int) -> int:
        return 1 if to_signed(a, 32) < to_signed(b, 32) else 0

    def ite(self, cond: int, then: int, other: int) -> int:
        return then if cond else other

    def extract(self, hi: int, lo: int, a: int) -> int:
        return (a >> lo) & mask(hi - lo + 1)

    def zext(self, width: int, a: int) -> int:
        return a

    def sext(self, width: int, a: int) -> int:
        raise NotImplementedError(
            "ConcreteALU.sext needs the source width; use sext_from"
        )

    def sext_from(self, src_width: int, dst_width: int, a: int) -> int:
        return to_signed(a, src_width) & mask(dst_width)

    def bool_and(self, a: int, b: int) -> int:
        return a & b

    def bool_or(self, a: int, b: int) -> int:
        return a | b

    def bool_not(self, a: int) -> int:
        return a ^ 1

    def divmod_signed_64(self, hi: int, lo: int, divisor: int) -> tuple[int, int]:
        dividend = to_signed((hi << 32) | lo, 64)
        sdivisor = to_signed(divisor, 32)
        if sdivisor == 0:
            return 0xFFFFFFFF, lo
        quotient = abs(dividend) // abs(sdivisor)
        if (dividend < 0) != (sdivisor < 0):
            quotient = -quotient
        remainder = dividend - quotient * sdivisor
        return quotient & 0xFFFFFFFF, remainder & 0xFFFFFFFF

    def mul_overflow_signed(self, a: int, b: int) -> int:
        product = to_signed(a, 32) * to_signed(b, 32)
        return 0 if -(1 << 31) <= product < (1 << 31) else 1


class SymbolicALU:
    """ALU over IR expressions."""

    def const(self, width: int, value: int) -> ir.Expr:
        return ir.bv(width, value)

    def width_of(self, value: ir.Expr) -> int:
        return value.width

    def add(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.add(a, b)

    def sub(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.sub(a, b)

    def mul(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.mul(a, b)

    def udiv(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.udiv(a, b)

    def sdiv(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.sdiv(a, b)

    def and_(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.and_(a, b)

    def or_(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.or_(a, b)

    def xor(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.xor(a, b)

    def not_(self, a: ir.Expr) -> ir.Expr:
        return ir.not_(a)

    def neg(self, a: ir.Expr) -> ir.Expr:
        return ir.neg(a)

    def shl(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.shl(a, b)

    def lshr(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.lshr(a, b)

    def ashr(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.ashr(a, b)

    def eq(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.eq(a, b)

    def ne(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.ne(a, b)

    def ult(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.ult(a, b)

    def slt(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.slt(a, b)

    def ite(self, cond: ir.Expr, then: ir.Expr, other: ir.Expr) -> ir.Expr:
        return ir.ite(cond, then, other)

    def extract(self, hi: int, lo: int, a: ir.Expr) -> ir.Expr:
        return ir.extract(hi, lo, a)

    def zext(self, width: int, a: ir.Expr) -> ir.Expr:
        return ir.zext(width, a)

    def sext(self, width: int, a: ir.Expr) -> ir.Expr:
        return ir.sext(width, a)

    def sext_from(self, src_width: int, dst_width: int, a: ir.Expr) -> ir.Expr:
        if a.width != src_width:
            a = ir.extract(src_width - 1, 0, a)
        return ir.sext(dst_width, a)

    def bool_and(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.and_(a, b)

    def bool_or(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        return ir.or_(a, b)

    def bool_not(self, a: ir.Expr) -> ir.Expr:
        return ir.xor(a, ir.bv(1, 1))

    def divmod_signed_64(
        self, hi: ir.Expr, lo: ir.Expr, divisor: ir.Expr
    ) -> tuple[ir.Expr, ir.Expr]:
        dividend = ir.concat(hi, lo)
        wide_divisor = ir.sext(64, divisor)
        quotient = ir.sdiv(dividend, wide_divisor)
        remainder = ir.srem(dividend, wide_divisor)
        return ir.extract(31, 0, quotient), ir.extract(31, 0, remainder)

    def mul_overflow_signed(self, a: ir.Expr, b: ir.Expr) -> ir.Expr:
        wide = ir.mul(ir.sext(64, a), ir.sext(64, b))
        narrow = ir.sext(64, ir.mul(a, b))
        return ir.ne(wide, narrow)
