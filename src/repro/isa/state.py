"""Machine-state protocol and instruction step outcomes.

A machine state provides register/flag/memory access to the semantics
functions.  The symbolic executor and the DBT's concrete interpreters
each implement this protocol with their own value type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generic, Protocol, TypeVar

from repro.isa.operands import Label

Value = TypeVar("Value")


class MachineState(Protocol[Value]):
    """State interface used by the single-source semantics."""

    def get_reg(self, name: str) -> Value: ...

    def set_reg(self, name: str, value: Value) -> None: ...

    def get_flag(self, name: str) -> Value: ...

    def set_flag(self, name: str, value: Value) -> None: ...

    def load(self, addr: Value, size: int) -> Value: ...

    def store(self, addr: Value, value: Value, size: int) -> None: ...


class BranchKind(enum.Enum):
    """Classification of control transfers, used by both the learner's
    preparation filters (calls / indirect branches are rejected) and the
    DBT's block-ending logic."""

    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    INDIRECT = "indirect"


@dataclass
class BranchOutcome(Generic[Value]):
    """A control transfer produced by an instruction.

    Attributes:
        cond: Truth value of the branch condition (constant 1 when the
            branch is unconditional).
        target: Label for direct branches; a value (address) for
            indirect ones.
        kind: What flavour of transfer this is.
    """

    cond: Value
    target: Label | Value
    kind: BranchKind = BranchKind.JUMP


@dataclass
class StepOutcome(Generic[Value]):
    """Result of executing one instruction (``branch is None`` means
    plain fall-through)."""

    branch: BranchOutcome | None = None
    notes: dict = field(default_factory=dict)
