"""Benchmark registry and build helpers."""

from __future__ import annotations

from dataclasses import dataclass
from string import Template

from repro.benchsuite.programs import (
    astar,
    bzip2,
    gcc,
    gobmk,
    h264ref,
    hmmer,
    libquantum,
    mcf,
    omnetpp,
    perlbench,
    sjeng,
    xalancbmk,
)
from repro.minic.compile import CompiledProgram, compile_source

_MODULES = (
    perlbench, bzip2, gcc, mcf, gobmk, hmmer, sjeng, libquantum, h264ref,
    omnetpp, astar, xalancbmk,
)


@dataclass(frozen=True)
class Benchmark:
    """One synthetic CINT2006 component."""

    name: str
    description: str
    template: str
    test_params: dict
    ref_params: dict

    def source(self, workload: str = "ref") -> str:
        params = self.ref_params if workload == "ref" else self.test_params
        return Template(self.template).substitute(params)


BENCHMARKS: dict[str, Benchmark] = {
    module.NAME: Benchmark(
        module.NAME,
        module.DESCRIPTION,
        module.TEMPLATE,
        module.TEST_PARAMS,
        module.REF_PARAMS,
    )
    for module in _MODULES
}

BENCHMARK_NAMES = tuple(BENCHMARKS)


def benchmark_source(name: str, workload: str = "ref") -> str:
    """MiniC source text for one benchmark at one workload."""
    return BENCHMARKS[name].source(workload)


def build_benchmark(
    name: str,
    target: str = "arm",
    opt_level: int = 2,
    style: str = "llvm",
    workload: str = "ref",
) -> CompiledProgram:
    """Compile one benchmark for one target/level/style/workload."""
    return compile_source(
        benchmark_source(name, workload), target, opt_level, style
    )


def build_learning_pair(
    name: str,
    opt_level: int = 2,
    style: str = "llvm",
    workload: str = "ref",
) -> tuple[CompiledProgram, CompiledProgram]:
    """(guest ARM build, host x86 build) for rule learning."""
    source = benchmark_source(name, workload)
    return (
        compile_source(source, "arm", opt_level, style),
        compile_source(source, "x86", opt_level, style),
    )
