"""xalancbmk analog: tree transformation (XSLT-ish rewriting)."""

NAME = "xalancbmk"
DESCRIPTION = "array-encoded document tree: match templates and rewrite"

TEMPLATE = r"""
int node_tag[1024];
int node_child[1024];
int node_sibling[1024];
int node_value[1024];
int node_count;
int out_buffer[2048];
int out_len;

int add_node(int tag, int value) {
  int id = node_count;
  node_tag[id] = tag;
  node_value[id] = value;
  node_child[id] = 0 - 1;
  node_sibling[id] = 0 - 1;
  node_count += 1;
  return id;
}

int attach(int parent, int child) {
  if (node_child[parent] < 0) {
    node_child[parent] = child;
    return child;
  }
  int cursor = node_child[parent];
  while (node_sibling[cursor] >= 0) {
    cursor = node_sibling[cursor];
  }
  node_sibling[cursor] = child;
  return child;
}

int build_tree(int seed, int parent, int depth, int fanout) {
  if (depth == 0) {
    return seed;
  }
  int i = 0;
  while (i < fanout) {
    seed = seed * 1103515245 + 12345;
    int tag = (seed >> 16) & 7;
    int node = add_node(tag, (seed >> 8) & 255);
    attach(parent, node);
    seed = build_tree(seed, node, depth - 1, fanout);
    i += 1;
  }
  return seed;
}

int emit_output(int value) {
  out_buffer[out_len] = value;
  out_len += 1;
  return out_len;
}

int transform_one(int node) {
  // Template rules: tag decides the rewriting action.
  int tag = node_tag[node];
  if (tag == 0) {
    emit_output(node_value[node] * 2);
    transform_list(node_child[node]);
  } else if (tag == 1) {
    // reverse children order into the output
    int kids[16];
    int n = 0;
    int c = node_child[node];
    while (c >= 0 && n < 16) {
      kids[n] = c;
      n += 1;
      c = node_sibling[c];
    }
    while (n > 0) {
      n -= 1;
      transform_one(kids[n]);
    }
  } else if (tag < 5) {
    emit_output(tag * 100 + (node_value[node] & 63));
    transform_list(node_child[node]);
  } else {
    transform_list(node_child[node]);
  }
  return out_len;
}

int transform_list(int node) {
  while (node >= 0) {
    transform_one(node);
    node = node_sibling[node];
  }
  return out_len;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    node_count = 0;
    out_len = 0;
    int root = add_node(0, 0);
    seed = build_tree(seed, root, $depth, $fanout);
    transform_one(root);
    int i = 0;
    int check = 0;
    while (i < out_len) {
      check = check * 13 + out_buffer[i];
      i += 1;
    }
    total += check & 0xfffff;
    total += out_len;
    round += 1;
  }
  return total & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 71, "rounds": 1, "depth": 3, "fanout": 3}
REF_PARAMS = {"seed": 71, "rounds": 8, "depth": 5, "fanout": 3}
