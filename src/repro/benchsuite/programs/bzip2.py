"""bzip2 analog: run-length encoding + move-to-front compression."""

NAME = "bzip2"
DESCRIPTION = "RLE + move-to-front coder over a byte buffer"

TEMPLATE = r"""
char input[512];
char rle[600];
char mtf[600];
char alphabet[32];

int generate(int seed, int n) {
  int i = 0;
  int run = 0;
  int value = 0;
  while (i < n) {
    if (run == 0) {
      seed = seed * 1103515245 + 12345;
      value = (seed >> 16) & 15;
      run = ((seed >> 8) & 7) + 1;
    }
    input[i] = value;
    run -= 1;
    i += 1;
  }
  return seed;
}

int rle_encode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    int value = input[i];
    int run = 1;
    while (i + run < n && input[i + run] == value && run < 255) {
      run += 1;
    }
    rle[out] = value;
    rle[out + 1] = run;
    out += 2;
    i += run;
  }
  return out;
}

int mtf_encode(int n) {
  int i = 0;
  while (i < 32) {
    alphabet[i] = i;
    i += 1;
  }
  i = 0;
  int check = 0;
  while (i < n) {
    int value = rle[i];
    int j = 0;
    while (alphabet[j] != value) {
      j += 1;
    }
    mtf[i] = j;
    check += j;
    while (j > 0) {
      alphabet[j] = alphabet[j - 1];
      j -= 1;
    }
    alphabet[0] = value;
    i += 1;
  }
  return check;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    seed = generate(seed, $size);
    int encoded = rle_encode($size);
    total += mtf_encode(encoded);
    total += encoded;
    round += 1;
  }
  return total;
}
"""

TEST_PARAMS = {"seed": 99, "rounds": 1, "size": 64}
REF_PARAMS = {"seed": 99, "rounds": 8, "size": 400}
