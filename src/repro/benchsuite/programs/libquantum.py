"""libquantum analog: gate operations over a simulated quantum register."""

NAME = "libquantum"
DESCRIPTION = "bit-level gate simulation (cnot / toffoli / phase) over basis states"

TEMPLATE = r"""
int amplitudes[1024];
int states[1024];

int gate_cnot(int n, int control, int target) {
  int i = 0;
  int cmask = 1 << control;
  int tmask = 1 << target;
  while (i < n) {
    int basis = states[i];
    if (basis & cmask) {
      states[i] = basis ^ tmask;
    }
    i += 1;
  }
  return n;
}

int gate_toffoli(int n, int c1, int c2) {
  int i = 0;
  int mask = (1 << c1) | (1 << c2);
  while (i < n) {
    int basis = states[i];
    if ((basis & mask) == mask) {
      states[i] = basis ^ 1;
    }
    i += 1;
  }
  return n;
}

int gate_phase(int n, int target) {
  int i = 0;
  int tmask = 1 << target;
  while (i < n) {
    if (states[i] & tmask) {
      amplitudes[i] = 0 - amplitudes[i];
    }
    i += 1;
  }
  return n;
}

int main(void) {
  int n = $states;
  int seed = $seed;
  int i = 0;
  while (i < n) {
    states[i] = i;
    amplitudes[i] = (i & 7) + 1;
    i += 1;
  }
  int step = 0;
  while (step < $steps) {
    seed = seed * 1103515245 + 12345;
    int kind = (seed >> 16) & 3;
    int a = (seed >> 8) & 7;
    int b = (seed >> 4) & 7;
    if (a == b) {
      b = (b + 1) & 7;
    }
    if (kind == 0) {
      gate_cnot(n, a, b);
    } else if (kind == 1) {
      gate_toffoli(n, a, b);
    } else {
      gate_phase(n, a);
    }
    step += 1;
  }
  int check = 0;
  i = 0;
  while (i < n) {
    check = check * 5 + (states[i] ^ amplitudes[i]);
    i += 1;
  }
  return check & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 41, "states": 48, "steps": 6}
REF_PARAMS = {"seed": 41, "states": 512, "steps": 60}
