"""The twelve benchmark program templates (one module per program)."""

from repro.benchsuite.programs import (
    astar,
    bzip2,
    gcc,
    gobmk,
    h264ref,
    hmmer,
    libquantum,
    mcf,
    omnetpp,
    perlbench,
    sjeng,
    xalancbmk,
)

__all__ = [
    "astar",
    "bzip2",
    "gcc",
    "gobmk",
    "h264ref",
    "hmmer",
    "libquantum",
    "mcf",
    "omnetpp",
    "perlbench",
    "sjeng",
    "xalancbmk",
]
