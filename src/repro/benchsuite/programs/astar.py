"""astar analog: grid pathfinding with a cost-ordered frontier."""

NAME = "astar"
DESCRIPTION = "best-first grid search with Manhattan heuristic"

TEMPLATE = r"""
char grid[1024];
int cost[1024];
int frontier[1024];
int frontier_len;

int heuristic(int pos, int goal, int width) {
  int px = pos % width;
  int py = pos / width;
  int gx = goal % width;
  int gy = goal / width;
  int dx = px - gx;
  int dy = py - gy;
  if (dx < 0) {
    dx = 0 - dx;
  }
  if (dy < 0) {
    dy = 0 - dy;
  }
  return dx + dy;
}

int push_frontier(int pos) {
  frontier[frontier_len] = pos;
  frontier_len += 1;
  return frontier_len;
}

int pop_best(int goal, int width) {
  int best_index = 0;
  int best_score = 1 << 30;
  int i = 0;
  while (i < frontier_len) {
    int pos = frontier[i];
    int score = cost[pos] + heuristic(pos, goal, width);
    if (score < best_score) {
      best_score = score;
      best_index = i;
    }
    i += 1;
  }
  int best = frontier[best_index];
  frontier_len -= 1;
  frontier[best_index] = frontier[frontier_len];
  return best;
}

int search(int start, int goal, int width, int size) {
  int i = 0;
  while (i < size) {
    cost[i] = 1 << 30;
    i += 1;
  }
  cost[start] = 0;
  frontier_len = 0;
  push_frontier(start);
  int expanded = 0;
  while (frontier_len > 0) {
    int pos = pop_best(goal, width);
    expanded += 1;
    if (pos == goal) {
      return cost[goal] * 1000 + expanded;
    }
    int dirs[4];
    dirs[0] = 1;
    dirs[1] = 0 - 1;
    dirs[2] = width;
    dirs[3] = 0 - width;
    int d = 0;
    while (d < 4) {
      int next = pos + dirs[d];
      if (next >= 0 && next < size && grid[next] == 0) {
        int step_cost = cost[pos] + 1;
        if (step_cost < cost[next]) {
          cost[next] = step_cost;
          push_frontier(next);
        }
      }
      d += 1;
    }
  }
  return 0 - expanded;
}

int main(void) {
  int width = $width;
  int size = width * width;
  int seed = $seed;
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    int i = 0;
    while (i < size) {
      seed = seed * 1103515245 + 12345;
      if (((seed >> 16) & 7) == 0) {
        grid[i] = 1;
      } else {
        grid[i] = 0;
      }
      i += 1;
    }
    grid[0] = 0;
    grid[size - 1] = 0;
    total += search(0, size - 1, width, size);
    round += 1;
  }
  return total & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 61, "width": 5, "rounds": 1}
REF_PARAMS = {"seed": 61, "width": 11, "rounds": 2}
