"""hmmer analog: Viterbi-style dynamic programming over a profile."""

NAME = "hmmer"
DESCRIPTION = "profile HMM Viterbi max-sum dynamic programming"

TEMPLATE = r"""
int match_score[512];
int insert_score[512];
int row_match[64];
int row_insert[64];
int prev_match[64];
int prev_insert[64];
char sequence[256];

int max2(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

int viterbi(int seq_len, int states) {
  int j = 0;
  while (j < states) {
    prev_match[j] = -10000;
    prev_insert[j] = -10000;
    j += 1;
  }
  prev_match[0] = 0;
  int i = 0;
  while (i < seq_len) {
    int symbol = sequence[i];
    j = 1;
    row_match[0] = -10000;
    row_insert[0] = prev_insert[0] - 1;
    while (j < states) {
      int emit = match_score[(j << 3) + (symbol & 7)];
      int stay = prev_insert[j] - 2;
      int move = prev_match[j - 1] + emit;
      int enter = prev_insert[j - 1] + emit - 1;
      row_match[j] = max2(move, enter);
      row_insert[j] = max2(stay, row_match[j] - 3);
      j += 1;
    }
    j = 0;
    while (j < states) {
      prev_match[j] = row_match[j];
      prev_insert[j] = row_insert[j];
      j += 1;
    }
    i += 1;
  }
  int best = -10000;
  j = 0;
  while (j < states) {
    best = max2(best, prev_match[j]);
    j += 1;
  }
  return best;
}

int main(void) {
  int seed = $seed;
  int i = 0;
  while (i < 512) {
    seed = seed * 1103515245 + 12345;
    match_score[i] = ((seed >> 16) & 15) - 4;
    insert_score[i] = ((seed >> 20) & 7) - 3;
    i += 1;
  }
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    i = 0;
    while (i < $seqlen) {
      seed = seed * 1103515245 + 12345;
      sequence[i] = (seed >> 16) & 7;
      i += 1;
    }
    total += viterbi($seqlen, $states);
    round += 1;
  }
  return total & 0x7fffffff;
}
"""

TEST_PARAMS = {"seed": 21, "rounds": 1, "seqlen": 12, "states": 8}
REF_PARAMS = {"seed": 21, "rounds": 2, "seqlen": 80, "states": 28}
