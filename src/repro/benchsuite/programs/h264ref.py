"""h264ref analog: video kernels (SAD block match + butterfly transform)."""

NAME = "h264ref"
DESCRIPTION = "sum-of-absolute-differences motion search + 4x4 transform"

TEMPLATE = r"""
char frame_a[1024];
char frame_b[1024];
int block[16];
int coeffs[16];

int sad_block(int apos, int bpos, int width) {
  int total = 0;
  int y = 0;
  while (y < 4) {
    int x = 0;
    while (x < 4) {
      int pa = frame_a[apos + y * width + x];
      int pb = frame_b[bpos + y * width + x];
      int d = pa - pb;
      int mask = d >> 31;
      total += (d ^ mask) - mask;
      x += 1;
    }
    y += 1;
  }
  return total;
}

int best_match(int ax, int ay, int range, int width) {
  int best = 1 << 30;
  int dy = 0 - range;
  while (dy <= range) {
    int dx = 0 - range;
    while (dx <= range) {
      int bx = ax + dx;
      int by = ay + dy;
      if (bx >= 0 && by >= 0 && bx + 4 <= width && by + 4 <= width) {
        int cost = sad_block(ay * width + ax, by * width + bx, width);
        cost += (dx & 7) + (dy & 7);
        if (cost < best) {
          best = cost;
        }
      }
      dx += 1;
    }
    dy += 1;
  }
  return best;
}

int transform4x4(void) {
  int i = 0;
  while (i < 4) {
    int s0 = block[i * 4] + block[i * 4 + 3];
    int s1 = block[i * 4 + 1] + block[i * 4 + 2];
    int d0 = block[i * 4] - block[i * 4 + 3];
    int d1 = block[i * 4 + 1] - block[i * 4 + 2];
    coeffs[i * 4] = s0 + s1;
    coeffs[i * 4 + 1] = (d0 << 1) + d1;
    coeffs[i * 4 + 2] = s0 - s1;
    coeffs[i * 4 + 3] = d0 - (d1 << 1);
    i += 1;
  }
  int check = 0;
  i = 0;
  while (i < 16) {
    check += coeffs[i] * coeffs[i];
    i += 1;
  }
  return check;
}

int main(void) {
  int width = $width;
  int seed = $seed;
  int i = 0;
  while (i < width * width) {
    seed = seed * 1103515245 + 12345;
    frame_a[i] = (seed >> 16) & 255;
    frame_b[i] = (seed >> 12) & 255;
    i += 1;
  }
  int total = 0;
  int y = 0;
  while (y + 4 <= width) {
    int x = 0;
    while (x + 4 <= width) {
      total += best_match(x, y, $range, width);
      x += 4;
    }
    y += 4;
  }
  i = 0;
  while (i < 16) {
    block[i] = frame_a[i] - frame_b[i];
    i += 1;
  }
  total += transform4x4();
  return total & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 17, "width": 8, "range": 1}
REF_PARAMS = {"seed": 17, "width": 24, "range": 2}
