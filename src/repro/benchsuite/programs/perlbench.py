"""perlbench analog: string hashing + pattern matching interpreter."""

NAME = "perlbench"
DESCRIPTION = "string hash table + glob-style pattern matcher"

TEMPLATE = r"""
char text[256];
char pattern[16];
int buckets[64];

int hash_string(char *s, int n) {
  int h = 5381;
  int i = 0;
  while (i < n) {
    h = h * 33 + s[i];
    i += 1;
  }
  if (h < 0) {
    h = 0 - h;
  }
  return h;
}

int match_here(char *p, char *s, int plen, int slen) {
  int pi = 0;
  int si = 0;
  while (pi < plen) {
    int pc = p[pi];
    if (pc == '*') {
      int rest = plen - pi - 1;
      int k = si;
      while (k <= slen) {
        if (match_here(p + pi + 1, s + k, rest, slen - k)) {
          return 1;
        }
        k += 1;
      }
      return 0;
    }
    if (si >= slen) {
      return 0;
    }
    if (pc != '?' && pc != s[si]) {
      return 0;
    }
    pi += 1;
    si += 1;
  }
  if (si == slen) {
    return 1;
  }
  return 0;
}

int fill_text(int seed, int n) {
  int i = 0;
  while (i < n) {
    seed = seed * 1103515245 + 12345;
    int c = (seed >> 16) & 15;
    text[i] = 'a' + c;
    i += 1;
  }
  return seed;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int round = 0;
  pattern[0] = 'a';
  pattern[1] = '*';
  pattern[2] = 'b';
  pattern[3] = '?';
  pattern[4] = 'c';
  while (round < $rounds) {
    seed = fill_text(seed, $textlen);
    int i = 0;
    while (i + 8 <= $textlen) {
      int h = hash_string(text + i, 8);
      int slot = h & 63;
      buckets[slot] = buckets[slot] + 1;
      if (match_here(pattern, text + i, 5, 8)) {
        total += 1;
      }
      i += 1;
    }
    round += 1;
  }
  int check = 0;
  int b = 0;
  while (b < 64) {
    check = check * 31 + buckets[b];
    b += 1;
  }
  return total * 1000 + (check & 511);
}
"""

TEST_PARAMS = {"seed": 7, "rounds": 1, "textlen": 32}
REF_PARAMS = {"seed": 7, "rounds": 6, "textlen": 120}
