"""gcc analog: tokenizer + recursive-descent expression compiler/VM."""

NAME = "gcc"
DESCRIPTION = "expression tokenizer, parser, and stack-machine evaluator"

TEMPLATE = r"""
char source[128];
int tokens[128];
int token_count;
int cursor;
int code[256];
int code_len;
int stack[64];

int emit(int op, int arg) {
  code[code_len] = op;
  code[code_len + 1] = arg;
  code_len += 2;
  return code_len;
}

int tokenize(int n) {
  int i = 0;
  token_count = 0;
  while (i < n) {
    int c = source[i];
    if (c >= '0' && c <= '9') {
      int value = 0;
      while (i < n && source[i] >= '0' && source[i] <= '9') {
        value = value * 10 + (source[i] - '0');
        i += 1;
      }
      tokens[token_count] = 256 + value;
      token_count += 1;
      continue;
    }
    tokens[token_count] = c;
    token_count += 1;
    i += 1;
  }
  return token_count;
}

int parse_primary(void) {
  int tok = tokens[cursor];
  if (tok == '(') {
    cursor += 1;
    parse_expr();
    cursor += 1;
    return 0;
  }
  cursor += 1;
  emit(1, tok - 256);
  return 0;
}

int parse_term(void) {
  parse_primary();
  while (cursor < token_count && (tokens[cursor] == '*')) {
    cursor += 1;
    parse_primary();
    emit(3, 0);
  }
  return 0;
}

int parse_expr(void) {
  parse_term();
  while (cursor < token_count &&
         (tokens[cursor] == '+' || tokens[cursor] == '-')) {
    int op = tokens[cursor];
    cursor += 1;
    parse_term();
    if (op == '+') {
      emit(2, 0);
    } else {
      emit(4, 0);
    }
  }
  return 0;
}

int execute(void) {
  int sp = 0;
  int pc = 0;
  while (pc < code_len) {
    int op = code[pc];
    int arg = code[pc + 1];
    if (op == 1) {
      stack[sp] = arg;
      sp += 1;
    } else if (op == 2) {
      stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
      sp -= 1;
    } else if (op == 3) {
      stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
      sp -= 1;
    } else {
      stack[sp - 2] = stack[sp - 2] - stack[sp - 1];
      sp -= 1;
    }
    pc += 2;
  }
  return stack[0];
}

int build_source(int seed) {
  int i = 0;
  int n = 0;
  while (i < $terms) {
    seed = seed * 1103515245 + 12345;
    int value = (seed >> 16) & 99;
    if (value >= 10) {
      source[n] = '0' + value / 10;
      n += 1;
    }
    source[n] = '0' + value % 10;
    n += 1;
    if (i + 1 < $terms) {
      int sel = (seed >> 4) & 3;
      if (sel == 0) {
        source[n] = '+';
      } else if (sel == 1) {
        source[n] = '-';
      } else {
        source[n] = '*';
      }
      n += 1;
    }
    i += 1;
  }
  source[n] = 0;
  return n;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    seed = seed * 69069 + 1;
    int n = build_source(seed);
    tokenize(n);
    cursor = 0;
    code_len = 0;
    parse_expr();
    total += execute() & 0xffff;
    round += 1;
  }
  return total;
}
"""

TEST_PARAMS = {"seed": 3, "rounds": 1, "terms": 8}
REF_PARAMS = {"seed": 3, "rounds": 22, "terms": 18}
