"""mcf analog: Bellman-Ford relaxation over an arc-list network."""

NAME = "mcf"
DESCRIPTION = "single-source shortest path by repeated arc relaxation"

TEMPLATE = r"""
int arc_from[512];
int arc_to[512];
int arc_cost[512];
int dist[128];

int build_network(int seed, int nodes, int arcs) {
  int i = 0;
  while (i < arcs) {
    seed = seed * 1103515245 + 12345;
    int u = (seed >> 16) & (nodes - 1);
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) & (nodes - 1);
    if (u == v) {
      v = (v + 1) & (nodes - 1);
    }
    arc_from[i] = u;
    arc_to[i] = v;
    arc_cost[i] = ((seed >> 4) & 63) + 1;
    i += 1;
  }
  // Guarantee reachability with a spanning chain.
  i = 0;
  while (i + 1 < nodes) {
    arc_from[i] = i;
    arc_to[i] = i + 1;
    i += 1;
  }
  return seed;
}

int relax_all(int nodes, int arcs) {
  int changed = 0;
  int i = 0;
  while (i < arcs) {
    int u = arc_from[i];
    int du = dist[u];
    if (du < 99999999) {
      int candidate = du + arc_cost[i];
      int v = arc_to[i];
      if (candidate < dist[v]) {
        dist[v] = candidate;
        changed += 1;
      }
    }
    i += 1;
  }
  return changed;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int round = 0;
  while (round < $rounds) {
    seed = build_network(seed, $nodes, $arcs);
    int i = 0;
    while (i < $nodes) {
      dist[i] = 99999999;
      i += 1;
    }
    dist[0] = 0;
    int passes = 0;
    while (passes < $nodes) {
      if (relax_all($nodes, $arcs) == 0) {
        break;
      }
      passes += 1;
    }
    i = 0;
    while (i < $nodes) {
      total = total * 7 + (dist[i] & 1023);
      i += 1;
    }
    round += 1;
  }
  return total & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 11, "rounds": 1, "nodes": 16, "arcs": 64}
REF_PARAMS = {"seed": 11, "rounds": 4, "nodes": 64, "arcs": 400}
