"""omnetpp analog: discrete-event simulation on a binary-heap queue.

Deliberately division-heavy (modular hashing of event routing), so a
large share of its hot guest code is the hand-written assembly of
``__aeabi_idivmod`` — reproducing the paper's observation that
omnetpp's hottest blocks come from runtime-library assembly the learned
rules cannot cover (Figure 10).
"""

NAME = "omnetpp"
DESCRIPTION = "event-driven simulation: binary heap + modular routing"

TEMPLATE = r"""
int heap_time[256];
int heap_kind[256];
int heap_len;
int module_load[32];

int heap_push(int time, int kind) {
  int i = heap_len;
  heap_time[i] = time;
  heap_kind[i] = kind;
  heap_len += 1;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (heap_time[parent] <= heap_time[i]) {
      break;
    }
    int t = heap_time[parent];
    int k = heap_kind[parent];
    heap_time[parent] = heap_time[i];
    heap_kind[parent] = heap_kind[i];
    heap_time[i] = t;
    heap_kind[i] = k;
    i = parent;
  }
  return heap_len;
}

int heap_pop(void) {
  int kind = heap_kind[0];
  heap_len -= 1;
  heap_time[0] = heap_time[heap_len];
  heap_kind[0] = heap_kind[heap_len];
  int i = 0;
  while (1) {
    int left = i * 2 + 1;
    int right = left + 1;
    int smallest = i;
    if (left < heap_len && heap_time[left] < heap_time[smallest]) {
      smallest = left;
    }
    if (right < heap_len && heap_time[right] < heap_time[smallest]) {
      smallest = right;
    }
    if (smallest == i) {
      break;
    }
    int t = heap_time[smallest];
    int k = heap_kind[smallest];
    heap_time[smallest] = heap_time[i];
    heap_kind[smallest] = heap_kind[i];
    heap_time[i] = t;
    heap_kind[i] = k;
    i = smallest;
  }
  return kind;
}

int route(int event, int modules) {
  // Modular routing: every hop divides -- the division helper in the
  // guest runtime (hand-written assembly) becomes the hottest code.
  int hops = 0;
  while (event > 0) {
    int module = event % modules;
    module_load[module] += 1;
    event = event / modules;
    hops += 1;
  }
  return hops;
}

int main(void) {
  int seed = $seed;
  int now = 0;
  heap_len = 0;
  int i = 0;
  while (i < $initial) {
    seed = seed * 1103515245 + 12345;
    heap_push((seed >> 16) & 1023, (seed >> 6) & 255);
    i += 1;
  }
  int processed = 0;
  int total = 0;
  while (heap_len > 0 && processed < $events) {
    int kind = heap_pop();
    total += route(kind + processed, $modules);
    if ((kind & 3) != 0) {
      seed = seed * 1103515245 + 12345;
      now += 1;
      heap_push(now + ((seed >> 16) & 511), (seed >> 5) & 255);
    }
    processed += 1;
  }
  i = 0;
  while (i < $modules) {
    total = total * 17 + module_load[i];
    i += 1;
  }
  return total & 0x3fffffff;
}
"""

TEST_PARAMS = {"seed": 53, "initial": 8, "events": 12, "modules": 7}
REF_PARAMS = {"seed": 53, "initial": 64, "events": 700, "modules": 13}
