"""sjeng analog: alpha-beta game-tree search on a small board game."""

NAME = "sjeng"
DESCRIPTION = "negamax with alpha-beta pruning over a pile game"

TEMPLATE = r"""
int piles[8];
int nodes_visited;
int history[64];

int evaluate(int npiles) {
  int score = 0;
  int i = 0;
  while (i < npiles) {
    int p = piles[i];
    score = score ^ p;
    score += (p & 3) - 1;
    i += 1;
  }
  return score;
}

int search(int depth, int alpha, int beta) {
  nodes_visited += 1;
  if (depth == 0) {
    return evaluate($npiles);
  }
  int best = -32000;
  int i = 0;
  while (i < $npiles) {
    int available = piles[i];
    int take = 1;
    while (take <= 3 && take <= available) {
      piles[i] = available - take;
      int score = 0 - search(depth - 1, 0 - beta, 0 - alpha);
      piles[i] = available;
      if (score > best) {
        best = score;
        history[depth & 63] = i * 4 + take;
      }
      if (best > alpha) {
        alpha = best;
      }
      if (alpha >= beta) {
        take = 4;
        i = $npiles;
      } else {
        take += 1;
      }
    }
    i += 1;
  }
  if (best == -32000) {
    return evaluate($npiles);
  }
  return best;
}

int main(void) {
  int seed = $seed;
  int total = 0;
  int game = 0;
  nodes_visited = 0;
  while (game < $games) {
    int i = 0;
    while (i < $npiles) {
      seed = seed * 1103515245 + 12345;
      piles[i] = ((seed >> 16) & 7) + 1;
      i += 1;
    }
    total += search($depth, -32000, 32000);
    game += 1;
  }
  int h = 0;
  int k = 0;
  while (k < 64) {
    h = h * 3 + history[k];
    k += 1;
  }
  return (total & 0xffff) * 31 + nodes_visited % 1000 + (h & 255);
}
"""

TEST_PARAMS = {"seed": 31, "games": 1, "npiles": 3, "depth": 2}
REF_PARAMS = {"seed": 31, "games": 2, "npiles": 4, "depth": 4}
