"""gobmk analog: board-game territory evaluation on a 2D grid."""

NAME = "gobmk"
DESCRIPTION = "cellular board update + flood-fill territory counting"

TEMPLATE = r"""
char board[400];
char next[400];
char seen[400];
int work[400];

int neighbors(char *cells, int pos, int width) {
  int count = 0;
  count += cells[pos - 1];
  count += cells[pos + 1];
  count += cells[pos - width];
  count += cells[pos + width];
  count += cells[pos - width - 1];
  count += cells[pos - width + 1];
  count += cells[pos + width - 1];
  count += cells[pos + width + 1];
  return count;
}

int step(int width, int height) {
  int alive = 0;
  int y = 1;
  while (y < height - 1) {
    int x = 1;
    while (x < width - 1) {
      int pos = y * width + x;
      int n = neighbors(board, pos, width);
      int cell = board[pos];
      if (cell) {
        if (n == 2 || n == 3) {
          next[pos] = 1;
        } else {
          next[pos] = 0;
        }
      } else {
        if (n == 3) {
          next[pos] = 1;
        } else {
          next[pos] = 0;
        }
      }
      alive += next[pos];
      x += 1;
    }
    y += 1;
  }
  y = 1;
  while (y < height - 1) {
    int x = 1;
    while (x < width - 1) {
      int pos = y * width + x;
      board[pos] = next[pos];
      x += 1;
    }
    y += 1;
  }
  return alive;
}

int flood_size(int start, int width) {
  if (seen[start] || board[start]) {
    return 0;
  }
  int head = 0;
  int tail = 0;
  work[tail] = start;
  tail += 1;
  seen[start] = 1;
  int size = 0;
  while (head < tail) {
    int pos = work[head];
    head += 1;
    size += 1;
    int d = 0;
    int deltas[4];
    deltas[0] = 1;
    deltas[1] = 0 - 1;
    deltas[2] = width;
    deltas[3] = 0 - width;
    while (d < 4) {
      int neighbor = pos + deltas[d];
      if (neighbor >= 0 && neighbor < 400) {
        if (seen[neighbor] == 0 && board[neighbor] == 0) {
          seen[neighbor] = 1;
          work[tail] = neighbor;
          tail += 1;
        }
      }
      d += 1;
    }
  }
  return size;
}

int main(void) {
  int width = $width;
  int height = $height;
  int seed = $seed;
  int i = 0;
  while (i < width * height) {
    seed = seed * 1103515245 + 12345;
    board[i] = (seed >> 16) & 1;
    i += 1;
  }
  int total = 0;
  int gen = 0;
  while (gen < $generations) {
    total += step(width, height);
    gen += 1;
  }
  i = 0;
  while (i < width * height) {
    seen[i] = 0;
    i += 1;
  }
  int territory = 0;
  i = 0;
  while (i < width * height) {
    int size = flood_size(i, width);
    if (size > territory) {
      territory = size;
    }
    i += 1;
  }
  return total * 100 + territory;
}
"""

TEST_PARAMS = {"seed": 5, "width": 8, "height": 7, "generations": 1}
REF_PARAMS = {"seed": 5, "width": 20, "height": 20, "generations": 10}
