"""Synthetic SPEC CINT2006 stand-ins.

Twelve MiniC programs, one per CINT2006 component, each a small but
real program in its counterpart's domain (compression, min-cost flow,
game search, quantum simulation, video kernels, ...).  Each benchmark
has a short ``test`` and a longer ``ref`` workload, selected by
formatting the source template with workload parameters.

The suite is what the learner trains on (leave-one-out, like the
paper) and what the DBT emulates for the performance figures.
"""

from repro.benchsuite.suite import (
    BENCHMARK_NAMES,
    Benchmark,
    BENCHMARKS,
    benchmark_source,
    build_benchmark,
    build_learning_pair,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "BENCHMARKS",
    "benchmark_source",
    "build_benchmark",
    "build_learning_pair",
]
