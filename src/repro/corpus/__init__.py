"""Continuous corpus ingestion: manufactured learning fuel.

The fixed benchmark corpus caps rule yield — learning stops improving
once its same-source-line pairs are exhausted.  This subsystem keeps
the online learner fed with *novel* programs:

* :mod:`repro.corpus.grammar` / :mod:`repro.corpus.generate` — a
  seed-deterministic grammar fuzzer sampling well-typed, terminating
  MiniC programs over tunable knob configurations (*regions*);
* :mod:`repro.corpus.idioms` — a miner that harvests frequent source
  fragments from the benchsuite and recombines them (sanitized) into
  hybrid programs;
* :mod:`repro.corpus.dedup` — a persistent seen-digest store layered
  over the verification cache, so programs whose candidate windows are
  already settled never cost verification time;
* :mod:`repro.corpus.pipeline` — compile both codegen styles, digest
  candidate windows, decide fresh / duplicate / settled;
* :mod:`repro.corpus.feed` — push surviving programs through the
  gap-driven online learner, in-process or against a running
  ``repro-serve`` / ``repro-fleet`` endpoint;
* :mod:`repro.corpus.yield_ctl` — a deterministic bandit over grammar
  regions that self-throttles barren ones on marginal yield;
* :mod:`repro.corpus.diffcheck` — differential soundness harness
  (MiniC interpreter vs. compiled guest/host execution) with a
  statement-level minimizer for divergence repros;
* :mod:`repro.corpus.cli` — the ``repro-corpus`` standing-workload
  driver.

Soundness never depends on the generator: every learned rule still
passes the symbolic verifier — generation is free, verification is the
only gate.
"""

from repro.corpus.dedup import DedupDecision, SeenStore
from repro.corpus.generate import generate_program
from repro.corpus.grammar import REGIONS, GrammarConfig
from repro.corpus.pipeline import CorpusProgram, IngestPipeline, program_digest
from repro.corpus.yield_ctl import YieldController

__all__ = [
    "DedupDecision",
    "SeenStore",
    "generate_program",
    "REGIONS",
    "GrammarConfig",
    "CorpusProgram",
    "IngestPipeline",
    "program_digest",
    "YieldController",
]
