"""Seen-digest store + settlement classification for generated programs.

Dedup layers *over* the verification cache:

1. **Program identity** — the sha256 of the canonical source text.  A
   program the store has already ingested is skipped outright
   (``dup_program``) before it is even compiled.
2. **Window settlement** — a fresh program is compiled and staged, and
   its canonical candidate digests (the same keys the verification
   cache uses, :mod:`repro.learning.canon`) are checked against the
   persistent :class:`~repro.learning.cache.VerificationCache` and
   this store's own seen-window set.  A program *all* of whose windows
   are already settled cannot yield a new verdict — it is skipped
   (``all_settled``) before it costs any verification time.

The store follows the verification cache's durability discipline:
atomic fsync+rename saves, corrupt files quarantined to
``<path>.corrupt`` (the evidence survives, ingestion restarts empty),
and every entry implicitly versioned by the learning semantics version
— a bump discards the whole store as stale, because window digests are
only meaningful under the semantics that produced them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.learning.cache import SEMANTICS_VERSION, VerificationCache
from repro.obs.metrics import get_metrics

STORE_FORMAT = "repro-corpus-seen"
STORE_FILE_VERSION = 1
DEFAULT_STORE_NAME = "corpus-seen.json"


@dataclass
class SeenStats:
    programs: int = 0
    windows: int = 0
    stale: int = 0
    corrupt: int = 0


@dataclass
class DedupDecision:
    """Why one generated program was fed or skipped.

    ``verdict`` is ``fresh`` (feed it), ``dup_program`` (source text
    already ingested) or ``all_settled`` (every candidate window
    already has a verdict).  For ``fresh``, ``fresh_candidates`` says
    how many windows still need verification — partially settled
    programs are fed, but only their fresh windows cost solver time
    (the cache replays the rest).
    """

    verdict: str
    candidates: int = 0
    settled: int = 0

    @property
    def fresh_candidates(self) -> int:
        return self.candidates - self.settled

    @property
    def skipped(self) -> bool:
        return self.verdict != "fresh"


class SeenStore:
    """Persistent program-digest + window-digest memory."""

    def __init__(self, path: str | os.PathLike | None = None,
                 semantics_version: int = SEMANTICS_VERSION) -> None:
        self.path = Path(path) if path is not None else None
        self.semantics_version = semantics_version
        self.stats = SeenStats()
        self._programs: dict[str, dict] = {}
        self._windows: set[str] = set()
        self._dirty = False
        if self.path is not None and self.path.exists():
            self._load()

    @classmethod
    def at_dir(cls, directory: str | os.PathLike,
               name: str = DEFAULT_STORE_NAME) -> "SeenStore":
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        return cls(root / name)

    def __len__(self) -> int:
        return len(self._programs)

    @property
    def windows(self) -> int:
        return len(self._windows)

    def seen_program(self, digest: str) -> bool:
        return digest in self._programs

    def program_meta(self, digest: str) -> dict | None:
        return self._programs.get(digest)

    def add_program(self, digest: str, **meta) -> None:
        self._programs[digest] = dict(meta)
        self._dirty = True

    def seen_window(self, digest: str) -> bool:
        return digest in self._windows

    def add_windows(self, digests) -> None:
        before = len(self._windows)
        self._windows.update(digests)
        if len(self._windows) != before:
            self._dirty = True

    # -- classification ------------------------------------------------------

    def classify(self, program_digest: str, candidate_digests,
                 cache: VerificationCache | None = None) -> DedupDecision:
        """Feed-or-skip decision for one staged program."""
        if self.seen_program(program_digest):
            decision = DedupDecision(verdict="dup_program",
                                     candidates=len(candidate_digests))
        else:
            settled = sum(
                1 for digest in candidate_digests
                if digest in self._windows
                or (cache is not None and digest in cache)
            )
            if candidate_digests and settled == len(candidate_digests):
                decision = DedupDecision(
                    verdict="all_settled",
                    candidates=len(candidate_digests),
                    settled=settled,
                )
            else:
                decision = DedupDecision(
                    verdict="fresh",
                    candidates=len(candidate_digests),
                    settled=settled,
                )
        get_metrics().inc(f"corpus.dedup.{decision.verdict}")
        return decision

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path) as fp:
                document = json.load(fp)
        except OSError:
            self._dirty = True
            return
        except json.JSONDecodeError:
            self._quarantine_corrupt()
            return
        if (
            not isinstance(document, dict)
            or document.get("format") != STORE_FORMAT
            or document.get("version") != STORE_FILE_VERSION
            or not isinstance(document.get("programs"), dict)
            or not isinstance(document.get("windows"), list)
        ):
            self._quarantine_corrupt()
            return
        if document.get("semantics") != self.semantics_version:
            # Window digests are functions of the learning semantics;
            # a bump makes every stored digest meaningless.
            self.stats.stale += len(document["programs"])
            self._dirty = True
            return
        self._programs = document["programs"]
        self._windows = set(document["windows"])

    def _quarantine_corrupt(self) -> None:
        quarantine = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, quarantine)
        except OSError:
            pass
        self.stats.corrupt += 1
        get_metrics().inc("corpus.store.corrupt")
        self._dirty = True

    def save(self) -> None:
        """Atomic fsync+rename persistence, like the verify cache."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "format": STORE_FORMAT,
            "version": STORE_FILE_VERSION,
            "semantics": self.semantics_version,
            "programs": self._programs,
            "windows": sorted(self._windows),
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as fp:
            json.dump(payload, fp)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, self.path)
        self._dirty = False
