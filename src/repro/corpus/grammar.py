"""Grammar knobs: what kind of MiniC programs the fuzzer samples.

A :class:`GrammarConfig` is one point in the generator's knob space —
program size, expression depth, and which language features are in
play.  :data:`REGIONS` names the standing configurations the yield
controller arbitrates between: each region emphasizes a different
instruction-selection surface (deep arithmetic, bit manipulation,
branches, loops, memory traffic, calls, byte-sized data), because
rule novelty comes from instruction *shapes*, not operand values —
registers and immediates are parameterized away by the learner.

Configs are frozen and hashable: the bandit keys its arms on them, and
the generator derives nothing from ambient state — all randomness is
the caller's seeded ``random.Random``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GrammarConfig:
    """One grammar region: size bounds plus feature toggles.

    ``stmt_weights`` maps statement kinds to relative sampling weights;
    kinds whose feature flag is off are skipped regardless of weight.
    """

    #: Helper functions besides ``main`` (callers pick 0..max).
    max_helpers: int = 1
    #: Statements per body at nesting depth 0 (halved per level).
    max_stmts: int = 8
    #: Expression tree depth.
    max_expr_depth: int = 3
    #: Constant loop trip counts are sampled from [1, loop_iters].
    loop_iters: int = 6
    #: int-array length; a power of two so indices mask in-bounds.
    array_len: int = 8
    #: char-array length (byte loads/stores), power of two.
    char_array_len: int = 16
    #: Scalar int variables declared up front in each function.
    scalars: int = 4

    # -- feature toggles ------------------------------------------------------
    arrays: bool = True
    chars: bool = False
    globals_: bool = False
    calls: bool = False
    division: bool = False
    loops: bool = True
    branches: bool = True
    logical: bool = False

    #: statement kind -> relative weight (kind gated by its feature).
    stmt_weights: tuple[tuple[str, int], ...] = (
        ("assign", 5),
        ("compound", 4),
        ("decl", 2),
        ("array_store", 3),
        ("char_store", 2),
        ("if", 3),
        ("for", 2),
        ("while", 1),
        ("call", 2),
    )

    #: Recombine mined benchsuite idioms instead of pure grammar
    #: sampling (the ``idioms`` region).
    idiom_recombine: bool = False

    def weight(self, kind: str) -> int:
        for name, value in self.stmt_weights:
            if name == kind:
                return value
        return 0


_BASE = GrammarConfig()

#: The standing grammar regions the yield controller arbitrates over.
REGIONS: dict[str, GrammarConfig] = {
    # Deep straight-line arithmetic: long dependent expression chains
    # on one source line are where multi-instruction rule shapes live.
    "arith": replace(
        _BASE, arrays=False, loops=False, branches=False,
        max_expr_depth=4, max_stmts=10, scalars=6,
    ),
    # Bit manipulation (shift/and/or/xor/invert combinations).
    "bitops": replace(
        _BASE, arrays=False, loops=False, branches=False,
        max_expr_depth=4, max_stmts=10, scalars=6, division=False,
    ),
    # Branch-heavy: nested ifs, comparisons and logical connectives
    # materialized as values.
    "branchy": replace(
        _BASE, arrays=False, loops=False, branches=True, logical=True,
        max_expr_depth=3, max_stmts=8,
    ),
    # Loop nests with breaks/continues over scalar state.
    "loops": replace(
        _BASE, arrays=False, loops=True, branches=True,
        max_expr_depth=2, max_stmts=6,
    ),
    # Word-sized memory traffic through arrays (masked indices).
    "arrays": replace(
        _BASE, arrays=True, loops=True, max_expr_depth=2, max_stmts=7,
    ),
    # Byte-sized loads/stores (ldrb/strb shapes) through char arrays.
    "bytes": replace(
        _BASE, arrays=True, chars=True, loops=True,
        max_expr_depth=2, max_stmts=7,
    ),
    # Globals: absolute-address loads/stores.
    "globals": replace(
        _BASE, arrays=True, globals_=True, loops=True,
        max_expr_depth=2, max_stmts=7,
    ),
    # Division / modulo (runtime-call shapes on ARM).
    "divmod": replace(
        _BASE, arrays=False, loops=False, branches=True, division=True,
        max_expr_depth=3, max_stmts=8,
    ),
    # Helper-function calls (argument marshalling around calls).
    "calls": replace(
        _BASE, arrays=False, loops=True, calls=True, max_helpers=2,
        max_expr_depth=2, max_stmts=6,
    ),
    # Everything at once.
    "mixed": replace(
        _BASE, arrays=True, chars=True, globals_=True, calls=True,
        division=True, loops=True, branches=True, logical=True,
        max_helpers=2, max_expr_depth=3, max_stmts=8,
    ),
    # Benchsuite idiom recombination (see repro.corpus.idioms).
    "idioms": replace(_BASE, idiom_recombine=True),
}

DEFAULT_REGIONS: tuple[str, ...] = tuple(REGIONS)
