"""Differential soundness harness for generated programs.

Every corpus program is its own test vector: the MiniC TAC interpreter
is the oracle, and the compiled program must return the same 32-bit
value when the ARM build executes under the guest machine and the x86
build executes under the host machine, in both codegen styles.  A
divergence means a compiler or DBT bug — the fuzzer doubles as a
compiler/DBT fuzz harness — so the harness minimizes the program with
a brace-aware statement-level delta debugger and dumps the repro to
``corpus_failures/`` for a human.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dbt.direct import run_arm_program, run_x86_program
from repro.minic.compile import compile_source
from repro.minic.interp import run_tac
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.passes import optimize_program

_MASK = 0xFFFFFFFF
FAILURE_DIR = "corpus_failures"

_RUNNERS = {"arm": run_arm_program, "x86": run_x86_program}


@dataclass
class DiffResult:
    """Outcome of one differential check."""

    ok: bool
    oracle: int | None = None
    #: "style/target" -> returned value (present only when it ran).
    observed: dict[str, int] = field(default_factory=dict)
    #: "oracle" or "style/target" -> error string for crashes.
    errors: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"oracle={self.oracle:#x}" if self.oracle is not None
                 else "oracle=crash"]
        for key, value in self.observed.items():
            parts.append(f"{key}={value:#x}")
        for key, error in self.errors.items():
            parts.append(f"{key}: {error}")
        return " ".join(parts)


def check_source(source: str, opt_level: int = 2,
                 styles: tuple[str, ...] = ("llvm", "gcc")) -> DiffResult:
    """Interpreter oracle vs. guest/host execution, both styles."""
    try:
        tac = lower_program(parse(source))
        optimize_program(tac, opt_level)
        oracle = run_tac(tac) & _MASK
    except Exception as error:  # noqa: BLE001 - any crash is a repro
        return DiffResult(ok=False,
                          errors={"oracle": f"{type(error).__name__}: "
                                            f"{error}"})
    result = DiffResult(ok=True, oracle=oracle)
    for style in styles:
        for target, runner in _RUNNERS.items():
            key = f"{style}/{target}"
            try:
                program = compile_source(source, target, opt_level, style)
                value = runner(program).return_value & _MASK
            except Exception as error:  # noqa: BLE001
                result.ok = False
                result.errors[key] = f"{type(error).__name__}: {error}"
                continue
            result.observed[key] = value
            if value != oracle:
                result.ok = False
    return result


def _block_spans(lines: list[str]) -> list[tuple[int, int]]:
    """Candidate deletions: single statement lines plus brace-balanced
    blocks, largest candidates first so minimization converges fast."""
    spans: list[tuple[int, int]] = []
    stack: list[int] = []
    for number, line in enumerate(lines):
        opens = line.count("{")
        closes = line.count("}")
        if opens and not closes:
            stack.append(number)
        elif closes and not opens and stack:
            start = stack.pop()
            if start > 0:  # never delete the function body itself
                spans.append((start, number))
        elif not opens and not closes and line.strip().endswith(";"):
            spans.append((number, number))
    spans.sort(key=lambda span: (span[0] - span[1], span[0]))
    return spans


def _same_failure_kind(original: DiffResult, trial: DiffResult) -> bool:
    """Is ``trial`` still the bug ``original`` exhibited?

    A pure divergence must stay a pure divergence (deleting a
    declaration turns the program into a compile error — that is a
    different, uninteresting failure); a crash must keep crashing in
    the same stage set.
    """
    if trial.ok:
        return False
    if not original.errors:
        return not trial.errors
    return set(trial.errors) <= set(original.errors) and \
        bool(trial.errors)


def minimize(source: str, opt_level: int = 2, max_rounds: int = 8) -> str:
    """Shrink a failing program while it keeps failing the *same way*."""
    original = check_source(source, opt_level)
    if original.ok:
        return source
    lines = source.splitlines()
    for _ in range(max_rounds):
        shrunk = False
        for start, end in _block_spans(lines):
            trial = lines[:start] + lines[end + 1:]
            candidate = "\n".join(trial) + "\n"
            if _same_failure_kind(original,
                                  check_source(candidate, opt_level)):
                lines = trial
                shrunk = True
                break
        if not shrunk:
            break
    return "\n".join(lines) + "\n"


def dump_failure(source: str, result: DiffResult,
                 directory: str | Path = FAILURE_DIR,
                 meta: dict | None = None,
                 opt_level: int = 2) -> Path:
    """Minimize and persist one divergence repro; returns its directory."""
    from repro.corpus.pipeline import program_digest

    digest = program_digest(source)[:12]
    root = Path(directory) / digest
    root.mkdir(parents=True, exist_ok=True)
    minimized = minimize(source, opt_level)
    (root / "original.c").write_text(source)
    (root / "minimized.c").write_text(minimized)
    payload = {
        "digest": digest,
        "detail": result.describe(),
        "errors": result.errors,
        "observed": result.observed,
        "oracle": result.oracle,
        "minimized_check": check_source(minimized, opt_level).describe(),
    }
    if meta:
        payload.update(meta)
    (root / "meta.json").write_text(json.dumps(payload, indent=2) + "\n")
    return root
