"""``repro-corpus``: the standing corpus-ingestion workload.

Drives the full loop: the yield controller picks a grammar region, the
generator emits the region's next program, the ingestion pipeline
classifies it against the seen-digest store and verification cache,
and surviving programs go through a feed (in-process learning, or a
running rule-service endpoint).  The run's accounting is emitted three
ways that must agree exactly — per-event trace records
(``corpus.program`` / ``corpus.fed``), the embedded ``corpus.report``
trace event, and the JSON report written with ``--report`` — which is
what the ingest gate reconciles.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from dataclasses import dataclass, field

from repro.corpus.dedup import SeenStore
from repro.corpus.diffcheck import FAILURE_DIR, check_source, dump_failure
from repro.corpus.feed import FeedResult, LocalFeed, RemoteFeed
from repro.corpus.generate import generate_program
from repro.corpus.grammar import DEFAULT_REGIONS, REGIONS
from repro.corpus.idioms import generate_idiom_program
from repro.corpus.pipeline import IngestPipeline
from repro.corpus.yield_ctl import YieldController
from repro.learning.cache import VerificationCache
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer, tracing


@dataclass
class IngestSummary:
    """Deterministic accounting of one ingestion run."""

    seed: int = 0
    programs: int = 0
    fed: int = 0
    skipped_dup: int = 0
    skipped_settled: int = 0
    unsound: int = 0
    rules: int = 0
    novel_rules: int = 0
    published: int = 0
    verify_calls: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0
    regions: dict = field(default_factory=dict)

    _COUNT_FIELDS = (
        "programs", "fed", "skipped_dup", "skipped_settled", "unsound",
        "rules", "novel_rules", "published", "verify_calls",
    )

    @property
    def skipped(self) -> int:
        return self.skipped_dup + self.skipped_settled

    @property
    def dedup_skip_rate(self) -> float:
        return self.skipped / self.programs if self.programs else 0.0

    @property
    def novel_per_minute(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.novel_rules * 60.0 / self.elapsed_seconds

    def counts(self) -> dict:
        return {name: getattr(self, name) for name in self._COUNT_FIELDS}

    def to_json(self) -> dict:
        return dict(
            self.counts(),
            seed=self.seed,
            skipped=self.skipped,
            dedup_skip_rate=round(self.dedup_skip_rate, 4),
            novel_rules_per_min=round(self.novel_per_minute, 4),
            cache_hits=self.cache_hits,
            elapsed_seconds=round(self.elapsed_seconds, 3),
            regions=self.regions,
        )


def run_ingest(
    seed: int,
    programs: int,
    regions: tuple[str, ...] = DEFAULT_REGIONS,
    store: SeenStore | None = None,
    cache: VerificationCache | None = None,
    feed=None,
    controller: YieldController | None = None,
    budget_seconds: float | None = None,
    check_soundness: bool = False,
    failures_dir: str = FAILURE_DIR,
) -> IngestSummary:
    """Run one ingestion stream; the programmatic API under the CLI.

    Deterministic given (seed, programs, regions, store+cache state,
    feed): the yield controller advances only on recorded outcomes and
    the generator derives each program purely from its
    (seed, region, per-region index) slot.  ``budget_seconds`` is a
    wall-clock ceiling — the stream stops *early* on a slow machine
    but never reorders.
    """
    store = store if store is not None else SeenStore()
    feed = feed if feed is not None else LocalFeed(cache=cache)
    controller = controller or YieldController(regions)
    pipeline = IngestPipeline(store, cache)
    summary = IngestSummary(seed=seed)
    indices = {region: 0 for region in regions}
    tracer = get_tracer()
    start = time.perf_counter()
    with tracer.span("corpus.ingest", seed=seed, programs=programs):
        for _ in range(programs):
            if budget_seconds is not None and \
                    time.perf_counter() - start > budget_seconds:
                break
            region = controller.next_region()
            index = indices[region]
            indices[region] += 1
            config = REGIONS[region]
            if config.idiom_recombine:
                source = generate_idiom_program(config, seed, region, index)
            else:
                source = generate_program(config, seed, region, index)
            summary.programs += 1
            program = pipeline.process(source, region=region, seed=seed,
                                       index=index)
            if program.decision.skipped:
                if program.decision.verdict == "dup_program":
                    summary.skipped_dup += 1
                else:
                    summary.skipped_settled += 1
                controller.record(region, fed=False)
                continue
            if check_soundness:
                diff = check_source(source)
                if not diff.ok:
                    # A divergence is a compiler/DBT bug, not learning
                    # fuel: dump the minimized repro, never feed it.
                    dump_failure(source, diff, failures_dir,
                                 meta={"region": region, "seed": seed,
                                       "index": index})
                    summary.unsound += 1
                    get_metrics().inc("corpus.programs.unsound")
                    tracer.event("corpus.unsound", origin=program.origin,
                                 region=region)
                    controller.record(region, fed=False)
                    continue
            result: FeedResult = feed.feed(program)
            pipeline.commit(program)
            summary.fed += 1
            summary.rules += len(result.rules)
            summary.novel_rules += result.novel
            summary.published += result.published
            summary.verify_calls += result.verify_calls
            summary.cache_hits += result.cache_hits
            controller.record(region, fed=True,
                              rules=result.novel + result.published,
                              verify_calls=result.verify_calls)
    summary.elapsed_seconds = time.perf_counter() - start
    summary.regions = controller.snapshot()
    store.save()
    if cache is not None:
        cache.save()
    metrics = get_metrics()
    metrics.observe("corpus.novel_rules_per_min", summary.novel_per_minute)
    metrics.observe("corpus.dedup_skip_rate", summary.dedup_skip_rate)
    # The embedded report: the trace-side reconciliation anchor, the
    # exact analogue of learn.report for the learning pipeline.
    tracer.event("corpus.report", seed=seed, counts=summary.counts(),
                 elapsed_seconds=summary.elapsed_seconds)
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="Generate MiniC programs, dedup against settled "
                    "verification state, and feed the survivors to the "
                    "rule learner (in-process or a running service).",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="stream seed (default: 0)")
    parser.add_argument("--programs", type=int, default=60, metavar="N",
                        help="programs to draw from the stream "
                             "(default: 60)")
    parser.add_argument("--regions", default="", metavar="NAMES",
                        help="comma-separated grammar regions "
                             "(default: all)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="seen-digest store + verification cache "
                             "directory (default: in-memory, nothing "
                             "persists)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent verification cache")
    parser.add_argument("--socket", metavar="PATH",
                        help="feed a running repro-serve/repro-fleet on "
                             "this unix socket instead of learning "
                             "in-process")
    parser.add_argument("--port", type=int, metavar="N",
                        help="feed a service on this localhost TCP port")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        metavar="S", help="wall-clock ceiling for the run")
    parser.add_argument("--check-soundness", action="store_true",
                        help="differentially check every fresh program "
                             "(interpreter vs guest/host execution) and "
                             "dump divergences before feeding")
    parser.add_argument("--failures-dir", default=FAILURE_DIR,
                        metavar="DIR",
                        help="where divergence repros land "
                             f"(default: {FAILURE_DIR})")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the JSON-lines ingestion trace here")
    parser.add_argument("--report", metavar="PATH",
                        help="write the run summary as JSON here")
    parser.add_argument("--slo", metavar="PATH",
                        help="evaluate the yield objective in this TOML "
                             "file against the run (non-zero exit on "
                             "breach)")
    args = parser.parse_args(argv)

    regions = tuple(
        name.strip() for name in args.regions.split(",") if name.strip()
    ) or DEFAULT_REGIONS
    for name in regions:
        if name not in REGIONS:
            parser.error(f"unknown region {name!r} "
                         f"(have: {', '.join(REGIONS)})")

    store = SeenStore.at_dir(args.state_dir) if args.state_dir \
        else SeenStore()
    cache = None
    if args.state_dir and not args.no_cache:
        cache = VerificationCache.at_dir(f"{args.state_dir}/verify-cache")

    feed = None
    client = None
    if args.socket or args.port:
        from repro.service.client import RuleServiceClient

        client = RuleServiceClient(
            socket_path=args.socket,
            address=("127.0.0.1", args.port) if args.port else None,
        )
        feed = RemoteFeed(client)

    trace_scope = tracing(args.trace) if args.trace \
        else contextlib.nullcontext()
    with trace_scope:
        summary = run_ingest(
            seed=args.seed,
            programs=args.programs,
            regions=regions,
            store=store,
            cache=cache,
            feed=feed,
            budget_seconds=args.budget_seconds,
            check_soundness=args.check_soundness,
            failures_dir=args.failures_dir,
        )
    if client is not None:
        client.close()

    payload = summary.to_json()
    if args.report:
        with open(args.report, "w") as fp:
            json.dump(payload, fp, indent=2)
            fp.write("\n")
    print(f"repro-corpus: {summary.programs} programs "
          f"({summary.fed} fed, {summary.skipped} skipped, "
          f"{summary.unsound} unsound), "
          f"{summary.novel_rules} novel rules, "
          f"{summary.verify_calls} verify calls, "
          f"{summary.elapsed_seconds:.1f}s", file=sys.stderr)

    if args.slo:
        from repro.obs.slo import SloEngine

        engine = SloEngine.from_toml(args.slo)
        report = engine.evaluate(gauges={
            "gauge:corpus_novel_rules_per_min": summary.novel_per_minute,
        })
        for name in report["breaches"]:
            print(f"repro-corpus: SLO breach: {name}", file=sys.stderr)
        if report["breaches"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
