"""Stage generated programs and decide fresh / duplicate / settled.

One generated MiniC program flows through:

1. **digest** — sha256 of the canonical source text names the program
   (``corpus:<digest12>`` becomes its learning origin);
2. **compile** — both codegen styles (``llvm`` and ``gcc``), both
   targets, exactly like the benchsuite's learning pairs;
3. **stage** — the cheap pipeline stages (extract + paramize) produce
   the program's canonical candidate windows;
4. **classify** — the seen-digest store + verification cache decide
   whether any window could still yield a new verdict
   (:meth:`repro.corpus.dedup.SeenStore.classify`).

Programs classified ``dup_program`` short-circuit before compilation;
``all_settled`` programs are dropped after staging but before any
verification; only ``fresh`` programs reach the feeder.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.corpus.dedup import DedupDecision, SeenStore
from repro.learning.cache import VerificationCache
from repro.learning.direction import ARM_TO_X86, Direction
from repro.learning.pipeline import (
    Candidate,
    LearningReport,
    _extract_stage,
    _paramize_stage,
)
from repro.minic.compile import CompiledProgram, compile_source
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

#: Both codegen styles, like the paper's compiler matrix.
CORPUS_STYLES = ("llvm", "gcc")


def program_digest(source: str) -> str:
    """Stable identity of one program: sha256 of its source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def corpus_origin(digest: str) -> str:
    """The ``origin`` tag corpus-fed rules carry (stable, name-spaced
    so obs.report never misfiles them under benchmark names)."""
    return f"corpus:{digest[:12]}"


@dataclass
class CorpusProgram:
    """One staged program: source, builds, candidate windows."""

    region: str
    seed: int
    index: int
    source: str
    digest: str
    #: style -> (guest ARM build, host x86 build)
    builds: dict[str, tuple[CompiledProgram, CompiledProgram]] = \
        field(default_factory=dict)
    #: style -> staged verify-stage work items
    candidates: dict[str, list[Candidate]] = field(default_factory=dict)
    decision: DedupDecision | None = None

    @property
    def origin(self) -> str:
        return corpus_origin(self.digest)

    def candidate_digests(self) -> list[str]:
        """Unique canonical window digests across both styles."""
        seen: dict[str, None] = {}
        for style_candidates in self.candidates.values():
            for candidate in style_candidates:
                seen.setdefault(candidate.digest, None)
        return list(seen)


class IngestPipeline:
    """compile → stage → classify for a stream of generated programs."""

    def __init__(
        self,
        store: SeenStore,
        cache: VerificationCache | None = None,
        styles: tuple[str, ...] = CORPUS_STYLES,
        opt_level: int = 2,
        direction: Direction = ARM_TO_X86,
    ) -> None:
        self.store = store
        self.cache = cache
        self.styles = styles
        self.opt_level = opt_level
        self.direction = direction

    def stage(self, source: str, region: str = "", seed: int = 0,
              index: int = 0) -> CorpusProgram:
        """Compile both styles and stage candidate windows."""
        digest = program_digest(source)
        program = CorpusProgram(region=region, seed=seed, index=index,
                                source=source, digest=digest)
        tracer = get_tracer()
        with tracer.span("corpus.stage", origin=program.origin,
                         region=region):
            for style in self.styles:
                guest = compile_source(source, "arm", self.opt_level, style)
                host = compile_source(source, "x86", self.opt_level, style)
                program.builds[style] = (guest, host)
                # Throwaway report, trace-silent: staging wants the
                # candidate windows for dedup classification; learning
                # accounting happens when (and only if) the program is
                # fed, so these stages must not emit learn.* events.
                report = LearningReport(benchmark=program.origin)
                pairs = _extract_stage(guest, host, self.direction,
                                       report, trace=False)
                program.candidates[style] = _paramize_stage(
                    pairs, self.direction, report, trace=False
                )
        metrics = get_metrics()
        metrics.inc("corpus.programs.staged")
        metrics.inc("corpus.candidates.staged",
                    len(program.candidate_digests()))
        return program

    def process(self, source: str, region: str = "", seed: int = 0,
                index: int = 0) -> CorpusProgram:
        """Digest, maybe compile, classify.  Duplicate source text is
        skipped before it costs a single compile."""
        digest = program_digest(source)
        if self.store.seen_program(digest):
            program = CorpusProgram(region=region, seed=seed, index=index,
                                    source=source, digest=digest)
            program.decision = self.store.classify(digest, [], self.cache)
            self._trace_decision(program)
            return program
        program = self.stage(source, region=region, seed=seed, index=index)
        program.decision = self.store.classify(
            digest, program.candidate_digests(), self.cache
        )
        self._trace_decision(program)
        return program

    def commit(self, program: CorpusProgram) -> None:
        """Remember a fed program so the stream never re-pays for it."""
        self.store.add_program(
            program.digest,
            region=program.region,
            seed=program.seed,
            index=program.index,
            candidates=len(program.candidate_digests()),
        )
        self.store.add_windows(program.candidate_digests())

    def _trace_decision(self, program: CorpusProgram) -> None:
        decision = program.decision
        get_tracer().event(
            "corpus.program",
            origin=program.origin,
            region=program.region,
            verdict=decision.verdict,
            candidates=decision.candidates,
            settled=decision.settled,
        )
        metrics = get_metrics()
        if decision.skipped:
            metrics.inc("corpus.programs.skipped")
        else:
            metrics.inc("corpus.programs.fresh")
            metrics.inc("corpus.windows.settled", decision.settled)
