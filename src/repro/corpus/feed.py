"""Feed surviving corpus programs into the learning machinery.

Two interchangeable feeds:

* :class:`LocalFeed` — in-process, through the offline learning
  pipeline (:func:`repro.learning.pipeline.learn_rules`) with a shared
  pre-verification memo and the persistent verification cache.  Fully
  deterministic — the ingest gate's path.
* :class:`RemoteFeed` — against a running ``repro-serve`` /
  ``repro-fleet`` endpoint through the existing
  :class:`~repro.service.client.RuleServiceClient`: the server stages
  the program's builds, queues synthetic whole-function gaps, and the
  feed flushes a learning round.

Both report per-program :class:`FeedResult`\\ s carrying the program's
``corpus:<digest>`` origin, so every learned rule's provenance is the
program that taught it, never a benchmark name.

Novelty accounting lives here: a feed is seeded with the baseline rule
identities (what the benchsuite alone teaches) and counts a rule novel
the first time an identity outside that baseline appears.  Rule
identity ignores origin and line (:mod:`repro.learning.rule`), so a
corpus rediscovery of a benchsuite rule is *not* novel — exactly the
gate's definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.pipeline import CorpusProgram
from repro.learning.cache import VerificationCache
from repro.learning.canon import CandidateOutcome
from repro.learning.pipeline import LearningReport, learn_rules
from repro.learning.rule import Rule
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


@dataclass
class FeedResult:
    """What one fed program taught."""

    origin: str
    region: str
    rules: list[Rule] = field(default_factory=list)
    novel_rules: list[Rule] = field(default_factory=list)
    verify_calls: int = 0
    cache_hits: int = 0
    #: Remote feed only: rules the flushed round published (the rule
    #: objects themselves stay server-side).
    published: int = 0

    @property
    def novel(self) -> int:
        return len(self.novel_rules)


class _NoveltyTracker:
    def __init__(self, baseline: list[Rule] | None) -> None:
        self._known: set[Rule] = set(baseline or ())

    def split(self, rules: list[Rule]) -> list[Rule]:
        novel = []
        for rule in rules:
            if rule not in self._known:
                self._known.add(rule)
                novel.append(rule)
        return novel


def _trace_fed(result: FeedResult) -> None:
    get_tracer().event(
        "corpus.fed",
        origin=result.origin,
        region=result.region,
        rules=len(result.rules),
        novel=result.novel,
        published=result.published,
        verify_calls=result.verify_calls,
    )
    metrics = get_metrics()
    metrics.inc("corpus.programs.fed")
    metrics.inc("corpus.rules", len(result.rules))
    metrics.inc("corpus.rules.novel", result.novel)
    metrics.inc("corpus.verify_calls", result.verify_calls)


class LocalFeed:
    """In-process feed through the offline learning pipeline.

    Shares one pre-verification memo across all fed programs (like
    :func:`~repro.learning.pipeline.learn_corpus`) and settles verdicts
    into ``cache``, so the dedup layer sees every window this feed has
    ever paid for.
    """

    def __init__(self, cache: VerificationCache | None = None,
                 baseline: list[Rule] | None = None) -> None:
        self.cache = cache
        self.novelty = _NoveltyTracker(baseline)
        self.memo: dict[str, CandidateOutcome] = {}
        #: origin -> merged report across styles (provenance-stable).
        self.reports: dict[str, LearningReport] = {}

    def feed(self, program: CorpusProgram) -> FeedResult:
        result = FeedResult(origin=program.origin, region=program.region)
        merged = self.reports.setdefault(
            program.origin, LearningReport(benchmark=program.origin)
        )
        rules: list[Rule] = []
        for style, (guest, host) in program.builds.items():
            outcome = learn_rules(
                guest, host, benchmark=program.origin,
                cache=self.cache, _memo=self.memo,
            )
            rules.extend(outcome.rules)
            merged.merge(outcome.report)
            result.verify_calls += outcome.report.verify_calls
            result.cache_hits += outcome.report.cache_hits
        result.rules = rules
        result.novel_rules = self.novelty.split(rules)
        if self.cache is not None:
            self.cache.save()
        _trace_fed(result)
        return result


class RemoteFeed:
    """Feed through a running rule service endpoint.

    ``client`` is a connected
    :class:`~repro.service.client.RuleServiceClient`.  Each program is
    handed over with ``ingest_source`` and settled with an explicit
    ``flush`` (``flush_each=False`` leaves learning to the server's
    auto-learn scheduler).  The server owns verification and novelty
    is server-side (rule-identity publish dedup), so ``novel_rules``
    stays empty here — ``rules`` counts what the flush published.
    """

    def __init__(self, client, flush_each: bool = True) -> None:
        self.client = client
        self.flush_each = flush_each

    def feed(self, program: CorpusProgram) -> FeedResult:
        result = FeedResult(origin=program.origin, region=program.region)
        self.client.ingest_source(program.source, origin=program.origin)
        if self.flush_each:
            response = self.client.flush()
            result.published = int(response.get("rules", 0))
        _trace_fed(result)
        return result
