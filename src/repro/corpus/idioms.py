"""Benchsuite idiom mining and sanitized recombination.

Grammar sampling explores shapes uniformly; real programs do not — a
handful of expression idioms (accumulate-and-mask, shifted adds,
xor-folds) dominate, and their instruction sequences are where the
paper's high-coverage rules come from.  The miner walks the
benchsuite's ASTs, skeletonizes every pure int expression (variables
become numbered placeholders, constants stay), and counts shapes
across benchmarks.  The ``idioms`` grammar region then emits hybrid
programs whose statement bodies instantiate the most frequent
skeletons over fresh local scalars.

Sanitization happens at *mining* time: any fragment containing
division, shifts, memory access, calls, or logical connectives is
rejected, so every surviving skeleton is UB-free under any int
substitution — the instantiator never needs to reason about safety.

Determinism: benchmark iteration order is the registry's fixed order,
ties in frequency break on skeleton text, and instantiation draws only
from the caller's seeded RNG.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from random import Random

from repro.benchsuite.suite import BENCHMARKS, benchmark_source
from repro.corpus.generate import derive_seed
from repro.corpus.grammar import GrammarConfig
from repro.minic import ast
from repro.minic.parser import parse

#: Operators whose skeletons are safe under any int substitution.
_SAFE_BINOPS = {"+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=",
                ">", ">="}
_SAFE_UNOPS = {"-", "~"}

_DEFAULT_TOP = 32


@dataclass(frozen=True)
class Idiom:
    """One mined expression shape.

    ``skeleton`` is the shape with variables replaced by ``$0``,
    ``$1``, ... in first-occurrence order; ``arity`` is how many
    distinct variables it binds; ``count`` is its corpus frequency.
    """

    skeleton: str
    arity: int
    count: int

    def instantiate(self, names: list[str]) -> str:
        """Substitute concrete variable names for the placeholders."""
        text = self.skeleton
        for slot in range(self.arity - 1, -1, -1):
            text = text.replace(f"${slot}", names[slot])
        return text


def _skeletonize(expr: ast.Expr, slots: dict[str, int]) -> str | None:
    """Skeleton text for a *safe* expression, or None if rejected."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        slot = slots.setdefault(expr.ident, len(slots))
        return f"${slot}"
    if isinstance(expr, ast.Unary) and expr.op in _SAFE_UNOPS:
        inner = _skeletonize(expr.operand, slots)
        return None if inner is None else f"({expr.op}{inner})"
    if isinstance(expr, ast.Binary) and expr.op in _SAFE_BINOPS:
        left = _skeletonize(expr.left, slots)
        if left is None:
            return None
        right = _skeletonize(expr.right, slots)
        if right is None:
            return None
        return f"({left} {expr.op} {right})"
    return None  # division, shift, memory, call, logical: rejected


def _walk_exprs(stmts) -> list[ast.Expr]:
    found: list[ast.Expr] = []
    for stmt in stmts:
        if isinstance(stmt, ast.Decl) and stmt.init is not None:
            found.append(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Assign):
                found.append(stmt.expr.value)
            else:
                found.append(stmt.expr)
        elif isinstance(stmt, ast.If):
            found.append(stmt.cond)
            found.extend(_walk_exprs(stmt.then_body))
            found.extend(_walk_exprs(stmt.else_body))
        elif isinstance(stmt, ast.While):
            found.append(stmt.cond)
            found.extend(_walk_exprs(stmt.body))
        elif isinstance(stmt, ast.For):
            if stmt.cond is not None:
                found.append(stmt.cond)
            found.extend(_walk_exprs(stmt.body))
            if stmt.init is not None:
                found.extend(_walk_exprs([stmt.init]))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            found.append(stmt.value)
    return found


def mine_idioms(sources: dict[str, str] | None = None,
                top: int = _DEFAULT_TOP) -> list[Idiom]:
    """The ``top`` most frequent safe expression shapes in ``sources``
    (default: the whole benchsuite at the ref workload)."""
    if sources is None:
        sources = {name: benchmark_source(name) for name in BENCHMARKS}
    counts: Counter[tuple[str, int]] = Counter()
    for name in sources:
        program = parse(sources[name])
        for function in program.functions:
            for expr in _walk_exprs(function.body):
                slots: dict[str, int] = {}
                skeleton = _skeletonize(expr, slots)
                # Single atoms carry no shape; require an operator and
                # at least one variable to parameterize over.
                if skeleton is None or not slots or "(" not in skeleton:
                    continue
                counts[(skeleton, len(slots))] += 1
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], item[0][0])
    )
    return [
        Idiom(skeleton=skeleton, arity=arity, count=count)
        for (skeleton, arity), count in ranked[:top]
    ]


_IDIOM_CACHE: list[Idiom] | None = None


def default_idioms() -> list[Idiom]:
    """Benchsuite idioms, mined once per process (deterministic)."""
    global _IDIOM_CACHE
    if _IDIOM_CACHE is None:
        _IDIOM_CACHE = mine_idioms()
    return _IDIOM_CACHE


def generate_idiom_program(
    config: GrammarConfig,
    seed: int,
    region: str = "idioms",
    index: int = 0,
    idioms: list[Idiom] | None = None,
) -> str:
    """One hybrid program recombining mined idioms over fresh scalars.

    Same determinism contract as
    :func:`repro.corpus.generate.generate_program`: (seed, region,
    index) plus the idiom list name one exact program text.
    """
    if idioms is None:
        idioms = default_idioms()
    if not idioms:
        raise ValueError("no idioms to recombine")
    rng = Random(derive_seed(seed, region, index))
    lines = ["int main(void) {"]
    names = [f"v{i}" for i in range(max(config.scalars, 4))]
    for i, name in enumerate(names):
        lines.append(f"  int {name} = {rng.randint(-9, 9) + i};")
    budget = max(4, config.max_stmts)
    for _ in range(budget):
        idiom = rng.choice(idioms)
        binding = [rng.choice(names) for _ in range(idiom.arity)]
        target = rng.choice(names)
        if rng.random() < 0.3:
            op = rng.choice(("+=", "-=", "^=", "&=", "|="))
            lines.append(f"  {target} {op} {idiom.instantiate(binding)};")
        else:
            lines.append(f"  {target} = {idiom.instantiate(binding)};")
    lines.append("  int chk = 0;")
    for i, name in enumerate(names):
        op = ("+=", "-=", "*=")[i % 3]
        lines.append(f"  chk {op} {name};")
    lines.append("  return chk;")
    lines.append("}")
    return "\n".join(lines) + "\n"
