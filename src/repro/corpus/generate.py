"""Seed-deterministic grammar fuzzer for well-typed MiniC programs.

Every program :func:`generate_program` emits

* **parses and type-checks** — variables are declared before use, all
  expressions are int-valued, helpers are non-recursive;
* **terminates** — every loop is bounded by a constant trip count on a
  *protected* counter the body is forbidden to reassign (``continue``
  is only emitted inside ``for`` bodies, whose step always runs);
* **has no undefined behavior under the MiniC model** — array indices
  are masked to power-of-two bounds, shift counts are masked small,
  and ``/``/``%`` denominators are forced odd (``| 1``), so the TAC
  interpreter, both backends and the DBT all agree on its meaning.

Determinism contract: all randomness flows through the single
``random.Random`` handed in by the caller (no module-level RNG, no
hash-salted seeds — :func:`derive_seed` goes through sha256, not
``hash``), so a (seed, region, index) triple names one exact program
text forever, across processes and ``--jobs`` parallelism.
"""

from __future__ import annotations

import hashlib
from random import Random

from repro.corpus.grammar import GrammarConfig

#: Immediate pools: small constants dominate real code, but the large
#: ones exercise constant-materialization shapes (movw/movt, etc.).
_SMALL_IMMS = tuple(range(-9, 10))
_WIDE_IMMS = (16, 31, 63, 100, 255, 1023, 4096, 65535, -128, -1024)

_ARITH_OPS = ("+", "-", "*", "&", "|", "^")
_COMPOUND_OPS = ("+=", "-=", "*=", "&=", "|=", "^=")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def derive_seed(seed: int, region: str, index: int) -> int:
    """A process-stable sub-seed for one (stream, region, index) slot.

    Goes through sha256 — ``hash()`` is salted per process and would
    break the byte-identical-stream contract.
    """
    digest = hashlib.sha256(
        f"repro-corpus:{seed}:{region}:{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class ProgramGenerator:
    """Sample one program from ``config`` using ``rng`` exclusively."""

    def __init__(self, config: GrammarConfig, rng: Random) -> None:
        self.config = config
        self.rng = rng
        self._names = 0

    # -- naming ---------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}{self._names}"

    # -- program --------------------------------------------------------------

    def generate(self) -> str:
        cfg, rng = self.config, self.rng
        lines: list[str] = []

        self.globals_: list[str] = []
        self.global_arrays: list[str] = []
        if cfg.globals_:
            for _ in range(rng.randint(1, 2)):
                name = self._fresh("g")
                lines.append(f"int {name} = {rng.choice(_SMALL_IMMS)};")
                self.globals_.append(name)
            name = self._fresh("ga")
            lines.append(f"int {name}[{cfg.array_len}];")
            self.global_arrays.append(name)
            lines.append("")

        self.helpers: list[tuple[str, int]] = []  # (name, arity)
        if cfg.calls:
            for _ in range(rng.randint(1, max(1, cfg.max_helpers))):
                lines.extend(self._helper())
                lines.append("")

        lines.extend(self._main())
        return "\n".join(lines) + "\n"

    def _helper(self) -> list[str]:
        """One straight-line int helper (no calls, no loops inside)."""
        cfg, rng = self.config, self.rng
        name = self._fresh("h")
        arity = rng.randint(1, 3)
        params = [f"p{name}_{i}" for i in range(arity)]
        scope = _Scope(ints=list(params), arrays=[], chars=[])
        body = [f"int {name}({', '.join('int ' + p for p in params)}) {{"]
        local = self._fresh("t")
        body.append(f"  int {local} = {self._expr(1, scope)};")
        scope.ints.append(local)
        for _ in range(rng.randint(1, 3)):
            target = rng.choice(scope.ints[arity:] or scope.ints)
            op = rng.choice(_COMPOUND_OPS)
            body.append(f"  {target} {op} {self._expr(2, scope)};")
        body.append(f"  return {self._expr(2, scope)};")
        body.append("}")
        self.helpers.append((name, arity))
        return body

    def _main(self) -> list[str]:
        cfg, rng = self.config, self.rng
        scope = _Scope(
            ints=list(self.globals_),
            arrays=list(self.global_arrays),
            chars=[],
        )
        lines = ["int main(void) {"]
        if cfg.arrays:
            name = self._fresh("a")
            lines.append(f"  int {name}[{cfg.array_len}];")
            scope.arrays.append(name)
        if cfg.chars:
            name = self._fresh("c")
            lines.append(f"  char {name}[{cfg.char_array_len}];")
            scope.chars.append(name)
        for _ in range(cfg.scalars):
            name = self._fresh("v")
            imm = rng.choice(_SMALL_IMMS + _WIDE_IMMS)
            lines.append(f"  int {name} = {imm};")
            scope.ints.append(name)
        # Arrays hold unknown bytes until written; give every cell a
        # defined value so both executions read the same data.
        for array in scope.arrays:
            counter = self._fresh("i")
            lines.append(f"  int {counter} = 0;")
            scope.ints.append(counter)
            lines.append(
                f"  while ({counter} < {cfg.array_len}) {{"
            )
            lines.append(f"    {array}[{counter}] = {counter} * "
                         f"{rng.choice((3, 5, 7, 9))};")
            lines.append(f"    {counter} += 1;")
            lines.append("  }")
        for array in scope.chars:
            counter = self._fresh("i")
            lines.append(f"  int {counter} = 0;")
            scope.ints.append(counter)
            lines.append(
                f"  while ({counter} < {cfg.char_array_len}) {{"
            )
            lines.append(f"    {array}[{counter}] = {counter} + "
                         f"{rng.randint(1, 40)};")
            lines.append(f"    {counter} += 1;")
            lines.append("  }")
        lines.extend(self._stmts(scope, depth=0, indent="  ",
                                 protected=frozenset()))
        # Deterministic checksum over the whole final state.
        acc = self._fresh("chk")
        lines.append(f"  int {acc} = 0;")
        for index, name in enumerate(scope.ints):
            op = _COMPOUND_OPS[index % 3]  # += -= *=
            lines.append(f"  {acc} {op} {name};")
        for array in scope.arrays:
            lines.append(f"  {acc} ^= {array}[{rng.randrange(cfg.array_len)}];")
        for array in scope.chars:
            lines.append(
                f"  {acc} += {array}[{rng.randrange(cfg.char_array_len)}];"
            )
        lines.append(f"  return {acc};")
        lines.append("}")
        return lines

    # -- statements -----------------------------------------------------------

    def _stmts(self, scope: "_Scope", depth: int, indent: str,
               protected: frozenset) -> list[str]:
        cfg, rng = self.config, self.rng
        budget = max(1, cfg.max_stmts >> depth)
        count = rng.randint(max(1, budget // 2), budget)
        lines: list[str] = []
        for _ in range(count):
            lines.extend(self._stmt(scope, depth, indent, protected))
        return lines

    def _stmt(self, scope: "_Scope", depth: int, indent: str,
              protected: frozenset) -> list[str]:
        cfg, rng = self.config, self.rng
        kinds: list[str] = []
        weights: list[int] = []

        def add(kind: str, enabled: bool = True) -> None:
            weight = cfg.weight(kind)
            if enabled and weight > 0:
                kinds.append(kind)
                weights.append(weight)

        writable = [name for name in scope.ints if name not in protected]
        add("assign", bool(writable))
        add("compound", bool(writable))
        add("decl", depth == 0)
        add("array_store", cfg.arrays and bool(scope.arrays))
        add("char_store", cfg.chars and bool(scope.chars))
        add("if", cfg.branches and depth < 2)
        add("for", cfg.loops and depth < 2)
        add("while", cfg.loops and depth < 2 and bool(writable))
        add("call", cfg.calls and bool(self.helpers) and bool(writable))
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        method = getattr(self, f"_stmt_{kind}")
        return method(scope, depth, indent, protected)

    def _stmt_assign(self, scope, depth, indent, protected) -> list[str]:
        target = self.rng.choice(
            [n for n in scope.ints if n not in protected]
        )
        return [f"{indent}{target} = "
                f"{self._expr(self.config.max_expr_depth, scope)};"]

    def _stmt_compound(self, scope, depth, indent, protected) -> list[str]:
        target = self.rng.choice(
            [n for n in scope.ints if n not in protected]
        )
        op = self.rng.choice(_COMPOUND_OPS)
        return [f"{indent}{target} {op} "
                f"{self._expr(self.config.max_expr_depth - 1, scope)};"]

    def _stmt_decl(self, scope, depth, indent, protected) -> list[str]:
        name = self._fresh("v")
        line = (f"{indent}int {name} = "
                f"{self._expr(self.config.max_expr_depth - 1, scope)};")
        scope.ints.append(name)
        return [line]

    def _stmt_array_store(self, scope, depth, indent, protected) -> list[str]:
        cfg, rng = self.config, self.rng
        array = rng.choice(scope.arrays)
        index = self._index(cfg.array_len, scope)
        if rng.random() < 0.4:
            op = rng.choice(_COMPOUND_OPS[:3])
            return [f"{indent}{array}[{index}] {op} "
                    f"{self._expr(1, scope)};"]
        return [f"{indent}{array}[{index}] = "
                f"{self._expr(cfg.max_expr_depth - 1, scope)};"]

    def _stmt_char_store(self, scope, depth, indent, protected) -> list[str]:
        cfg, rng = self.config, self.rng
        array = rng.choice(scope.chars)
        index = self._index(cfg.char_array_len, scope)
        return [f"{indent}{array}[{index}] = {self._expr(1, scope)};"]

    def _stmt_if(self, scope, depth, indent, protected) -> list[str]:
        rng = self.rng
        lines = [f"{indent}if ({self._cond(scope)}) {{"]
        # Each branch gets a scope clone: names declared inside the
        # block (nested loop counters) must never leak to later reads.
        lines.extend(self._stmts(scope.clone(), depth + 1, indent + "  ",
                                 protected))
        if rng.random() < 0.5:
            lines.append(f"{indent}}} else {{")
            lines.extend(
                self._stmts(scope.clone(), depth + 1, indent + "  ",
                            protected)
            )
        lines.append(f"{indent}}}")
        return lines

    def _stmt_for(self, scope, depth, indent, protected) -> list[str]:
        cfg, rng = self.config, self.rng
        counter = self._fresh("i")
        trips = rng.randint(2, cfg.loop_iters)
        step = rng.choice((1, 1, 2))
        lines = [
            f"{indent}int {counter} = 0;",
            f"{indent}for ({counter} = 0; {counter} < {trips * step}; "
            f"{counter} += {step}) {{",
        ]
        scope.ints.append(counter)  # declared at this level: stays visible
        inner = protected | {counter}
        inner_scope = scope.clone()
        body = self._stmts(inner_scope, depth + 1, indent + "  ", inner)
        # continue is termination-safe here: for's step always runs.
        if cfg.branches and rng.random() < 0.3:
            escape = rng.choice(("continue", "break"))
            body.append(f"{indent}  if ({self._cond(inner_scope)}) {{")
            body.append(f"{indent}    {escape};")
            body.append(f"{indent}  }}")
        lines.extend(body)
        lines.append(f"{indent}}}")
        return lines

    def _stmt_while(self, scope, depth, indent, protected) -> list[str]:
        cfg, rng = self.config, self.rng
        counter = self._fresh("i")
        trips = rng.randint(2, cfg.loop_iters)
        lines = [
            f"{indent}int {counter} = 0;",
            f"{indent}while ({counter} < {trips}) {{",
        ]
        scope.ints.append(counter)  # declared at this level: stays visible
        inner = protected | {counter}
        inner_scope = scope.clone()
        body = self._stmts(inner_scope, depth + 1, indent + "  ", inner)
        if cfg.branches and rng.random() < 0.25:
            body.append(f"{indent}  if ({self._cond(inner_scope)}) {{")
            body.append(f"{indent}    break;")
            body.append(f"{indent}  }}")
        # The bounding increment comes last so break skips it safely
        # but straight-line bodies always advance.
        body.append(f"{indent}  {counter} += 1;")
        lines.extend(body)
        lines.append(f"{indent}}}")
        return lines

    def _stmt_call(self, scope, depth, indent, protected) -> list[str]:
        rng = self.rng
        target = rng.choice([n for n in scope.ints if n not in protected])
        name, arity = rng.choice(self.helpers)
        args = ", ".join(self._expr(1, scope) for _ in range(arity))
        return [f"{indent}{target} = {name}({args});"]

    # -- expressions ----------------------------------------------------------

    def _index(self, length: int, scope: "_Scope") -> str:
        """An always-in-bounds index expression (power-of-two mask)."""
        return f"({self._expr(1, scope)}) & {length - 1}"

    def _atom(self, scope: "_Scope") -> str:
        rng = self.rng
        if scope.ints and rng.random() < 0.6:
            return rng.choice(scope.ints)
        if rng.random() < 0.8:
            return str(rng.choice(_SMALL_IMMS))
        return str(rng.choice(_WIDE_IMMS))

    def _expr(self, depth: int, scope: "_Scope") -> str:
        cfg, rng = self.config, self.rng
        if depth <= 0 or rng.random() < 0.25:
            return self._atom(scope)
        kinds = ["arith", "arith", "arith"]
        kinds.append("shift")
        kinds.append("unary")
        if cfg.division:
            kinds.append("divmod")
        if cfg.branches:
            kinds.append("cmp")
        if cfg.logical:
            kinds.append("logical")
        if cfg.arrays and scope.arrays:
            kinds.append("array_read")
        if cfg.chars and scope.chars:
            kinds.append("char_read")
        kind = rng.choice(kinds)
        if kind == "arith":
            op = rng.choice(_ARITH_OPS)
            return (f"({self._expr(depth - 1, scope)} {op} "
                    f"{self._expr(depth - 1, scope)})")
        if kind == "shift":
            op = rng.choice(("<<", ">>"))
            # Mask the count small: keeps both the semantics model and
            # the generated magnitudes tame.
            return (f"({self._expr(depth - 1, scope)} {op} "
                    f"({self._atom(scope)} & 7))")
        if kind == "unary":
            op = rng.choice(("-", "~"))
            return f"({op}({self._expr(depth - 1, scope)}))"
        if kind == "divmod":
            op = rng.choice(("/", "%"))
            # An odd denominator is never zero.
            return (f"({self._expr(depth - 1, scope)} {op} "
                    f"({self._expr(depth - 1, scope)} | 1))")
        if kind == "cmp":
            op = rng.choice(_CMP_OPS)
            return (f"({self._expr(depth - 1, scope)} {op} "
                    f"{self._expr(depth - 1, scope)})")
        if kind == "logical":
            op = rng.choice(("&&", "||"))
            return f"({self._cond(scope)} {op} {self._cond(scope)})"
        if kind == "array_read":
            array = rng.choice(scope.arrays)
            return f"{array}[{self._index(cfg.array_len, scope)}]"
        array = rng.choice(scope.chars)
        return f"{array}[{self._index(cfg.char_array_len, scope)}]"

    def _cond(self, scope: "_Scope") -> str:
        cfg, rng = self.config, self.rng
        if cfg.logical and rng.random() < 0.25:
            op = rng.choice(("&&", "||"))
            left = f"{self._expr(1, scope)} {rng.choice(_CMP_OPS)} " \
                   f"{self._expr(1, scope)}"
            right = f"{self._expr(1, scope)} {rng.choice(_CMP_OPS)} " \
                    f"{self._atom(scope)}"
            return f"({left}) {op} ({right})"
        return (f"{self._expr(1, scope)} {rng.choice(_CMP_OPS)} "
                f"{self._expr(1, scope)}")


class _Scope:
    """Names visible to the generator, by type."""

    def __init__(self, ints: list[str], arrays: list[str],
                 chars: list[str]) -> None:
        self.ints = ints
        self.arrays = arrays
        self.chars = chars

    def clone(self) -> "_Scope":
        """Independent copy for a nested block: declarations made
        inside it stay invisible to the enclosing block."""
        return _Scope(list(self.ints), list(self.arrays), list(self.chars))


def generate_program(config: GrammarConfig, seed: int, region: str = "",
                     index: int = 0) -> str:
    """The program text at one (seed, region, index) stream slot.

    Pure: equal arguments yield byte-identical text in any process.
    """
    rng = Random(derive_seed(seed, region, index))
    return ProgramGenerator(config, rng).generate()
