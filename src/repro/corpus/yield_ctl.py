"""Marginal-yield control: a deterministic bandit over grammar regions.

Generated programs are free; verification time is not.  The controller
treats each grammar region (:data:`repro.corpus.grammar.REGIONS`) as a
bandit arm and allocates the next program to the arm with the best
upper confidence bound on *novel verified rules per program*.  Regions
that keep producing settle into proportional share; regions that go
barren — a full trailing window of pulls with zero new rules — are put
on cooldown and only re-probed occasionally, so a saturated grammar
corner stops eating the stream.

Everything is deterministic: UCB with index-order tie-breaking, no
wall-clock in the policy, state advanced only by :meth:`record`.  The
same pull/record sequence replays to the same arm choices forever,
which is what lets the ingest gate assert byte-identical streams.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.corpus.grammar import DEFAULT_REGIONS
from repro.obs.metrics import get_metrics


@dataclass
class ArmStats:
    """Running tally for one grammar region."""

    pulls: int = 0
    fed: int = 0
    skipped: int = 0
    rules: int = 0
    verify_calls: int = 0
    cooldowns: int = 0
    #: Rules from each of the last ``window`` pulls (barrenness probe).
    recent: deque = field(default_factory=lambda: deque(maxlen=8))
    #: Global step at which the arm becomes eligible again.
    resume_at: int = 0

    @property
    def mean_yield(self) -> float:
        return self.rules / self.pulls if self.pulls else 0.0

    @property
    def barren(self) -> bool:
        window = self.recent.maxlen
        return len(self.recent) == window and not any(self.recent)


class YieldController:
    """UCB1 over grammar regions with barren-region cooldown.

    ``exploration`` scales the confidence radius; ``window`` is how
    many consecutive zero-rule pulls mark a region barren; ``cooldown``
    is how many global steps a barren region sits out before one
    re-probe pull (its window is cleared on resume, so one productive
    probe fully rehabilitates it).
    """

    def __init__(
        self,
        regions: tuple[str, ...] = DEFAULT_REGIONS,
        exploration: float = 1.2,
        window: int = 8,
        cooldown: int = 24,
    ) -> None:
        if not regions:
            raise ValueError("need at least one region")
        self.regions = tuple(regions)
        self.exploration = exploration
        self.cooldown = cooldown
        self.step = 0
        self.arms: dict[str, ArmStats] = {
            name: ArmStats(recent=deque(maxlen=window)) for name in regions
        }

    # -- policy ---------------------------------------------------------------

    def next_region(self) -> str:
        """The region the next generated program should come from."""
        eligible = [
            name for name in self.regions
            if self.arms[name].resume_at <= self.step
        ]
        if not eligible:
            # Everything is cooling; re-probe whichever resumes first
            # (ties break in region order — deterministic).
            eligible = [min(
                self.regions, key=lambda n: (self.arms[n].resume_at,
                                             self.regions.index(n))
            )]
        for name in eligible:  # each arm gets one pull before UCB kicks in
            if self.arms[name].pulls == 0:
                return name
        total = sum(self.arms[name].pulls for name in eligible)
        log_total = math.log(max(total, 2))

        def score(name: str) -> float:
            arm = self.arms[name]
            bonus = self.exploration * math.sqrt(log_total / arm.pulls)
            return arm.mean_yield + bonus

        best = eligible[0]
        best_score = score(best)
        for name in eligible[1:]:
            value = score(name)
            if value > best_score:  # strict: ties keep region order
                best, best_score = name, value
        return best

    # -- feedback -------------------------------------------------------------

    def record(self, region: str, fed: bool, rules: int = 0,
               verify_calls: int = 0) -> None:
        """Account one program's outcome and advance the policy clock."""
        arm = self.arms[region]
        self.step += 1
        arm.pulls += 1
        if fed:
            arm.fed += 1
        else:
            arm.skipped += 1
        arm.rules += rules
        arm.verify_calls += verify_calls
        arm.recent.append(rules)
        metrics = get_metrics()
        metrics.inc(f"corpus.region.{region}.programs")
        if rules:
            metrics.inc(f"corpus.region.{region}.rules", rules)
        if arm.barren and arm.resume_at <= self.step:
            arm.resume_at = self.step + self.cooldown
            arm.cooldowns += 1
            arm.recent.clear()
            metrics.inc(f"corpus.region.{region}.cooldowns")

    # -- reporting ------------------------------------------------------------

    def cooling(self) -> list[str]:
        return [name for name in self.regions
                if self.arms[name].resume_at > self.step]

    def snapshot(self) -> dict:
        """Per-region yield state for stats / the repro-top panel."""
        return {
            name: {
                "pulls": arm.pulls,
                "fed": arm.fed,
                "skipped": arm.skipped,
                "rules": arm.rules,
                "verify_calls": arm.verify_calls,
                "mean_yield": round(arm.mean_yield, 4),
                "cooldowns": arm.cooldowns,
                "cooling": arm.resume_at > self.step,
            }
            for name, arm in self.arms.items()
        }
