"""Content-addressed on-disk rule repository with a signed manifest.

Layout (everything under one root directory)::

    <root>/repo.key                 HMAC key (created on first use)
    <root>/manifest.json            signed manifest, atomically replaced
    <root>/bundles/<digest>.json    immutable rule bundles

A *bundle* is an immutable set of verified rules for one translation
direction under one :data:`~repro.learning.cache.SEMANTICS_VERSION`,
serialized with the :mod:`repro.learning.serialize` JSON codec.  Its
file name is the SHA-256 of its canonical JSON body, so a bundle can
be verified against the manifest entry that references it and is never
rewritten in place — publishing only ever *adds* bundles.

The *manifest* lists every bundle (digest, direction, semantics
version, rule count) together with a monotonically increasing
``generation``: each publish stamps its bundle with the new generation,
which is what makes delta sync trivial — a client that last synced at
generation ``g`` asks for entries with ``generation > g``
(:meth:`RuleRepository.delta_since`).  The manifest payload is signed
with HMAC-SHA256 under the repository key; clients holding the key
(shared out of band, e.g. the deployment provisions it next to the
socket path) verify it with :func:`verify_manifest`.

Verdict consistency with the verification cache: bundles record the
semantics version under which their rules were verified, and a client
whose code runs a different :data:`SEMANTICS_VERSION` rejects them —
exactly the staleness rule the cache applies to stored verdicts.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import secrets
from dataclasses import dataclass
from pathlib import Path

from repro.learning.cache import SEMANTICS_VERSION
from repro.learning.rule import Rule, dedup_rules
from repro.learning.serialize import rule_from_json, rule_to_json
from repro.obs.metrics import get_metrics

BUNDLE_FORMAT = "repro-dbt-rule-bundle"
MANIFEST_FORMAT = "repro-dbt-rule-manifest"
REPO_FILE_VERSION = 1

MANIFEST_NAME = "manifest.json"
KEY_NAME = "repo.key"
BUNDLE_DIR = "bundles"


class BundleError(ValueError):
    """A malformed, tampered, or incompatible bundle/manifest."""


def canonical_json(document: dict) -> str:
    """The canonical rendering content addressing and signing use."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def bundle_digest(document: dict) -> str:
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()


def make_bundle(rules: list[Rule], direction: str,
                semantics_version: int = SEMANTICS_VERSION) -> dict:
    """An immutable bundle document for ``rules`` (deduped, ordered by
    canonical JSON so equal rule sets always produce equal digests)."""
    encoded = sorted(
        (rule_to_json(rule) for rule in dedup_rules(rules)),
        key=canonical_json,
    )
    return {
        "format": BUNDLE_FORMAT,
        "version": REPO_FILE_VERSION,
        "direction": direction,
        "semantics": semantics_version,
        "rules": encoded,
    }


def bundle_rules(document: dict) -> list[Rule]:
    """Decode a bundle's rules (shape-checked)."""
    if (
        not isinstance(document, dict)
        or document.get("format") != BUNDLE_FORMAT
        or document.get("version") != REPO_FILE_VERSION
    ):
        raise BundleError("not a repro-dbt rule bundle")
    return [rule_from_json(item) for item in document["rules"]]


def verify_bundle(document: dict, expected_digest: str) -> list[Rule]:
    """Decode a bundle after checking its content address."""
    actual = bundle_digest(document)
    if actual != expected_digest:
        raise BundleError(
            f"bundle digest mismatch: expected {expected_digest[:16]}…, "
            f"got {actual[:16]}…"
        )
    return bundle_rules(document)


def sign_payload(payload: dict, key: bytes) -> str:
    return hmac.new(
        key, canonical_json(payload).encode("utf-8"), hashlib.sha256
    ).hexdigest()


def verify_manifest(manifest: dict, key: bytes) -> dict:
    """Check a manifest's signature; returns its payload.

    Raises :class:`BundleError` on a missing or forged signature.
    """
    if not isinstance(manifest, dict) or "payload" not in manifest:
        raise BundleError("manifest carries no payload")
    payload = manifest["payload"]
    signature = manifest.get("signature", "")
    if not hmac.compare_digest(signature, sign_payload(payload, key)):
        raise BundleError("manifest signature verification failed")
    if payload.get("format") != MANIFEST_FORMAT or \
            payload.get("version") != REPO_FILE_VERSION:
        raise BundleError("not a repro-dbt rule manifest")
    return payload


@dataclass(frozen=True)
class BundleRef:
    """One manifest entry."""

    digest: str
    direction: str
    semantics: int
    rules: int
    generation: int

    def to_json(self) -> dict:
        return {
            "digest": self.digest,
            "direction": self.direction,
            "semantics": self.semantics,
            "rules": self.rules,
            "generation": self.generation,
        }

    @classmethod
    def from_json(cls, data: dict) -> "BundleRef":
        try:
            return cls(
                digest=data["digest"],
                direction=data["direction"],
                semantics=data["semantics"],
                rules=data["rules"],
                generation=data["generation"],
            )
        except (KeyError, TypeError) as exc:
            raise BundleError(f"bad manifest entry: {exc}") from exc


class RuleRepository:
    """The server's persistent bundle store.

    Thread-compatible, not thread-safe: the asyncio server serializes
    access through its single event loop.
    """

    def __init__(self, root: str | os.PathLike,
                 semantics_version: int = SEMANTICS_VERSION) -> None:
        self.root = Path(root)
        self.semantics_version = semantics_version
        (self.root / BUNDLE_DIR).mkdir(parents=True, exist_ok=True)
        self.key = self._load_or_create_key()
        self.generation = 0
        self._entries: list[BundleRef] = []
        #: Rule identity already present, per direction — publishes are
        #: deltas by construction.
        self._known: dict[str, set] = {}
        self._load_manifest()

    # -- key / persistence ---------------------------------------------------

    def _load_or_create_key(self) -> bytes:
        key_path = self.root / KEY_NAME
        if key_path.exists():
            return bytes.fromhex(key_path.read_text().strip())
        key = secrets.token_bytes(32)
        self._atomic_write(key_path, key.hex() + "\n")
        return key

    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as fp:
            fp.write(text)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)

    def _load_manifest(self) -> None:
        path = self.root / MANIFEST_NAME
        if not path.exists():
            return
        with open(path) as fp:
            manifest = json.load(fp)
        payload = verify_manifest(manifest, self.key)
        self.generation = payload["generation"]
        self._entries = [
            BundleRef.from_json(item) for item in payload["bundles"]
        ]
        for ref in self._entries:
            if ref.semantics != self.semantics_version:
                continue
            known = self._known.setdefault(ref.direction, set())
            known.update(self.load_rules(ref.digest))

    def _save_manifest(self) -> None:
        self._atomic_write(
            self.root / MANIFEST_NAME,
            json.dumps(self.manifest(), indent=1),
        )

    # -- reading -------------------------------------------------------------

    def manifest(self) -> dict:
        """The signed manifest document served to clients."""
        payload = {
            "format": MANIFEST_FORMAT,
            "version": REPO_FILE_VERSION,
            "generation": self.generation,
            "semantics": self.semantics_version,
            "bundles": [ref.to_json() for ref in self._entries],
        }
        return {
            "payload": payload,
            "signature": sign_payload(payload, self.key),
        }

    def entries(self) -> list[BundleRef]:
        return list(self._entries)

    def delta_since(self, generation: int) -> list[BundleRef]:
        """Bundles published after ``generation`` (delta sync)."""
        return [
            ref for ref in self._entries if ref.generation > generation
        ]

    def load_bundle(self, digest: str) -> dict:
        path = self.root / BUNDLE_DIR / f"{digest}.json"
        if not path.exists():
            raise BundleError(f"unknown bundle {digest[:16]}…")
        with open(path) as fp:
            return json.load(fp)

    def load_rules(self, digest: str) -> list[Rule]:
        return verify_bundle(self.load_bundle(digest), digest)

    def all_rules(self, direction: str) -> list[Rule]:
        """Every stored rule for ``direction`` at the live semantics
        version (deduped across bundles)."""
        rules: list[Rule] = []
        for ref in self._entries:
            if ref.direction == direction and \
                    ref.semantics == self.semantics_version:
                rules.extend(self.load_rules(ref.digest))
        return dedup_rules(rules)

    # -- publishing ----------------------------------------------------------

    def publish(self, rules: list[Rule], direction: str) -> BundleRef | None:
        """Store the *new* rules among ``rules`` as one immutable
        bundle and advance the manifest generation.

        Rules already present for the direction are dropped first, so
        repeated publishes of overlapping rule sets produce minimal
        delta bundles; returns None when nothing new remains.
        """
        known = self._known.setdefault(direction, set())
        fresh = [rule for rule in dedup_rules(rules) if rule not in known]
        if not fresh:
            return None
        document = make_bundle(fresh, direction, self.semantics_version)
        digest = bundle_digest(document)
        path = self.root / BUNDLE_DIR / f"{digest}.json"
        if not path.exists():
            self._atomic_write(path, json.dumps(document, indent=1))
        self.generation += 1
        ref = BundleRef(
            digest=digest,
            direction=direction,
            semantics=self.semantics_version,
            rules=len(document["rules"]),
            generation=self.generation,
        )
        self._entries.append(ref)
        known.update(fresh)
        self._save_manifest()
        metrics = get_metrics()
        metrics.inc("service.repo.bundles_published")
        metrics.inc("service.repo.rules_published", len(fresh))
        return ref
