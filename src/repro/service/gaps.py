"""Translation-gap capture, canonicalization, and aggregation.

A *gap* is a guest-instruction window the rule table failed to cover at
translation time.  The client records gaps through a
:class:`GapRecorder` installed as the engine's ``gap_sink``; each gap
is canonicalized with the same normalization the learning pipeline
uses (:func:`repro.learning.canon.snippet_text`) and keyed by a stable
digest, so the recorder, the wire format, and the server's
:class:`GapAggregator` all dedup identical gaps for free.

A gap report carries the mnemonic sequence alongside the digest: the
server's online learner matches staged corpus candidates against gap
windows by mnemonic subsequence, which is exactly the information a
rule needs to possibly cover part of the gap (rule matching never
changes mnemonics, only operand bindings).

With tracing enabled, every *new* gap a recorder captures roots a
fresh trace (a ``service.gap_capture`` event), and the gap carries the
span context's wire form end to end: the server's aggregator continues
the same trace id with ``service.gap_received`` when the gap first
arrives and the learning round closes it with ``service.gap_settled``
naming the published bundle.  One trace id therefore spans the gap's
whole life across both processes — which is what lets the report layer
measure gap-report-to-hot-install latency.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.learning.canon import snippet_text
from repro.obs.metrics import get_metrics
from repro.obs.trace import extract_context, get_tracer


@dataclass(frozen=True)
class Gap:
    """One canonicalized translation gap."""

    digest: str
    direction: str
    text: str
    mnemonics: tuple[str, ...]
    #: Wire form of the capture event's span context (None when the
    #: capturing client traced nothing).  Transport metadata, not
    #: identity: two captures of the same window are the same gap.
    trace: dict | None = field(default=None, compare=False, hash=False)

    def to_json(self) -> dict:
        data = {
            "digest": self.digest,
            "direction": self.direction,
            "text": self.text,
            "mnemonics": list(self.mnemonics),
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Gap":
        trace = data.get("trace")
        return cls(
            digest=data["digest"],
            direction=data["direction"],
            text=data["text"],
            mnemonics=tuple(data["mnemonics"]),
            trace=trace if isinstance(trace, dict) else None,
        )

    @property
    def context(self):
        """The capture-time :class:`~repro.obs.trace.SpanContext`."""
        return extract_context(self.trace)


def canonical_gap(instrs, direction: str = "arm-x86") -> Gap:
    """Canonicalize one uncovered guest window."""
    text = snippet_text(instrs)
    digest = hashlib.sha256(
        f"{direction}\n{text}".encode("utf-8")
    ).hexdigest()
    return Gap(
        digest=digest,
        direction=direction,
        text=text,
        mnemonics=tuple(instr.mnemonic for instr in instrs),
    )


class GapRecorder:
    """Client-side gap sink: dedups gaps, batches them for upload.

    Install with ``engine.gap_sink = recorder`` (the recorder is
    callable with the uncovered guest window).  ``drain()`` hands the
    accumulated unique gaps over for one batched report and resets the
    batch; gaps already drained are remembered and never re-reported by
    this recorder, so a long-running client uploads each distinct gap
    once.
    """

    def __init__(self, direction: str = "arm-x86") -> None:
        self.direction = direction
        self._pending: dict[str, Gap] = {}
        self._counts: dict[str, int] = {}
        self._reported: set[str] = set()
        self.captured = 0

    def __call__(self, instrs) -> None:
        if not instrs:
            return
        self.captured += 1
        get_metrics().inc("service.gaps.captured")
        gap = canonical_gap(instrs, self.direction)
        if gap.digest in self._reported or gap.digest in self._pending:
            self._counts[gap.digest] = \
                self._counts.get(gap.digest, 0) + 1
            return
        tracer = get_tracer()
        if tracer.enabled:
            # A new gap roots a fresh trace; its id follows the gap to
            # the server and back (see the module docstring).
            context = tracer.event(
                "service.gap_capture", root=True,
                digest=gap.digest, length=len(gap.mnemonics),
            )
            gap = replace(gap, trace=context.to_wire())
        self._pending[gap.digest] = gap
        self._counts[gap.digest] = self._counts.get(gap.digest, 0) + 1

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self) -> list[dict]:
        """The batched gap report: unique pending gaps with counts."""
        report = [
            dict(gap.to_json(), count=self._counts.get(digest, 1))
            for digest, gap in self._pending.items()
        ]
        self._reported.update(self._pending)
        self._pending.clear()
        return report


class GapAggregator:
    """Server-side gap state: dedup across clients, track settlement.

    A gap is *pending* until a learning round has attempted it; it then
    moves to *settled* whether or not the round produced rules, so
    barren gaps (no matching corpus candidate, or candidates that fail
    verification) are attempted exactly once instead of re-learned on
    every report.
    """

    def __init__(self) -> None:
        self._pending: dict[str, Gap] = {}
        self._settled: set[str] = set()
        self.reported = 0
        self.unique = 0

    def absorb(self, report: list[dict]) -> int:
        """Merge one client report; returns the number of new gaps."""
        tracer = get_tracer()
        new = 0
        for item in report:
            gap = Gap.from_json(item)
            self.reported += int(item.get("count", 1))
            if gap.digest in self._settled or gap.digest in self._pending:
                continue
            self._pending[gap.digest] = gap
            self.unique += 1
            new += 1
            if tracer.enabled:
                # Continue the capturing client's trace in this
                # process's trace file (context is None for untraced
                # clients — the event still records the arrival).
                tracer.event(
                    "service.gap_received", context=gap.context,
                    digest=gap.digest,
                )
        metrics = get_metrics()
        metrics.inc("service.gaps.reported", len(report))
        metrics.inc("service.gaps.new", new)
        return new

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def settled(self) -> int:
        return len(self._settled)

    def take_pending(self) -> list[Gap]:
        """Hand the pending gaps to a learning round (marks them
        settled — a round attempts each gap exactly once).

        The pending dict is swapped out atomically first, so a report
        absorbed concurrently (the server learns in an executor thread)
        lands in the fresh dict and stays pending for the next round.
        """
        pending, self._pending = self._pending, {}
        self._settled.update(pending)
        return list(pending.values())
