"""Translation-gap capture, canonicalization, and aggregation.

A *gap* is a guest-instruction window the rule table failed to cover at
translation time.  The client records gaps through a
:class:`GapRecorder` installed as the engine's ``gap_sink``; each gap
is canonicalized with the same normalization the learning pipeline
uses (:func:`repro.learning.canon.snippet_text`) and keyed by a stable
digest, so the recorder, the wire format, and the server's
:class:`GapAggregator` all dedup identical gaps for free.

A gap report carries the mnemonic sequence alongside the digest: the
server's online learner matches staged corpus candidates against gap
windows by mnemonic subsequence, which is exactly the information a
rule needs to possibly cover part of the gap (rule matching never
changes mnemonics, only operand bindings).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.learning.canon import snippet_text
from repro.obs.metrics import get_metrics


@dataclass(frozen=True)
class Gap:
    """One canonicalized translation gap."""

    digest: str
    direction: str
    text: str
    mnemonics: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "digest": self.digest,
            "direction": self.direction,
            "text": self.text,
            "mnemonics": list(self.mnemonics),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Gap":
        return cls(
            digest=data["digest"],
            direction=data["direction"],
            text=data["text"],
            mnemonics=tuple(data["mnemonics"]),
        )


def canonical_gap(instrs, direction: str = "arm-x86") -> Gap:
    """Canonicalize one uncovered guest window."""
    text = snippet_text(instrs)
    digest = hashlib.sha256(
        f"{direction}\n{text}".encode("utf-8")
    ).hexdigest()
    return Gap(
        digest=digest,
        direction=direction,
        text=text,
        mnemonics=tuple(instr.mnemonic for instr in instrs),
    )


class GapRecorder:
    """Client-side gap sink: dedups gaps, batches them for upload.

    Install with ``engine.gap_sink = recorder`` (the recorder is
    callable with the uncovered guest window).  ``drain()`` hands the
    accumulated unique gaps over for one batched report and resets the
    batch; gaps already drained are remembered and never re-reported by
    this recorder, so a long-running client uploads each distinct gap
    once.
    """

    def __init__(self, direction: str = "arm-x86") -> None:
        self.direction = direction
        self._pending: dict[str, Gap] = {}
        self._counts: dict[str, int] = {}
        self._reported: set[str] = set()
        self.captured = 0

    def __call__(self, instrs) -> None:
        if not instrs:
            return
        self.captured += 1
        get_metrics().inc("service.gaps.captured")
        gap = canonical_gap(instrs, self.direction)
        if gap.digest in self._reported or gap.digest in self._pending:
            self._counts[gap.digest] = \
                self._counts.get(gap.digest, 0) + 1
            return
        self._pending[gap.digest] = gap
        self._counts[gap.digest] = self._counts.get(gap.digest, 0) + 1

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self) -> list[dict]:
        """The batched gap report: unique pending gaps with counts."""
        report = [
            dict(gap.to_json(), count=self._counts.get(digest, 1))
            for digest, gap in self._pending.items()
        ]
        self._reported.update(self._pending)
        self._pending.clear()
        return report


class GapAggregator:
    """Server-side gap state: dedup across clients, track settlement.

    A gap is *pending* until a learning round has attempted it; it then
    moves to *settled* whether or not the round produced rules, so
    barren gaps (no matching corpus candidate, or candidates that fail
    verification) are attempted exactly once instead of re-learned on
    every report.
    """

    def __init__(self) -> None:
        self._pending: dict[str, Gap] = {}
        self._settled: set[str] = set()
        self.reported = 0
        self.unique = 0

    def absorb(self, report: list[dict]) -> int:
        """Merge one client report; returns the number of new gaps."""
        new = 0
        for item in report:
            gap = Gap.from_json(item)
            self.reported += int(item.get("count", 1))
            if gap.digest in self._settled or gap.digest in self._pending:
                continue
            self._pending[gap.digest] = gap
            self.unique += 1
            new += 1
        metrics = get_metrics()
        metrics.inc("service.gaps.reported", len(report))
        metrics.inc("service.gaps.new", new)
        return new

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def settled(self) -> int:
        return len(self._settled)

    def take_pending(self) -> list[Gap]:
        """Hand the pending gaps to a learning round (marks them
        settled — a round attempts each gap exactly once).

        The pending dict is swapped out atomically first, so a report
        absorbed concurrently (the server learns in an executor thread)
        lands in the fresh dict and stays pending for the next round.
        """
        pending, self._pending = self._pending, {}
        self._settled.update(pending)
        return list(pending.values())
