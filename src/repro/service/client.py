"""The DBT-side rule-service client: sync, gap upload, hot-install.

A :class:`RuleServiceClient` talks the length-prefixed JSON protocol
over a unix socket or TCP.  Its lifecycle against a live engine:

* **cold start** — :meth:`sync` with ``generation == 0`` fetches the
  manifest, verifies its signature when the client holds the shared
  repository key, and installs every compatible bundle;
* **gap reporting** — a :class:`~repro.service.gaps.GapRecorder`
  installed as the engine's ``gap_sink`` canonicalizes rule-table
  misses; :meth:`report_gaps` uploads the drained batch;
* **delta sync** — subsequent :meth:`sync` calls ask only for bundles
  newer than the client's generation and hot-install them into the
  engine (``engine.hot_install``), which invalidates and lazily
  retranslates affected cached blocks;
* **mid-run autosync** — :meth:`attach` wires the recorder plus a
  dispatch-loop ``tick`` that periodically reports gaps and pulls
  deltas *while the guest is running*.

Failover: with ``retries > 0`` every request retries transport
failures (reset, timeout, truncated frame, refused reconnect) with
exponential backoff plus deterministic jitter, reconnecting a fresh
socket per attempt; ``retries=0`` (the default) preserves single-shot
semantics.  All retried operations are idempotent by construction:
gap reports dedup server-side by digest, syncs dedup client-side by
installed digest, and reads are pure.  An attached engine **never**
errors out of ``run()`` because the service is unreachable: the tick
degrades to read-only stale mode (keep translating with the
last-synced rules, surfaced via the ``degraded`` flag and the
``service.client.degraded`` gauge metric) and recovers automatically
when a later tick reaches the fleet again.

Bundle compatibility: a bundle is installed only when its direction
matches and its semantics version equals the client's
:data:`~repro.learning.cache.SEMANTICS_VERSION` — the same staleness
rule the verification cache enforces on verdicts.  Every bundle body
is verified against its content digest before any rule is decoded.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field

from repro.learning.cache import SEMANTICS_VERSION
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.service.gaps import GapRecorder
from repro.service.protocol import (
    ProtocolError,
    attach_trace,
    recv_message,
    send_message,
)
from repro.service.repo import BundleError, verify_bundle, verify_manifest


class ServiceError(ConnectionError):
    """The server answered with an error envelope."""


@dataclass
class SyncResult:
    """Summary of one :meth:`RuleServiceClient.sync`."""

    cold: bool = False
    generation: int = 0
    bundles: int = 0
    rules_fetched: int = 0
    rules_installed: int = 0
    blocks_invalidated: int = 0
    skipped_incompatible: int = 0
    digests: list[str] = field(default_factory=list)


class RuleServiceClient:
    """One connection to a rule server, plus client-side sync state."""

    def __init__(
        self,
        socket_path: str | None = None,
        address: tuple[str, int] | None = None,
        direction: str = "arm-x86",
        semantics_version: int = SEMANTICS_VERSION,
        manifest_key: bytes | None = None,
        timeout: float | None = 30.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.25,
        op_timeouts: dict[str, float] | None = None,
    ) -> None:
        if (socket_path is None) == (address is None):
            raise ValueError("pass exactly one of socket_path / address")
        if retries < 0:
            raise ValueError(f"retries must be >= 0: {retries}")
        self.direction = direction
        self.semantics_version = semantics_version
        self.manifest_key = manifest_key
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        #: Per-op deadline overrides (e.g. ``{"flush": 600.0}``); ops
        #: not listed use ``timeout``.
        self.op_timeouts = dict(op_timeouts or {})
        #: Last manifest generation this client synced to.
        self.generation = 0
        #: Content digests already installed (idempotence guard).
        self.installed_digests: set[str] = set()
        #: True while an attached engine runs on stale rules because
        #: the service is unreachable (read-only degraded mode).
        self.degraded = False
        self.recorder = GapRecorder(direction)
        self._socket_path = socket_path
        self._address = address
        # Jitter is deterministic per endpoint so failure schedules
        # replay identically in the chaos gates.
        self._rng = random.Random(repr((socket_path, address)))
        self._sock: socket.socket | None = None
        # The initial connect honors the retry budget too, so a client
        # racing a (re)starting server comes up instead of erroring.
        for attempt in range(self.retries + 1):
            try:
                self._connect()
                break
            except OSError:
                if attempt == self.retries:
                    raise
                time.sleep(self._backoff(attempt))

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self._socket_path)
            except OSError:
                sock.close()
                raise
            self._sock = sock
        else:
            self._sock = socket.create_connection(
                self._address, timeout=self.timeout
            )

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with deterministic jitter."""
        delay = min(self.backoff_max,
                    self.backoff_base * (2.0 ** attempt))
        return delay * (1.0 + self.backoff_jitter * self._rng.random())

    def request(self, op: str, **fields) -> dict:
        """One request/response exchange, with bounded retry.

        Transport failures (reset, timeout, truncated frame, refused
        reconnect) are retried up to ``retries`` times over fresh
        connections with exponential backoff + jitter; server-side
        error envelopes raise :class:`ServiceError` immediately — the
        connection is healthy, retrying cannot help.
        """
        message = {"op": op}
        message.update(fields)
        # Requests sent from inside a span carry its context, so the
        # server's handling span joins this client's trace.
        attach_trace(message, get_tracer().inject())
        deadline = self.op_timeouts.get(op, self.timeout)
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                self._connect()
                if self._sock.gettimeout() != deadline:
                    self._sock.settimeout(deadline)
                send_message(self._sock, message)
                response = recv_message(self._sock)
                if response is None:
                    raise ProtocolError("server closed the connection")
            except OSError as exc:
                # ProtocolError and ConnectionError both subclass
                # OSError; ServiceError is raised below, outside this
                # try, so it never lands here.
                self._teardown()
                if attempt == attempts - 1:
                    raise
                get_metrics().inc("service.client.retries")
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "service.client.retry", op=op,
                        attempt=attempt + 1,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                time.sleep(self._backoff(attempt))
                continue
            if not response.get("ok"):
                raise ServiceError(
                    response.get("error", "unknown error")
                )
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "RuleServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        """The server's liveness/readiness frame (fleet-aware servers
        also report per-shard state)."""
        return self.request("health")

    def metrics(self) -> dict:
        """The server's full observability frame: metrics snapshot,
        live telemetry, and (when enabled server-side) the SLO report
        and profiler snapshot — what ``python -m repro.obs.export``
        renders as Prometheus text."""
        return self.request("metrics")

    def manifest(self) -> dict:
        """The server's manifest payload (signature-verified when the
        client holds the repository key)."""
        manifest = self.request("manifest")["manifest"]
        if self.manifest_key is not None:
            return verify_manifest(manifest, self.manifest_key)
        payload = manifest.get("payload")
        if not isinstance(payload, dict):
            raise BundleError("manifest carries no payload")
        return payload

    def fetch_rules(self, digest: str) -> list:
        """One bundle's rules, verified against the content digest."""
        response = self.request("bundle", digest=digest)
        return verify_bundle(response["bundle"], digest)

    def report_gaps(self) -> int:
        """Upload the recorder's drained batch; returns gaps sent."""
        report = self.recorder.drain()
        if not report:
            return 0
        with get_tracer().span("service.report_gaps", gaps=len(report)):
            response = self.request("report_gaps", gaps=report)
        metrics = get_metrics()
        metrics.inc("service.client.gap_reports")
        metrics.inc("service.client.gaps_reported", len(report))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "service.gap_report",
                gaps=len(report),
                new=response.get("new", 0),
            )
        return len(report)

    def flush(self) -> dict:
        """Ask the server to run a learning round now."""
        return self.request("flush")

    def ingest_source(self, source: str, origin: str | None = None,
                      styles: tuple[str, ...] = ("llvm", "gcc"),
                      opt_level: int = 2) -> dict:
        """Hand one corpus program to the server's online learner.

        The server compiles ``source`` in both codegen styles, stages
        its candidates under the ``corpus:<digest>`` origin, and queues
        synthetic whole-function gaps; a following :meth:`flush` (or
        the server's auto-learn scheduler) runs the verification round.
        """
        fields = {"source": source, "styles": list(styles),
                  "opt_level": opt_level}
        if origin is not None:
            fields["origin"] = origin
        with get_tracer().span("service.ingest_source"):
            response = self.request("ingest_source", **fields)
        metrics = get_metrics()
        metrics.inc("service.client.programs_ingested")
        metrics.inc("service.client.ingest_gaps",
                    int(response.get("new_gaps", 0)))
        return response

    # -- sync + hot-install --------------------------------------------------

    def _compatible(self, entry: dict) -> bool:
        return (
            entry.get("direction") == self.direction
            and entry.get("semantics") == self.semantics_version
        )

    def sync(self, engine) -> SyncResult:
        """Pull new bundles and hot-install them into ``engine``.

        Cold start (generation 0) walks the full signed manifest;
        afterwards only the delta since the last synced generation
        moves over the wire.  Rules install through
        ``engine.hot_install``, so affected translated blocks are
        invalidated and retranslate lazily.
        """
        result = SyncResult(cold=self.generation == 0)
        tracer = get_tracer()
        with tracer.span("service.sync", cold=result.cold,
                         since=self.generation):
            if result.cold:
                payload = self.manifest()
                generation = payload["generation"]
                entries = payload["bundles"]
            else:
                response = self.request("delta", since=self.generation)
                generation = response["generation"]
                entries = response["entries"]
            installed = invalidated = fetched = 0
            for entry in entries:
                digest = entry.get("digest", "")
                if digest in self.installed_digests:
                    continue
                if not self._compatible(entry):
                    result.skipped_incompatible += 1
                    continue
                rules = self.fetch_rules(digest)
                fetched += len(rules)
                new_rules, newly_invalid = engine.hot_install(
                    rules, source="sync", digest=digest
                )
                installed += new_rules
                invalidated += newly_invalid
                self.installed_digests.add(digest)
                result.bundles += 1
                result.digests.append(digest)
            self.generation = max(self.generation, generation)
            result.generation = self.generation
            result.rules_fetched = fetched
            result.rules_installed = installed
            result.blocks_invalidated = invalidated
        metrics = get_metrics()
        metrics.inc("service.client.syncs")
        metrics.inc("service.client.bundles_installed", result.bundles)
        metrics.inc("service.client.rules_installed",
                    result.rules_installed)
        if tracer.enabled:
            tracer.event(
                "service.sync_result",
                cold=result.cold,
                generation=result.generation,
                bundles=result.bundles,
                rules_fetched=result.rules_fetched,
                rules_installed=result.rules_installed,
                blocks_invalidated=result.blocks_invalidated,
            )
        return result

    # -- live-engine wiring --------------------------------------------------

    def attach(self, engine, every: int = 256,
               flush: bool = False) -> None:
        """Wire this client into a live engine.

        Installs the gap recorder as the engine's ``gap_sink`` and a
        dispatch-loop ``tick`` that, every ``every`` dispatches,
        uploads pending gaps and pulls + hot-installs any new bundles —
        the mid-run online-learning loop.  ``flush=True`` additionally
        asks the server to learn synchronously each tick (deterministic
        single-client runs; fleets rely on the server's own scheduler).

        Graceful degradation: a tick that cannot reach the service
        (even after the client's retry budget) never raises into the
        dispatch loop — the engine keeps translating with its
        last-synced rules, ``degraded`` flips on (gauge metric
        ``service.client.degraded``), and a later successful tick
        flips it back off.
        """
        engine.gap_sink = self.recorder
        counter = {"dispatches": 0}

        def tick(eng) -> None:
            counter["dispatches"] += 1
            if counter["dispatches"] % every:
                return
            try:
                reported = self.report_gaps()
                if reported and flush:
                    self.flush()
                self.sync(eng)
            except (ServiceError, OSError) as exc:
                self._enter_degraded(exc)
                return
            if self.degraded:
                self._leave_degraded()

        engine.tick = tick

    def _enter_degraded(self, exc: Exception) -> None:
        metrics = get_metrics()
        metrics.inc("service.client.tick_failures")
        if not self.degraded:
            self.degraded = True
            metrics.inc("service.client.degraded_entries")
            metrics.observe("service.client.degraded", 1)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "service.client.degraded", entered=True,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def _leave_degraded(self) -> None:
        self.degraded = False
        metrics = get_metrics()
        metrics.inc("service.client.degraded_exits")
        metrics.observe("service.client.degraded", 0)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("service.client.degraded", entered=False)

    def detach(self, engine) -> None:
        engine.gap_sink = None
        engine.tick = None
