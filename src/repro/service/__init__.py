"""The rule service: a shared rule repository served to DBT clients.

The paper learns rules offline and installs them once; its follow-up
(Jiang et al., 2024) shows the real win is a *shared, continuously
grown* rule corpus deployed across many translator instances.  This
package provides that subsystem:

* :mod:`repro.service.repo` — content-addressed on-disk rule
  repository: immutable bundles keyed by direction + semantics
  version, a signed manifest, delta sync;
* :mod:`repro.service.protocol` — the length-prefixed JSON wire
  format shared by server and client;
* :mod:`repro.service.gaps` — canonicalized translation-gap capture
  (client side) and aggregation (server side);
* :mod:`repro.service.learner` — gap-driven online learning: corpus
  candidates are staged once, and observed coverage gaps select which
  of them pay for verification;
* :mod:`repro.service.server` — the asyncio rule server
  (``repro-serve``): serves manifests/bundles, accepts batched gap
  reports, schedules learning, publishes new bundles;
* :mod:`repro.service.client` — the DBT-side client: cold/delta sync,
  gap upload, hot-install into a live engine, and bounded-retry
  failover with graceful read-only degradation;
* :mod:`repro.service.fleet` — the sharded, replicated fleet layer
  (``repro-fleet``): a consistent-hash router/coordinator that fans
  gap reports across N shards, merges their deltas into one
  generation-monotone view, and catches restarted shards up from its
  journal before giving them traffic.
"""

import importlib

#: Public name -> defining submodule.  Resolved lazily so that
#: ``python -m repro.service.server`` does not import the server module
#: twice (once as a package attribute, once as ``__main__``).
_EXPORTS = {
    "BundleError": "repro.service.repo",
    "FleetCoordinator": "repro.service.fleet",
    "GapAggregator": "repro.service.gaps",
    "GapRecorder": "repro.service.gaps",
    "HashRing": "repro.service.fleet",
    "OnlineLearner": "repro.service.learner",
    "RuleRepository": "repro.service.repo",
    "RuleService": "repro.service.server",
    "RuleServiceClient": "repro.service.client",
    "ShardLink": "repro.service.fleet",
    "SyncResult": "repro.service.client",
    "canonical_gap": "repro.service.gaps",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
