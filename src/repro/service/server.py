"""The rule server: serve bundles, accept gap reports, learn online.

:class:`RuleService` is the transport-independent request handler —
every operation is a pure ``dict -> dict`` call, which is what the
unit tests exercise.  :func:`serve` wraps it in an asyncio
length-prefixed JSON server over a unix socket (or TCP), and
``repro-serve`` (:func:`main`) is the CLI entry point.

Operations (requests are ``{"op": ...}``; responses ``{"ok": true}``
envelopes, see :mod:`repro.service.protocol`):

``ping``
    Liveness + the server's direction and semantics version.
``manifest``
    The signed repository manifest.
``bundle``
    One immutable bundle by content digest.
``delta``
    Manifest entries newer than the client's generation.
``report_gaps``
    Batched canonicalized translation gaps.  New gaps are queued for
    the online learning scheduler; with ``auto_learn`` the server
    coalesces reports for ``auto_learn_delay`` seconds and then runs a
    learning round in the event loop's default executor (so serving
    stays responsive while the solver grinds).
``flush``
    Run a learning round on the pending gaps *now* and publish the
    resulting bundle; the deterministic path tests and scripted
    clients use.
``stats``
    Gap/bundle/learning counters plus live windowed telemetry
    (:class:`~repro.obs.timeseries.ServiceTelemetry`): gaps/sec,
    rules published, per-op frame latency quantiles, learner queue
    depth.  ``repro-top`` polls this op.
``health``
    Liveness *and readiness*: a shard started with ``--join-fleet``
    reports ``ready: false`` until its fleet coordinator finishes the
    catch-up replay (``catchup_done``), so a supervisor can tell an
    alive-but-stale replica from one safe to take traffic.
``install_bundle``
    Publish one externally supplied bundle (digest-verified,
    idempotent by rule identity) — the catch-up/replication op the
    fleet coordinator replays its journal with.

A SIGTERM or SIGINT drains gracefully: the listener closes, a
pending/in-flight learning round finishes, and ``main()`` saves the
persistent verification cache before exiting — so supervisors and the
fleet gate can kill shards without losing settled verdicts.

Every request's handling is timed into the telemetry, and when a
request envelope carries a ``trace`` field the handler runs inside a
span parented on the client's context — so one trace id follows a gap
report from the client's engine into the learning round that settles
it.

The server is single-writer by construction: one asyncio loop owns the
repository and the gap aggregator, concurrent client connections are
interleaved per frame, and learning rounds are serialized by an
asyncio lock.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import time

from repro.learning.cache import SEMANTICS_VERSION, VerificationCache
from repro.obs.metrics import format_metrics, get_metrics, set_metrics
from repro.obs.profiler import (
    SamplingProfiler,
    get_profiler,
    phase,
    set_profiler,
)
from repro.obs.slo import SloEngine
from repro.obs.timeseries import ServiceTelemetry
from repro.obs.trace import get_tracer, tracing
from repro.service.gaps import GapAggregator
from repro.service.learner import OnlineLearner
from repro.service.protocol import (
    ProtocolError,
    error_response,
    extract_trace,
    ok_response,
    read_message,
    write_message,
)
from repro.service.repo import BundleError, RuleRepository, verify_bundle

DIRECTION = "arm-x86"


def remove_stale_socket(path: str) -> None:
    """Unlink a unix-socket file only if no server answers on it."""
    import os
    import socket as socket_module

    if not os.path.exists(path):
        return
    probe = socket_module.socket(socket_module.AF_UNIX,
                                 socket_module.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except OSError:
        with contextlib.suppress(OSError):
            os.unlink(path)
    finally:
        probe.close()


class RuleService:
    """Transport-independent request handling + learning scheduling."""

    def __init__(
        self,
        repo: RuleRepository,
        learner: OnlineLearner | None = None,
        direction: str = DIRECTION,
        slo: SloEngine | None = None,
        ready: bool = True,
    ) -> None:
        self.repo = repo
        self.learner = learner
        self.direction = direction
        self.slo = slo
        self.gaps = GapAggregator()
        self.telemetry = ServiceTelemetry()
        self.learn_rounds = 0
        self.rules_published = 0
        self.bundles_published = 0
        #: False for a shard awaiting fleet catch-up (``--join-fleet``);
        #: flipped by the coordinator's ``catchup_done``.
        self.ready = ready
        self.learn_errors = 0
        #: Corpus-ingestion counters (``ingest_source`` op): programs
        #: accepted, synthetic gaps absorbed, and published rules whose
        #: origin is a ``corpus:`` tag.
        self.corpus_stats = {"programs": 0, "gaps": 0, "rules": 0}

    # -- request dispatch ----------------------------------------------------

    def handle(self, request: dict) -> dict:
        if not isinstance(request, dict):
            return error_response("request must be a JSON object")
        op = request.get("op")
        context = extract_trace(request)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return error_response(f"unknown op {op!r}")
        tracer = get_tracer()
        start = time.perf_counter()
        try:
            with phase(f"service.op.{op}"):
                if tracer.enabled:
                    # Parent the handling span on the requesting
                    # client's span when the envelope carried one.
                    with tracer.span(f"service.op.{op}",
                                     context=context):
                        return handler(request)
                return handler(request)
        except (BundleError, KeyError, TypeError, ValueError) as exc:
            return error_response(f"{type(exc).__name__}: {exc}")
        finally:
            elapsed = time.perf_counter() - start
            self.telemetry.observe_op(str(op), elapsed)
            if self.slo is not None:
                # Per-frame SLO accounting: each op feeds the burn-rate
                # counters of any latency objective on source "op:<op>".
                self.slo.record(f"op:{op}", elapsed * 1000.0)

    def _op_ping(self, request: dict) -> dict:
        return ok_response(
            direction=self.direction,
            semantics=self.repo.semantics_version,
            generation=self.repo.generation,
        )

    def _op_health(self, request: dict) -> dict:
        """Alive vs caught-up, for supervisors and the fleet router."""
        return ok_response(
            alive=True,
            ready=self.ready,
            direction=self.direction,
            semantics=self.repo.semantics_version,
            generation=self.repo.generation,
            gaps_pending=self.gaps.pending,
            learn_errors=self.learn_errors,
        )

    def _op_catchup_done(self, request: dict) -> dict:
        """The coordinator finished replaying its journal into this
        shard; start taking traffic.  Idempotent."""
        self.ready = True
        return ok_response(ready=True, generation=self.repo.generation)

    def _op_install_bundle(self, request: dict) -> dict:
        """Publish one externally supplied bundle (catch-up replay).

        The body is verified against the supplied content digest, and
        publishing dedups by rule identity — replaying a bundle whose
        rules this shard already serves is a no-op.
        """
        digest = request["digest"]
        document = request["bundle"]
        rules = verify_bundle(document, digest)
        if document.get("semantics") != self.repo.semantics_version:
            raise BundleError(
                f"bundle semantics {document.get('semantics')} != "
                f"shard semantics {self.repo.semantics_version}"
            )
        direction = document.get("direction", self.direction)
        ref = self.repo.publish(rules, direction)
        if ref is not None:
            self.bundles_published += 1
        return ok_response(
            installed=ref is not None,
            rules=ref.rules if ref is not None else 0,
            generation=self.repo.generation,
        )

    def _op_manifest(self, request: dict) -> dict:
        return ok_response(manifest=self.repo.manifest())

    def _op_bundle(self, request: dict) -> dict:
        digest = request["digest"]
        return ok_response(digest=digest,
                           bundle=self.repo.load_bundle(digest))

    def _op_delta(self, request: dict) -> dict:
        since = int(request.get("since", 0))
        entries = self.repo.delta_since(since)
        return ok_response(
            generation=self.repo.generation,
            entries=[ref.to_json() for ref in entries],
        )

    def _op_report_gaps(self, request: dict) -> dict:
        report = request.get("gaps", [])
        if not isinstance(report, list):
            return error_response("gaps must be a list")
        new = self.gaps.absorb(report)
        self.telemetry.gaps.add(len(report))
        return ok_response(
            accepted=len(report),
            new=new,
            pending=self.gaps.pending,
        )

    def _op_ingest_source(self, request: dict) -> dict:
        """Ingest one corpus program into the online learner.

        Compiles the MiniC ``source`` in the requested codegen styles,
        stages the builds under the program's ``corpus:<digest>``
        origin, and absorbs one synthetic gap per compiled function —
        the whole-function window contains every candidate the program
        staged, so the next learning round (client ``flush``, or the
        auto-learn scheduler) verifies exactly this program's fresh
        candidates.  Learning itself stays on the serialized round
        path; this op never blocks serving on the solver.
        """
        if self.learner is None:
            return error_response(
                "server has no online learner (started without --corpus)"
            )
        from repro.corpus.pipeline import corpus_origin, program_digest
        from repro.minic.compile import compile_source
        from repro.service.gaps import canonical_gap

        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            return error_response("ingest_source needs MiniC source text")
        origin = request.get("origin") or \
            corpus_origin(program_digest(source))
        styles = request.get("styles") or ["llvm", "gcc"]
        opt_level = int(request.get("opt_level", 2))
        staged = 0
        gaps: list[dict] = []
        for style in styles:
            guest = compile_source(source, "arm", opt_level, style)
            host = compile_source(source, "x86", opt_level, style)
            staged += self.learner.add_build(origin, (guest, host))
            for name, function in guest.functions.items():
                if name in guest.runtime_functions:
                    continue
                gap = canonical_gap(function.instrs, self.direction)
                gaps.append(dict(gap.to_json(), count=1))
        new = self.gaps.absorb(gaps)
        self.corpus_stats["programs"] += 1
        self.corpus_stats["gaps"] += new
        self.telemetry.gaps.add(len(gaps))
        get_metrics().inc("service.corpus.programs")
        return ok_response(
            origin=origin,
            staged_candidates=staged,
            gaps=len(gaps),
            new_gaps=new,
            pending=self.gaps.pending,
        )

    def _op_flush(self, request: dict) -> dict:
        published = self.run_learning_round()
        return ok_response(
            generation=self.repo.generation,
            published=published is not None,
            rules=published.rules if published is not None else 0,
        )

    def _op_stats(self, request: dict) -> dict:
        extras = {}
        if self.slo is not None:
            extras["slo"] = self.slo_report()
        profile = self._profile_frame()
        if profile is not None:
            extras["profile"] = profile
        return ok_response(
            generation=self.repo.generation,
            bundles=len(self.repo.entries()),
            gaps={
                "seen": self.gaps.unique,
                "reported": self.gaps.reported,
                "pending": self.gaps.pending,
                "settled": self.gaps.settled,
            },
            gaps_reported=self.gaps.reported,
            gaps_unique=self.gaps.unique,
            gaps_pending=self.gaps.pending,
            gaps_settled=self.gaps.settled,
            learn_rounds=self.learn_rounds,
            rules_published=self.rules_published,
            bundles_published=self.bundles_published,
            corpus=dict(self.corpus_stats),
            telemetry=self.telemetry.snapshot(
                queue_depth=self.gaps.pending,
            ),
            **extras,
        )

    def _op_metrics(self, request: dict) -> dict:
        """Everything the Prometheus exposition renders, in one frame:
        the global metrics snapshot, windowed telemetry, the SLO report
        (when an SLO engine is loaded) and the live profile (when the
        sampling profiler runs)."""
        payload = {
            "metrics": get_metrics().snapshot(),
            "telemetry": self.telemetry.snapshot(
                queue_depth=self.gaps.pending,
            ),
        }
        if self.slo is not None:
            payload["slo"] = self.slo_report()
        profile = self._profile_frame()
        if profile is not None:
            payload["profile"] = profile
        return ok_response(**payload)

    @staticmethod
    def _profile_frame() -> dict | None:
        """The live profile, when the sampling profiler is on (or has
        collected samples before being stopped)."""
        profiler = get_profiler()
        snapshot = profiler.snapshot()
        if profiler.running or snapshot["total_samples"]:
            return snapshot
        return None

    def slo_report(self) -> dict:
        """Evaluate the loaded objectives against live state: per-op
        latency streams fed by :meth:`handle`, plus the per-op latency
        sketches for quantile objectives on ``op:`` sources."""
        assert self.slo is not None
        sketches = {
            f"op:{name}": sketch
            for name, sketch in self.telemetry.op_sketches().items()
        }
        return self.slo.evaluate(sketches=sketches)

    # -- online learning scheduler -------------------------------------------

    def run_learning_round(self, context=None):
        """Dedup pending gaps, learn on matching candidates, publish.

        Returns the published :class:`~repro.service.repo.BundleRef`
        (None when the round yielded nothing new).  Synchronous — the
        asyncio layer decides where it runs; ``context`` optionally
        parents the round's trace records on the triggering request's
        span (the async path runs off the requesting thread, so the
        ambient stack cannot carry it).
        """
        pending = self.gaps.take_pending()
        if not pending or self.learner is None:
            return None
        self.learn_rounds += 1
        with phase("service.learn"):
            round_ = self.learner.learn(pending)
        ref = None
        if round_.rules:
            ref = self.repo.publish(round_.rules, self.direction)
        if ref is not None:
            self.bundles_published += 1
            self.rules_published += ref.rules
            self.telemetry.rules.add(ref.rules)
            self.corpus_stats["rules"] += sum(
                1 for rule in round_.rules
                if str(rule.origin).startswith("corpus:")
            )
        tracer = get_tracer()
        if tracer.enabled:
            digest = ref.digest if ref is not None else None
            # One settlement record per gap, each on the trace the
            # capturing client rooted — the join point that lets the
            # stitched report connect a miss to the bundle (and so to
            # the hot-install) that closed it.
            for gap in pending:
                tracer.event(
                    "service.gap_settled",
                    context=gap.context,
                    digest=gap.digest,
                    bundle=digest,
                    rules=len(round_.rules),
                )
            tracer.event(
                "service.publish",
                context=context,
                gaps=round_.gaps,
                candidates=round_.matched_candidates,
                verify_calls=round_.verify_calls,
                rules=len(round_.rules),
                digest=digest,
                generation=self.repo.generation,
            )
        return ref


class AsyncRuleServer:
    """Asyncio transport around a :class:`RuleService`."""

    def __init__(self, service: RuleService, auto_learn: bool = True,
                 auto_learn_delay: float = 0.2) -> None:
        self.service = service
        self.auto_learn = auto_learn
        self.auto_learn_delay = auto_learn_delay
        self._learn_lock = asyncio.Lock()
        self._scheduled: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set = set()

    async def _flush_async(self, request: dict | None = None) -> dict:
        # Learning is CPU-bound; run it off-loop so concurrent clients
        # keep getting served, serialized so rounds never interleave.
        # The requesting client's trace context travels explicitly:
        # the executor thread has no ambient span stack.
        context = extract_trace(request) if request is not None else None
        start = time.perf_counter()
        async with self._learn_lock:
            loop = asyncio.get_running_loop()
            published = await loop.run_in_executor(
                None, lambda: self.service.run_learning_round(context)
            )
        self.service.telemetry.observe_op(
            "flush", time.perf_counter() - start
        )
        return ok_response(
            generation=self.service.repo.generation,
            published=published is not None,
            rules=published.rules if published is not None else 0,
        )

    def _schedule_learning(self) -> None:
        if self._scheduled is not None and not self._scheduled.done():
            return  # a round is already pending; it will pick these up

        async def deferred() -> None:
            await asyncio.sleep(self.auto_learn_delay)
            await self._flush_async()

        self._scheduled = asyncio.ensure_future(deferred())
        self._scheduled.add_done_callback(self._observe_learn_task)

    def _observe_learn_task(self, task: asyncio.Task) -> None:
        """A background learning round must never fail silently: log
        it, trace it, count it — the fleet health op surfaces the
        counter."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        detail = f"{type(exc).__name__}: {exc}"
        self.service.learn_errors += 1
        get_metrics().inc("service.learn.errors")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("service.learn.error", error=detail)
        print(f"repro-serve: background learning round failed: {detail}",
              file=sys.stderr)

    async def handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, error_response(str(exc)))
                    break
                if request is None:
                    break
                op = request.get("op") if isinstance(request, dict) else None
                if op == "flush":
                    response = await self._flush_async(request)
                else:
                    response = self.service.handle(request)
                    if (
                        op == "report_gaps"
                        and response.get("ok")
                        and response.get("new")
                        and self.auto_learn
                    ):
                        self._schedule_learning()
                await write_message(writer, response)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown with the connection still open; exiting
            # normally here keeps the streams callback from logging a
            # spurious "Exception in callback" at teardown.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def abort(self) -> None:
        """Hard stop: drop every live connection and the listener
        without draining — what a crash looks like to peers.  The
        chaos tests use this to simulate a shard kill in-process."""
        if self._scheduled is not None:
            self._scheduled.cancel()
            # A round that already failed re-raises on await; the
            # done-callback observed it, nothing more to do here.
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._scheduled
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def start_unix(self, path: str) -> None:
        # A SIGKILLed predecessor leaves its socket file behind; bind
        # would fail on it.  Only unlink when nothing answers — a stale
        # file refuses connections, a live server accepts them.
        remove_stale_socket(path)
        self._server = await asyncio.start_unix_server(
            self.handle_connection, path=path
        )

    async def start_tcp(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self.handle_connection, host=host, port=port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start_unix/start_tcp first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting connections, let a
        pending or in-flight learning round run to completion, release
        the learn lock.  ``close()`` afterwards is a no-op fast path.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        task = self._scheduled
        if task is not None and not task.done():
            with contextlib.suppress(Exception):
                await task
        # An explicit-flush round may still hold the lock; wait it out.
        async with self._learn_lock:
            pass

    async def close(self) -> None:
        if self._scheduled is not None:
            self._scheduled.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._scheduled
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


def build_service(
    repo_dir: str,
    corpus: tuple[str, ...] = (),
    cache: VerificationCache | None = None,
    jobs: int = 1,
    slo: SloEngine | None = None,
    ready: bool = True,
) -> RuleService:
    """Assemble a service: repository + (optional) corpus learner."""
    repo = RuleRepository(repo_dir)
    learner = None
    if corpus:
        from repro.benchsuite import build_learning_pair

        builds = {
            name: build_learning_pair(name) for name in corpus
        }
        learner = OnlineLearner(builds, cache=cache, jobs=jobs)
    return RuleService(repo, learner, slo=slo, ready=ready)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve translation-rule bundles to DBT clients and "
                    "learn new rules online from their reported "
                    "translation gaps.",
    )
    parser.add_argument("--repo", required=True, metavar="DIR",
                        help="rule repository directory (created if absent)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", metavar="PATH",
                       help="serve on this unix socket")
    group.add_argument("--port", type=int, metavar="N",
                       help="serve on this TCP port (localhost)")
    parser.add_argument("--corpus", default="", metavar="NAMES",
                        help="comma-separated benchmark names to stage "
                             "for gap-driven learning (empty: serve the "
                             "repository read-only)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent verification-cache directory "
                             "(default: <repo>/verify-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="learn without the persistent cache")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for online verification")
    parser.add_argument("--learn-delay", type=float, default=0.2,
                        metavar="SECONDS",
                        help="coalescing delay before a gap report "
                             "triggers a learning round (default: 0.2)")
    parser.add_argument("--no-auto-learn", action="store_true",
                        help="only learn on explicit client flush requests")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSON-lines trace of service "
                             "activity here")
    parser.add_argument("--metrics", action="store_true",
                        help="dump metrics to stderr on shutdown")
    parser.add_argument("--slo", metavar="PATH",
                        help="load SLO objectives from this TOML file; "
                             "per-op latency feeds multi-window burn "
                             "rates, breaches emit slo.alert trace "
                             "events and surface in stats/metrics ops")
    parser.add_argument("--profile-hz", type=int, default=0, metavar="HZ",
                        help="run the sampling profiler at this rate; "
                             "the live profile rides in the stats and "
                             "metrics ops (0: off)")
    parser.add_argument("--join-fleet", action="store_true",
                        help="start not-ready: the health op reports "
                             "ready=false until a fleet coordinator "
                             "completes the catch-up replay")
    args = parser.parse_args(argv)

    set_metrics(None)
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or f"{args.repo}/verify-cache"
        cache = VerificationCache.at_dir(cache_dir)
    corpus = tuple(
        name for name in args.corpus.split(",") if name.strip()
    )
    slo = SloEngine.from_toml(args.slo) if args.slo else None
    profiler = None
    if args.profile_hz > 0:
        profiler = SamplingProfiler(hz=args.profile_hz)
        set_profiler(profiler)
        profiler.start()
    service = build_service(args.repo, corpus, cache=cache, jobs=args.jobs,
                            slo=slo, ready=not args.join_fleet)
    server = AsyncRuleServer(
        service,
        auto_learn=not args.no_auto_learn,
        auto_learn_delay=args.learn_delay,
    )

    async def run() -> None:
        # SIGTERM (what supervisors and the fleet gate send) and
        # SIGINT both drain: finish the in-flight learning round,
        # close the listener, and fall through to the cache save
        # below — a bare SIGTERM used to drop settled verdicts.
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        if args.socket:
            await server.start_unix(args.socket)
            where = args.socket
        else:
            await server.start_tcp("127.0.0.1", args.port)
            where = f"127.0.0.1:{args.port}"
        print(f"repro-serve: listening on {where} "
              f"(generation {service.repo.generation}, "
              f"{len(service.repo.entries())} bundle(s), "
              f"corpus {len(corpus)})", file=sys.stderr)
        try:
            await stop.wait()
            print("repro-serve: draining (signal received)",
                  file=sys.stderr)
            await server.drain()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    trace_scope = tracing(args.trace) if args.trace \
        else contextlib.nullcontext()
    with trace_scope:
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    if profiler is not None:
        profiler.stop()
    if cache is not None:
        cache.save()
    if args.metrics:
        print(format_metrics(get_metrics()), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
