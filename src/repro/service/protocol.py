"""Length-prefixed JSON framing shared by the rule server and client.

One frame is a 4-byte big-endian payload length followed by a UTF-8
JSON object.  The format is symmetric (requests and responses use the
same framing), self-delimiting on a stream socket, and bounded: frames
above :data:`MAX_FRAME_BYTES` are rejected before allocation so a
corrupt or hostile peer cannot balloon the process.

Both transport flavours live here so they cannot drift apart:

* :func:`send_message` / :func:`recv_message` — blocking ``socket``
  helpers for the (synchronous) client;
* :func:`read_message` / :func:`write_message` — asyncio
  stream-reader/writer helpers for the server.

Requests are ``{"op": ..., ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": "..."}``.  :func:`error_response` and
:func:`ok_response` keep the envelope uniform.

Request envelopes may additionally carry a ``trace`` field — the wire
form of a :class:`~repro.obs.trace.SpanContext` — so the span a client
sends a request from continues as the parent of the server's handling
span.  :func:`attach_trace` / :func:`extract_trace` keep the field
name and shape in one place; a request without one (or from a
tracing-disabled peer) extracts to ``None`` and is handled normally.
"""

from __future__ import annotations

import json
import socket
import struct

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's JSON payload.  A full-corpus bundle is
#: ~100 KiB; 64 MiB leaves three orders of magnitude of headroom while
#: still catching garbage lengths from a desynchronized stream.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A malformed, oversized, or truncated frame."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire representation."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )


# -- blocking socket transport (client side) ---------------------------------


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool = False) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; None on a clean EOF between frames."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length)
    return decode_payload(payload)


# -- asyncio stream transport (server side) ----------------------------------


async def read_message(reader) -> dict | None:
    """Read one frame from an asyncio StreamReader; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} "
            "bytes read)"
        ) from exc
    return decode_payload(payload)


async def write_message(writer, message: dict) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- trace-context propagation -------------------------------------------------


def attach_trace(message: dict, context_wire: dict | None) -> dict:
    """Attach a span context's wire form to a request envelope
    (no-op for ``None`` — tracing disabled or outside any span)."""
    if context_wire:
        message["trace"] = context_wire
    return message


def extract_trace(message: dict):
    """Pop the ``trace`` field off a request envelope and parse it.

    Returns a :class:`~repro.obs.trace.SpanContext` or ``None``; always
    removes the field so op handlers never see transport metadata.
    """
    from repro.obs.trace import extract_context

    if not isinstance(message, dict):
        return None
    return extract_context(message.pop("trace", None))


# -- response envelope -------------------------------------------------------


def ok_response(**fields) -> dict:
    response = {"ok": True}
    response.update(fields)
    return response


def error_response(message: str) -> dict:
    return {"ok": False, "error": message}
