"""Gap-driven online learning over a staged corpus.

Offline learning verifies *every* paramizable candidate a corpus
yields; at service scale that is wasteful — most candidates cover code
no connected client ever misses.  The online learner instead stages
the cheap pipeline stages once (extract + paramize, a few percent of
learning wall-clock) and lets observed translation gaps select which
candidates pay for verification: a candidate is *relevant* to a gap
when its guest mnemonic sequence occurs as a contiguous window of the
gap's mnemonic sequence — the necessary condition for any rule learned
from it to match inside the gap (rule matching binds operands but
never mnemonics).

Verification reuses the existing machinery end to end: candidates are
canonical (:mod:`repro.learning.canon`), settled verdicts live in the
same persistent :class:`~repro.learning.cache.VerificationCache` the
offline pipeline uses, an in-process memo dedups within the service's
lifetime, and with ``jobs > 1`` unsettled candidates fan out through
:func:`repro.learning.parallel._resolve_chunk` on a process pool —
the same worker entry point parallel offline learning runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.learning.cache import VerificationCache
from repro.learning.canon import CandidateOutcome
from repro.learning.direction import ARM_TO_X86
from repro.learning.parallel import DEFAULT_CHUNK_SIZE, _resolve_chunk
from repro.learning.pipeline import (
    Candidate,
    LearningReport,
    _extract_stage,
    _paramize_stage,
)
from repro.learning.rule import Rule, dedup_rules
from repro.minic.compile import CompiledProgram
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.service.gaps import Gap


def _has_window(haystack: tuple[str, ...], needle: tuple[str, ...]) -> bool:
    """Does ``needle`` occur contiguously inside ``haystack``?"""
    span = len(needle)
    if not span or span > len(haystack):
        return False
    return any(
        haystack[start : start + span] == needle
        for start in range(len(haystack) - span + 1)
    )


@dataclass
class LearnRound:
    """Outcome of one gap-driven learning round."""

    gaps: int = 0
    matched_candidates: int = 0
    resolved: int = 0
    verify_calls: int = 0
    rules: list[Rule] = None

    def __post_init__(self) -> None:
        if self.rules is None:
            self.rules = []


class OnlineLearner:
    """Stage a corpus once; verify only what observed gaps select."""

    def __init__(
        self,
        builds: dict[str, tuple[CompiledProgram, CompiledProgram]],
        cache: VerificationCache | None = None,
        jobs: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.builds = builds
        self.cache = cache
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.direction = ARM_TO_X86
        #: digest -> settled verdict (service-lifetime dedup).
        self.memo: dict[str, CandidateOutcome] = {}
        self._staged: list[tuple[str, Candidate]] | None = None
        #: Builds ingested after construction (corpus feed); names may
        #: repeat — one origin arrives once per codegen style.
        self._extra_builds: list[
            tuple[str, tuple[CompiledProgram, CompiledProgram]]
        ] = []

    # -- staging -------------------------------------------------------------

    def _stage_build(
        self, name: str,
        pair: tuple[CompiledProgram, CompiledProgram],
    ) -> list[tuple[str, Candidate]]:
        # Throwaway report, trace-silent: staging wants candidates
        # only; Table 1 accounting belongs to offline learning, and
        # learn.* events here would orphan in the server trace (no
        # learn.report ever follows them).
        guest, host = pair
        report = LearningReport(benchmark=name)
        pairs = _extract_stage(guest, host, self.direction, report,
                               trace=False)
        return [
            (name, candidate)
            for candidate in _paramize_stage(pairs, self.direction,
                                             report, trace=False)
        ]

    def staged_candidates(self) -> list[tuple[str, Candidate]]:
        """(benchmark, candidate) pairs, extracted + paramized lazily
        on first use and reused for the server's lifetime."""
        if self._staged is None:
            tracer = get_tracer()
            start = time.perf_counter()
            staged: list[tuple[str, Candidate]] = []
            with tracer.span("service.stage", corpus=len(self.builds)):
                for name, pair in self.builds.items():
                    staged.extend(self._stage_build(name, pair))
                for name, pair in self._extra_builds:
                    staged.extend(self._stage_build(name, pair))
            self._staged = staged
            metrics = get_metrics()
            metrics.inc("service.learner.staged_candidates", len(staged))
            metrics.inc("service.learner.stage_seconds",
                        time.perf_counter() - start)
        return self._staged

    def add_build(
        self, name: str,
        pair: tuple[CompiledProgram, CompiledProgram],
    ) -> int:
        """Ingest one dual build after construction (corpus feed).

        Stages it immediately when the corpus is already staged (so
        the next round sees it) and remembers it otherwise.  ``name``
        becomes the origin of any rule learned from it; names may
        repeat across codegen styles.  Returns how many candidates the
        build staged (0 when staging is still pending).
        """
        self._extra_builds.append((name, pair))
        if self._staged is None:
            return 0
        fresh = self._stage_build(name, pair)
        self._staged.extend(fresh)
        get_metrics().inc("service.learner.staged_candidates", len(fresh))
        return len(fresh)

    # -- gap matching --------------------------------------------------------

    def match_candidates(self, gaps: list[Gap]) -> list[tuple[str, Candidate]]:
        """Staged candidates relevant to any of ``gaps``.

        Deduped by canonical digest, in staging order (corpus order,
        so verdict reuse is deterministic).  Settled candidates are
        included — replaying their memoized verdict costs nothing and
        keeps each round's rule set complete for its own gaps.
        """
        windows = [
            gap.mnemonics for gap in gaps
            if gap.direction == self.direction.name and gap.mnemonics
        ]
        if not windows:
            return []
        selected: dict[str, tuple[str, Candidate]] = {}
        for name, candidate in self.staged_candidates():
            if candidate.digest in selected:
                continue
            needle = tuple(
                instr.mnemonic for instr in candidate.pair.guest
            )
            if any(_has_window(window, needle) for window in windows):
                selected[candidate.digest] = (name, candidate)
        return list(selected.values())

    # -- learning ------------------------------------------------------------

    def learn(self, gaps: list[Gap]) -> LearnRound:
        """One learning round: verify the candidates ``gaps`` select.

        Settled digests (memo or persistent cache) replay for free;
        the remainder resolves through ``_resolve_chunk`` — on a
        process pool when ``jobs > 1``, inline otherwise.  Returns the
        round summary with the (deduped) newly learned rules.
        """
        round_ = LearnRound(gaps=len(gaps))
        selected = self.match_candidates(gaps)
        round_.matched_candidates = len(selected)
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span("service.learn", gaps=len(gaps),
                         candidates=len(selected)):
            unsettled: list[tuple[str, Candidate]] = []
            for name, candidate in selected:
                if candidate.digest in self.memo:
                    continue
                cached = self.cache.peek(candidate.digest) \
                    if self.cache is not None else None
                if cached is not None:
                    self.memo[candidate.digest] = cached
                    metrics.inc("service.learner.cache_hits")
                else:
                    unsettled.append((name, candidate))
            self._resolve(unsettled, round_)
            rules: list[Rule] = []
            for name, candidate in selected:
                outcome = self.memo[candidate.digest]
                if outcome.rule is not None:
                    rules.append(replace(
                        outcome.rule, origin=name,
                        line=candidate.pair.line,
                    ))
            round_.rules = dedup_rules(rules)
        metrics.inc("service.learner.rounds")
        metrics.inc("service.learner.rules", len(round_.rules))
        return round_

    def _resolve(self, unsettled: list[tuple[str, Candidate]],
                 round_: LearnRound) -> None:
        chunks = [
            [
                (candidate.digest, candidate.context, candidate.mappings)
                for _, candidate in unsettled[index:index + self.chunk_size]
            ]
            for index in range(0, len(unsettled), self.chunk_size)
        ]
        if not chunks:
            return
        metrics = get_metrics()
        if self.jobs > 1 and len(chunks) > 1:
            workers = min(self.jobs, len(chunks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outputs = list(pool.map(_resolve_chunk, chunks))
        else:
            outputs = [_resolve_chunk(chunk) for chunk in chunks]
        for chunk_result, snapshot in outputs:
            metrics.merge(snapshot)
            for digest, outcome in chunk_result:
                self.memo[digest] = outcome
                round_.resolved += 1
                round_.verify_calls += outcome.calls
                if self.cache is not None:
                    from repro.learning.verify import VerifyFailure

                    if outcome.failure not in (VerifyFailure.TIMEOUT,
                                               VerifyFailure.ENGINE_CRASH):
                        self.cache.put(digest, outcome)
        if self.cache is not None:
            self.cache.save()
