"""Sharded, replicated rule-service fleet: ring, router, catch-up.

One ``repro-serve`` process is a scaling *and* availability ceiling:
a crash loses gap aggregation, in-flight learning, and hot-install
delivery for every attached engine at once.  This module turns the
service layer into a fleet whose correctness contract — online
coverage equals offline coverage — holds while shards are killed and
restarted mid-run:

* :class:`HashRing` — consistent hashing of the content-addressed key
  space (gap-window digests, rule digests) across shard ids, with
  virtual nodes so load stays balanced and shard churn only moves the
  keys adjacent to the departed shard;
* :class:`ShardLink` — the coordinator's connection to one
  ``repro-serve`` shard: lazy connect, per-link request serialization,
  a queue for gap reports that arrive while the shard is down, and the
  alive/catching-up/ready state machine;
* :class:`FleetCoordinator` — an asyncio router speaking the *same*
  length-prefixed wire protocol the single server speaks, so an
  unmodified :class:`~repro.service.client.RuleServiceClient` talks to
  a fleet exactly as it talks to one server.  ``report_gaps`` fans
  gaps out by ring position; ``delta``/``manifest`` serve a single
  generation-monotone merged view; ``flush`` forwards to every ready
  shard and folds the resulting bundles back in;
* **catch-up** — the coordinator journals every published bundle into
  its own signed :class:`~repro.service.repo.RuleRepository`.  A
  restarted or freshly added shard replays that journal (digest-
  verified ``install_bundle`` ops, idempotent by rule identity) until
  its generation converges, and only then is marked *ready* and given
  traffic — the ``health`` op distinguishes alive from caught-up.

The merged view is monotone by construction: shard bundles are folded
into the coordinator's repository, whose generation only advances, and
rule-identity dedup in :meth:`~repro.service.repo.RuleRepository.publish`
means a shard that restarts from an empty directory and re-learns the
same rules never produces a duplicate fleet bundle.

``repro-fleet`` (:func:`main`) is the CLI: point it at N shard
sockets, give it a journal directory and a listen socket, and attach
clients to the listen socket.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import contextlib
import hashlib
import signal
import sys
import time

from repro.obs.metrics import get_metrics, set_metrics
from repro.obs.slo import SloEngine
from repro.obs.timeseries import ServiceTelemetry
from repro.obs.trace import get_tracer, tracing
from repro.service.protocol import (
    ProtocolError,
    error_response,
    extract_trace,
    ok_response,
    read_message,
    write_message,
)
from repro.service.repo import BundleError, RuleRepository, verify_bundle

DEFAULT_VNODES = 256
#: Fast ops (ping, delta, report_gaps) forwarded to a shard.
SHARD_TIMEOUT = 30.0
#: ``flush`` runs a learning round on the shard; give it room.
FLUSH_TIMEOUT = 600.0


class HashRing:
    """Consistent hashing of string keys onto shard ids.

    Each shard contributes ``vnodes`` virtual points at
    ``sha256("<shard>#<i>")``; a key maps to the first point clockwise
    from ``sha256(key)``.  Deterministic across processes (no salted
    ``hash()``), balanced to a few percent at the default 256 vnodes,
    and minimal under churn: removing a shard only remaps keys that
    landed on its points.
    """

    def __init__(self, shards, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._shards: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )

    def add(self, shard: str) -> None:
        if shard in self._shards:
            raise ValueError(f"duplicate shard id {shard!r}")
        self._shards.append(shard)
        for index in range(self.vnodes):
            point = self._hash(f"{shard}#{index}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, shard)

    def remove(self, shard: str) -> None:
        self._shards.remove(shard)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def shards(self) -> list[str]:
        return list(self._shards)

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (ring must not be empty)."""
        if not self._points:
            raise ValueError("hash ring has no shards")
        at = bisect.bisect_right(self._points, self._hash(key))
        if at == len(self._points):
            at = 0
        return self._owners[at]

    def __len__(self) -> int:
        return len(self._shards)


class ShardLink:
    """The coordinator's stateful connection to one shard.

    States: ``down`` (unreachable), ``catching-up`` (alive, replaying
    the journal), ``ready`` (generation-converged, taking traffic).
    Gap reports routed here while the shard is not ready queue up and
    deliver on the next transition to ready, so churn loses no gaps.
    """

    def __init__(self, shard_id: str, socket_path: str | None = None,
                 address: tuple[str, int] | None = None) -> None:
        if (socket_path is None) == (address is None):
            raise ValueError("pass exactly one of socket_path / address")
        self.shard_id = shard_id
        self.socket_path = socket_path
        self.address = address
        self.state = "down"
        #: Shard-local repo generation the coordinator last absorbed.
        self.last_generation = 0
        #: Gap reports awaiting delivery (shard down or catching up).
        self.queued_gaps: list[dict] = []
        self._queued_digests: set[str] = set()
        #: Every gap ever accepted for this shard, by digest.  A shard
        #: restart loses the in-memory aggregator (and clients never
        #: re-report a drained digest), so on reattach the coordinator
        #: redelivers this backlog; shards that merely dropped the
        #: connection still hold their settled-set and absorb nothing.
        self.routed_gaps: dict[str, dict] = {}
        self.kills_observed = 0
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    @property
    def alive(self) -> bool:
        return self.state != "down"

    @property
    def ready(self) -> bool:
        return self.state == "ready"

    def queue_gaps(self, gaps: list[dict]) -> int:
        """Buffer a gap report for delivery once the shard is ready."""
        queued = 0
        for gap in gaps:
            digest = gap.get("digest")
            if digest in self._queued_digests:
                continue
            self._queued_digests.add(digest)
            self.queued_gaps.append(gap)
            self.routed_gaps.setdefault(digest, gap)
            queued += 1
        return queued

    def take_queued(self) -> list[dict]:
        gaps, self.queued_gaps = self.queued_gaps, []
        self._queued_digests.clear()
        return gaps

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path
            )
        else:
            host, port = self.address
            self._reader, self._writer = await asyncio.open_connection(
                host, port
            )

    def _teardown(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None

    def mark_down(self) -> None:
        if self.state != "down":
            self.kills_observed += 1
        self.state = "down"
        self._teardown()

    async def request(self, op: str, timeout: float = SHARD_TIMEOUT,
                      **fields) -> dict:
        """One request/response round-trip on this link.

        Serialized per link (concurrent coordinator handlers share the
        connection); any transport failure tears the connection down
        and marks the shard dead so the reconnect loop takes over.
        """
        message = {"op": op}
        message.update(fields)
        async with self._lock:
            try:
                await self._connect()
                await write_message(self._writer, message)
                response = await asyncio.wait_for(
                    read_message(self._reader), timeout
                )
            except (OSError, ProtocolError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                self.mark_down()
                raise ConnectionError(
                    f"shard {self.shard_id}: {type(exc).__name__}: {exc}"
                ) from exc
        if response is None:
            self.mark_down()
            raise ConnectionError(
                f"shard {self.shard_id} closed the connection"
            )
        if not response.get("ok"):
            raise BundleError(
                f"shard {self.shard_id}: {response.get('error')}"
            )
        return response

    def status(self) -> dict:
        return {
            "state": self.state,
            "alive": self.alive,
            "ready": self.ready,
            "generation": self.last_generation,
            "queued_gaps": len(self.queued_gaps),
            "routed_gaps": len(self.routed_gaps),
            "kills_observed": self.kills_observed,
        }


class FleetCoordinator:
    """Routes fleet traffic; owns the merged generation-monotone view.

    The coordinator is itself a wire-protocol server: clients attach to
    it exactly as they would to a single ``repro-serve``.  Internally
    it fans ``report_gaps`` out across the ring, forwards ``flush`` to
    every ready shard, folds shard deltas into its own journal
    repository (whose generation is the *fleet* generation clients
    sync against), and replays that journal into shards that come back
    empty — replica catch-up.
    """

    def __init__(self, repo_dir: str, links: list[ShardLink],
                 vnodes: int = DEFAULT_VNODES,
                 slo: SloEngine | None = None) -> None:
        if not links:
            raise ValueError("a fleet needs at least one shard")
        self.repo = RuleRepository(repo_dir)
        self.links = {link.shard_id: link for link in links}
        if len(self.links) != len(links):
            raise ValueError("duplicate shard ids")
        self.ring = HashRing(self.links, vnodes=vnodes)
        self.slo = slo
        self.telemetry = ServiceTelemetry()
        self.direction: str | None = None
        self.semantics: int | None = None
        self.gaps_routed = 0
        self.gaps_queued_total = 0
        self.catchups = 0
        self._refresh_lock = asyncio.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._reconnect_task: asyncio.Task | None = None

    # -- shard lifecycle -----------------------------------------------------

    async def attach_shard(self, link: ShardLink) -> bool:
        """Bring one shard from down to ready: probe, catch up, drain
        its queued gaps.  Returns True when the shard ended ready."""
        try:
            info = await link.request("ping")
            link.state = "catching-up"
            self._check_identity(link, info)
            await self._catch_up(link)
            link.state = "ready"
            link.take_queued()
            # Redeliver the full routed backlog, not just the queue: a
            # restarted shard lost its aggregator, and clients never
            # re-report a drained digest.  Shards that kept their
            # state dedup the repeats (settled gaps stay settled).
            backlog = list(link.routed_gaps.values())
            if backlog:
                await link.request("report_gaps", gaps=backlog)
            return True
        except (ConnectionError, BundleError) as exc:
            if link.state != "down":
                link.mark_down()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("fleet.shard_unreachable",
                             shard=link.shard_id, error=str(exc))
            return False

    def _check_identity(self, link: ShardLink, info: dict) -> None:
        direction = info.get("direction")
        semantics = info.get("semantics")
        if self.direction is None:
            self.direction = direction
            self.semantics = semantics
        elif (direction, semantics) != (self.direction, self.semantics):
            raise BundleError(
                f"shard {link.shard_id} serves {direction}/{semantics}, "
                f"fleet is {self.direction}/{self.semantics}"
            )

    async def _catch_up(self, link: ShardLink) -> None:
        """Replay the journal into ``link`` until generation-converged.

        Every bundle the fleet has ever published is offered; the
        shard's rule-identity dedup makes replay idempotent (a shard
        that kept its directory republishes nothing).  Afterwards the
        shard's own manifest is absorbed, so rules it learned before
        dying but never delivered are not lost either.
        """
        manifest = await link.request("manifest")
        payload = manifest.get("manifest", {}).get("payload", {})
        have = {
            entry.get("digest")
            for entry in payload.get("bundles", [])
        }
        replayed = 0
        for ref in self.repo.entries():
            if ref.digest in have:
                continue
            document = self.repo.load_bundle(ref.digest)
            await link.request("install_bundle", digest=ref.digest,
                               bundle=document)
            replayed += 1
        # The shard may hold bundles the fleet never absorbed (it died
        # after publishing, before a refresh); start its delta cursor
        # at zero so the next refresh folds them in.
        link.last_generation = 0
        await link.request("catchup_done")
        self.catchups += 1
        get_metrics().inc("fleet.catchups")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("fleet.catchup", shard=link.shard_id,
                         replayed=replayed,
                         generation=self.repo.generation)

    async def _reconnect_loop(self, interval: float) -> None:
        while True:
            for link in list(self.links.values()):
                if link.state == "down":
                    await self.attach_shard(link)
                else:
                    # Liveness probe: a shard killed and instantly
                    # restarted still *looks* connected, and would be
                    # routed traffic without having been caught up.
                    # Pinging every interval bounds how long a stale
                    # link can pose as ready; the failed ping marks it
                    # down and the next pass re-attaches it properly.
                    with contextlib.suppress(ConnectionError,
                                             BundleError):
                        await link.request("ping")
            await asyncio.sleep(interval)

    async def refresh(self) -> int:
        """Fold every ready shard's new bundles into the journal.

        Returns the number of fleet bundles published.  Serialized so
        concurrent client syncs cannot interleave repository writes.
        """
        published = 0
        async with self._refresh_lock:
            for link in list(self.links.values()):
                if not link.ready:
                    continue
                try:
                    response = await link.request(
                        "delta", since=link.last_generation
                    )
                except ConnectionError:
                    continue
                generation = response.get("generation", 0)
                for entry in response.get("entries", []):
                    digest = entry.get("digest", "")
                    try:
                        body = await link.request("bundle", digest=digest)
                    except ConnectionError:
                        break
                    rules = verify_bundle(body.get("bundle"), digest)
                    ref = self.repo.publish(
                        rules, entry.get("direction", self.direction)
                    )
                    if ref is not None:
                        published += 1
                        self.telemetry.rules.add(ref.rules)
                        await self._replicate(ref, exclude=link.shard_id)
                else:
                    link.last_generation = max(
                        link.last_generation, generation
                    )
        if published:
            get_metrics().inc("fleet.bundles_folded", published)
        return published

    async def _replicate(self, ref, exclude: str) -> None:
        """Push one freshly folded bundle to the other ready shards so
        every shard converges on the full rule set live, not only at
        catch-up."""
        document = self.repo.load_bundle(ref.digest)
        for link in self.links.values():
            if link.shard_id == exclude or not link.ready:
                continue
            with contextlib.suppress(ConnectionError, BundleError):
                await link.request("install_bundle", digest=ref.digest,
                                   bundle=document)

    # -- request handling ----------------------------------------------------

    async def handle(self, request: dict) -> dict:
        op = request.get("op")
        context = extract_trace(request)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return error_response(f"unknown op {op!r}")
        tracer = get_tracer()
        start = time.perf_counter()
        try:
            if tracer.enabled:
                with tracer.span(f"fleet.op.{op}", context=context):
                    return await handler(request)
            return await handler(request)
        except (BundleError, KeyError, TypeError, ValueError) as exc:
            return error_response(f"{type(exc).__name__}: {exc}")
        finally:
            elapsed = time.perf_counter() - start
            self.telemetry.observe_op(str(op), elapsed)
            if self.slo is not None:
                self.slo.record(f"op:{op}", elapsed * 1000.0)

    async def _op_ping(self, request: dict) -> dict:
        return ok_response(
            direction=self.direction or "arm-x86",
            semantics=self.semantics
            if self.semantics is not None
            else self.repo.semantics_version,
            generation=self.repo.generation,
            fleet=True,
            shards=len(self.links),
        )

    async def _op_manifest(self, request: dict) -> dict:
        await self.refresh()
        return ok_response(manifest=self.repo.manifest())

    async def _op_delta(self, request: dict) -> dict:
        await self.refresh()
        since = int(request.get("since", 0))
        return ok_response(
            generation=self.repo.generation,
            entries=[ref.to_json()
                     for ref in self.repo.delta_since(since)],
        )

    async def _op_bundle(self, request: dict) -> dict:
        digest = request["digest"]
        return ok_response(digest=digest,
                           bundle=self.repo.load_bundle(digest))

    async def _op_report_gaps(self, request: dict) -> dict:
        report = request.get("gaps", [])
        if not isinstance(report, list):
            return error_response("gaps must be a list")
        self.telemetry.gaps.add(len(report))
        by_shard: dict[str, list[dict]] = {}
        for gap in report:
            digest = gap.get("digest")
            if not isinstance(digest, str) or not digest:
                return error_response("gap without digest")
            by_shard.setdefault(self.ring.shard_for(digest), []).append(gap)
        accepted = new = pending = queued = 0
        for shard_id, gaps in by_shard.items():
            link = self.links[shard_id]
            if link.ready:
                try:
                    response = await link.request("report_gaps",
                                                  gaps=gaps)
                    accepted += response.get("accepted", 0)
                    new += response.get("new", 0)
                    pending += response.get("pending", 0)
                    self.gaps_routed += len(gaps)
                    for gap in gaps:
                        link.routed_gaps.setdefault(gap["digest"], gap)
                    continue
                except ConnectionError:
                    pass  # fell to down mid-report: queue instead
            queued += link.queue_gaps(gaps)
            accepted += len(gaps)
        self.gaps_queued_total += queued
        metrics = get_metrics()
        metrics.inc("fleet.gaps_routed", accepted - queued)
        if queued:
            metrics.inc("fleet.gaps_queued", queued)
        return ok_response(accepted=accepted, new=new,
                           pending=pending, queued=queued)

    async def _op_flush(self, request: dict) -> dict:
        """Forward flush to every ready shard, then fold the resulting
        bundles into the journal.  Shards that are down keep their
        queued gaps; a later flush (after catch-up) learns them."""
        rules = 0
        flushed = 0
        for link in list(self.links.values()):
            if not link.ready:
                continue
            try:
                response = await link.request("flush",
                                              timeout=FLUSH_TIMEOUT)
                rules += response.get("rules", 0)
                flushed += 1
            except ConnectionError:
                continue
        published = await self.refresh()
        return ok_response(
            generation=self.repo.generation,
            published=published > 0,
            rules=rules,
            shards_flushed=flushed,
        )

    async def _op_health(self, request: dict) -> dict:
        shards = {
            shard_id: link.status()
            for shard_id, link in self.links.items()
        }
        ready = sum(1 for link in self.links.values() if link.ready)
        return ok_response(
            alive=True,
            ready=ready > 0,
            ready_shards=ready,
            shards=shards,
            generation=self.repo.generation,
        )

    async def _op_stats(self, request: dict) -> dict:
        ready = sum(1 for link in self.links.values() if link.ready)
        queued = sum(len(link.queued_gaps)
                     for link in self.links.values())
        extras = {}
        if self.slo is not None:
            extras["slo"] = self._slo_report()
        shard_stats = {}
        for shard_id, link in self.links.items():
            if not link.ready:
                continue
            with contextlib.suppress(ConnectionError, BundleError):
                stats = await link.request("stats")
                stats.pop("ok", None)
                shard_stats[shard_id] = stats
        return ok_response(
            generation=self.repo.generation,
            bundles=len(self.repo.entries()),
            fleet={
                "shards": {
                    shard_id: link.status()
                    for shard_id, link in self.links.items()
                },
                "ready_shards": ready,
                "total_shards": len(self.links),
                "vnodes": self.ring.vnodes,
                "gaps_routed": self.gaps_routed,
                "gaps_queued_total": self.gaps_queued_total,
                "queued_gaps": queued,
                "catchups": self.catchups,
            },
            shard_stats=shard_stats,
            telemetry=self.telemetry.snapshot(queue_depth=queued),
            **extras,
        )

    async def _op_metrics(self, request: dict) -> dict:
        payload = {
            "metrics": get_metrics().snapshot(),
            "telemetry": self.telemetry.snapshot(
                queue_depth=sum(len(link.queued_gaps)
                                for link in self.links.values()),
            ),
        }
        if self.slo is not None:
            payload["slo"] = self._slo_report()
        return ok_response(**payload)

    def _slo_report(self) -> dict:
        assert self.slo is not None
        ready = sum(1 for link in self.links.values() if link.ready)
        sketches = {
            f"op:{name}": sketch
            for name, sketch in self.telemetry.op_sketches().items()
        }
        gauges = {
            "gauge:fleet_ready_fraction": ready / len(self.links),
        }
        return self.slo.evaluate(sketches=sketches, gauges=gauges)

    # -- transport -----------------------------------------------------------

    async def handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, error_response(str(exc)))
                    break
                if request is None:
                    break
                await write_message(writer, await self.handle(request))
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # loop shutdown with the connection still open
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def start(self, socket_path: str | None = None,
                    port: int | None = None,
                    reconnect_interval: float = 0.5) -> None:
        """Attach the shards, start the reconnect loop, listen."""
        for link in self.links.values():
            await self.attach_shard(link)
        self._reconnect_task = asyncio.ensure_future(
            self._reconnect_loop(reconnect_interval)
        )
        if socket_path is not None:
            from repro.service.server import remove_stale_socket

            remove_stale_socket(socket_path)
            self._server = await asyncio.start_unix_server(
                self.handle_connection, path=socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self.handle_connection, host="127.0.0.1", port=port
            )

    async def close(self) -> None:
        if self._reconnect_task is not None:
            self._reconnect_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reconnect_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in self.links.values():
            link._teardown()


def parse_shard(spec: str) -> ShardLink:
    """``id=/path/to.sock`` or ``id=host:port`` -> :class:`ShardLink`."""
    shard_id, sep, where = spec.partition("=")
    if not sep or not shard_id or not where:
        raise ValueError(f"bad shard spec {spec!r} (want id=socket "
                         "or id=host:port)")
    host, colon, port = where.rpartition(":")
    if colon and port.isdigit() and "/" not in host:
        return ShardLink(shard_id, address=(host, int(port)))
    return ShardLink(shard_id, socket_path=where)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Route DBT clients across a fleet of repro-serve "
                    "shards: consistent-hash gap reports, merge delta "
                    "syncs into one generation-monotone view, and "
                    "catch restarted shards up from the journal.",
    )
    parser.add_argument("--dir", required=True, metavar="DIR",
                        help="coordinator journal directory (a rule "
                             "repository; created if absent)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", metavar="PATH",
                       help="listen on this unix socket")
    group.add_argument("--port", type=int, metavar="N",
                       help="listen on this TCP port (localhost)")
    parser.add_argument("--shard", action="append", default=[],
                        metavar="ID=ADDR", dest="shards",
                        help="one shard as id=socket-path or "
                             "id=host:port (repeat per shard)")
    parser.add_argument("--vnodes", type=int, default=DEFAULT_VNODES,
                        metavar="N",
                        help="virtual nodes per shard on the hash ring")
    parser.add_argument("--reconnect-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="down-shard reattach probe interval")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSON-lines trace of fleet "
                             "activity here")
    parser.add_argument("--slo", metavar="PATH",
                        help="load SLO objectives from this TOML file")
    args = parser.parse_args(argv)
    if not args.shards:
        parser.error("pass at least one --shard id=addr")

    set_metrics(None)
    links = [parse_shard(spec) for spec in args.shards]
    slo = SloEngine.from_toml(args.slo) if args.slo else None
    coordinator = FleetCoordinator(args.dir, links, vnodes=args.vnodes,
                                   slo=slo)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        await coordinator.start(
            socket_path=args.socket, port=args.port,
            reconnect_interval=args.reconnect_interval,
        )
        where = args.socket or f"127.0.0.1:{args.port}"
        ready = sum(1 for link in links if link.ready)
        print(f"repro-fleet: listening on {where} "
              f"({ready}/{len(links)} shard(s) ready, "
              f"generation {coordinator.repo.generation})",
              file=sys.stderr)
        try:
            await stop.wait()
        finally:
            await coordinator.close()

    trace_scope = tracing(args.trace) if args.trace \
        else contextlib.nullcontext()
    with trace_scope:
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
