"""Template construction: turn a snippet pair + mappings into
parameterized guest/host instruction templates.

Parameter names:

* ``p0, p1, ...`` — register parameters shared between guest and host
  (one per equivalence class formed by the initial live-in mapping and
  the final defined-register mapping),
* ``t0, t1, ...`` — host-only temporaries (host registers written but
  matched to no guest register; the DBT allocates scratch registers for
  them at application time),
* ``ig<N>`` / ``ih<N>`` — immediate slots; parameterized guest slots
  appear as ``SymImm(("slot", name))``, host immediates as ``SymImm``
  ASTs over guest slots,
* ``L0`` — the branch-target label parameter (at most one: snippets end
  at their first branch).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.host_x86.registers import is_low8, parent_of
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, ShiftedReg, SymImm
from repro.learning.extract import SnippetPair
from repro.learning.paramize import InitialMapping, ParamContext


class TemplateError(Exception):
    """The pair cannot be templated (e.g. unmapped guest register)."""


@dataclass
class Templates:
    """Parameterized guest/host instruction sequences plus metadata."""

    guest: tuple[Instruction, ...]
    host: tuple[Instruction, ...]
    params: tuple[str, ...]
    written_params: tuple[str, ...]
    temps: tuple[str, ...]
    guest_of_param: dict[str, str]
    host_of_param: dict[str, str]
    has_branch: bool


def build_templates(
    context: ParamContext,
    mapping: InitialMapping,
    final_pairs: dict[str, str],
    host_temp_regs: tuple[str, ...],
    written_guest_regs: tuple[str, ...],
) -> Templates:
    """Build guest/host templates.

    ``final_pairs`` maps defined guest regs to their matched defined
    host regs (the verification's final mapping); ``host_temp_regs`` are
    host-written registers with no guest counterpart.
    """
    pair = context.pair
    # Build parameter classes: guest reg <-> host reg unions.
    guest_param: dict[str, str] = {}
    host_param: dict[str, str] = {}
    counter = 0

    def new_param(guest_reg: str | None, host_reg: str | None) -> None:
        nonlocal counter
        name = f"p{counter}"
        counter += 1
        if guest_reg is not None:
            guest_param[guest_reg] = name
        if host_reg is not None:
            host_param[host_reg] = name

    for guest_reg, host_reg in mapping.reg_map.items():
        if guest_reg in final_pairs and final_pairs[guest_reg] != host_reg:
            raise TemplateError(
                f"initial/final conflict on {guest_reg}: "
                f"{host_reg} vs {final_pairs[guest_reg]}"
            )
        new_param(guest_reg, host_reg)
    for guest_reg, host_reg in final_pairs.items():
        if guest_reg in guest_param:
            continue
        if host_reg in host_param:
            # Two guest regs mapping to one host reg is a conflict the
            # verifier should have rejected already.
            raise TemplateError(f"host register {host_reg} mapped twice")
        new_param(guest_reg, host_reg)
    temps = []
    for i, host_reg in enumerate(host_temp_regs):
        temps.append(f"t{i}")
        host_param[host_reg] = f"t{i}"

    direction = context.direction
    guest_slots = mapping.guest_param_slots
    guest_instrs = tuple(
        _template_instr(
            instr, index, guest_param, context.guest_namer, guest_slots,
            None, low8=direction.guest_has_low8,
        )
        for index, instr in enumerate(pair.guest)
    )
    host_instrs = tuple(
        _template_instr(
            instr, index, host_param, context.host_namer, set(),
            mapping.imm_asts, low8=direction.host_has_low8,
        )
        for index, instr in enumerate(pair.host)
    )
    written = tuple(
        guest_param[reg] for reg in written_guest_regs if reg in guest_param
    )
    has_branch = bool(pair.guest) and \
        direction.guest_isa.is_branch(pair.guest[-1])
    return Templates(
        guest=guest_instrs,
        host=host_instrs,
        params=tuple(sorted(set(guest_param.values()) | set(host_param.values())
                            - set(temps))),
        written_params=written,
        temps=tuple(temps),
        guest_of_param={v: k for k, v in guest_param.items()},
        host_of_param={v: k for k, v in host_param.items()},
        has_branch=has_branch,
    )


def _template_instr(
    instr: Instruction,
    index: int,
    reg_param: dict[str, str],
    namer,
    guest_slots: set[str],
    imm_asts: dict[str, tuple] | None,
    low8: bool,
) -> Instruction:
    operands = []
    for op_index, op in enumerate(instr.operands):
        operands.append(
            _template_operand(
                op, index, op_index, reg_param, namer, guest_slots,
                imm_asts, low8,
            )
        )
    return replace(
        instr, operands=tuple(operands), line=None, block=None, meta=None
    )


def _param_reg(name: str, reg_param: dict[str, str], low8: bool) -> Reg:
    if low8 and is_low8(name):
        parent = parent_of(name)
        param = reg_param.get(parent)
        if param is None:
            raise TemplateError(f"unmapped register {parent}")
        return Reg(f"{param}.b")
    param = reg_param.get(name)
    if param is None:
        raise TemplateError(f"unmapped register {name}")
    return Reg(param)


def _template_operand(
    op, index: int, op_index: int, reg_param, namer, guest_slots,
    imm_asts, low8: bool,
):
    is_host = imm_asts is not None
    if isinstance(op, Reg):
        return _param_reg(op.name, reg_param, low8)
    if isinstance(op, ShiftedReg):
        return ShiftedReg(
            _param_reg(op.reg.name, reg_param, low8), op.shift, op.amount
        )
    if isinstance(op, Label):
        return Label("L0")
    if isinstance(op, Imm):
        slot = namer.slots.get((index, op_index))
        if slot is None:
            return op
        if is_host:
            ast = imm_asts.get(slot) if imm_asts else None
            return SymImm(ast) if ast is not None else op
        return SymImm(("slot", slot)) if slot in guest_slots else op
    if isinstance(op, Mem):
        base = _param_reg(op.base.name, reg_param, low8) if op.base else None
        index_reg = (
            _param_reg(op.index.name, reg_param, low8) if op.index else None
        )
        slot = namer.slots.get((index, -(op_index + 1)))
        disp_param = None
        disp = op.disp
        if slot is not None:
            if is_host:
                ast = imm_asts.get(slot) if imm_asts else None
                if ast is not None:
                    disp_param, disp = ast, 0
            elif slot in guest_slots:
                disp_param, disp = ("slot", slot), 0
        return Mem(base, index_reg, op.scale, disp, None, disp_param)
    raise TemplateError(f"cannot template operand {op!r}")
