"""Snippet extraction: group instructions by source line (Section 2).

The *learning scope* is one line of source code.  For each function
present in both builds, instructions carrying the same ``line`` debug
annotation form a guest snippet and a host snippet; the pair is a
learning candidate.  Preparation (Section 3.1) rejects pairs containing
calls or indirect branches ("CI"), ARM predicated instructions ("PI"),
and lines whose code is not a single contiguous run inside one machine
basic block ("MB").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.learning.direction import ARM_TO_X86, Direction
from repro.minic.compile import CompiledProgram


class PrepFailure(enum.Enum):
    """Preparation-step rejection causes (Table 1 columns)."""

    CALL_OR_INDIRECT = "CI"
    PREDICATED = "PI"
    MULTI_BLOCK = "MB"


@dataclass
class SnippetPair:
    """A guest/host instruction-sequence pair from one source line."""

    function: str
    line: int
    guest: list[Instruction]
    host: list[Instruction]

    def __str__(self) -> str:
        from repro.guest_arm.printer import format_instruction as fmt_arm
        from repro.host_x86.printer import format_instruction as fmt_x86

        def render(instr) -> str:
            for formatter in (fmt_arm, fmt_x86, str):
                try:
                    return formatter(instr)
                except (ValueError, TypeError):
                    continue
            return str(instr)

        guest = "; ".join(render(i) for i in self.guest)
        host = "; ".join(render(i) for i in self.host)
        return f"{self.function}:{self.line}  [{guest}]  ->  [{host}]"


@dataclass
class ExtractionResult:
    """All candidate pairs plus preparation-step statistics."""

    pairs: list[SnippetPair] = field(default_factory=list)
    #: Sequences with nothing left after stripping control glue: they
    #: count toward ``total_sequences`` but are neither pairs nor
    #: Table 1 preparation failures.
    empty_after_prep: int = 0
    prep_failures: dict[PrepFailure, int] = field(
        default_factory=lambda: {kind: 0 for kind in PrepFailure}
    )
    total_sequences: int = 0


_TARGET_OF_ISA = {"arm-x86": ("arm", "x86"), "x86-arm": ("x86", "arm")}


def extract_pairs(
    guest_program: CompiledProgram,
    host_program: CompiledProgram,
    direction: Direction = ARM_TO_X86,
) -> ExtractionResult:
    """Extract and prepare learning candidates from a dual build."""
    expected = _TARGET_OF_ISA[direction.name]
    if (guest_program.options.target, host_program.options.target) != expected:
        raise ValueError(
            f"extract_pairs({direction.name}) expects "
            f"({expected[0]} guest, {expected[1]} host) builds"
        )
    result = ExtractionResult()
    for name, guest_func in guest_program.functions.items():
        if name in guest_program.runtime_functions:
            continue  # hand-written assembly: no source lines
        host_func = host_program.functions.get(name)
        if host_func is None or name in host_program.runtime_functions:
            continue
        guest_lines = _group_by_line(guest_func.instrs)
        host_lines = _group_by_line(host_func.instrs)
        for line in sorted(set(guest_lines) & set(host_lines)):
            result.total_sequences += 1
            guest_snippet = _prepare_side(
                guest_lines[line], direction.guest_isa, result, is_guest=True
            )
            if guest_snippet is None:
                continue
            host_snippet = _prepare_side(
                host_lines[line], direction.host_isa, result, is_guest=False
            )
            if host_snippet is None:
                continue
            if not guest_snippet or not host_snippet:
                result.empty_after_prep += 1
                continue  # nothing left after stripping control glue
            result.pairs.append(
                SnippetPair(name, line, guest_snippet, host_snippet)
            )
    return result


def _group_by_line(instrs: list[Instruction]) -> dict[int, list[list[Instruction]]]:
    """line -> list of contiguous runs of instructions from that line."""
    runs: dict[int, list[list[Instruction]]] = {}
    current_line: int | None = None
    current_run: list[Instruction] = []
    for instr in instrs:
        if instr.line is None:
            _flush(runs, current_line, current_run)
            current_line, current_run = None, []
            continue
        if instr.line != current_line:
            _flush(runs, current_line, current_run)
            current_line, current_run = instr.line, []
        current_run.append(instr)
    _flush(runs, current_line, current_run)
    return runs


def _flush(runs, line, run) -> None:
    if line is not None and run:
        runs.setdefault(line, []).append(run)


def _prepare_side(runs, isa, result: ExtractionResult,
                  is_guest: bool) -> list[Instruction] | None:
    """Apply the Section 3.1 filters to one side of a candidate.

    Returns the cleaned snippet, or None after recording a failure.
    """

    def fail(kind: PrepFailure) -> None:
        result.prep_failures[kind] += 1

    all_instrs = [instr for run in runs for instr in run]
    for instr in all_instrs:
        if isa.is_call(instr) or isa.is_indirect_branch(instr):
            fail(PrepFailure.CALL_OR_INDIRECT)
            return None
    for instr in all_instrs:
        if isa.is_predicated(instr):
            fail(PrepFailure.PREDICATED)
            return None
    # Strip trailing unconditional jumps from each run (pure control
    # glue: the DBT's block chaining handles those, and QEMU blocks end
    # at branches anyway), then drop runs that were only glue — a loop's
    # back-jump carries the loop header's line but is not part of it.
    cleaned: list[list[Instruction]] = []
    for run in runs:
        run = list(run)
        while run and _is_plain_jump(run[-1], isa):
            run.pop()
        if run:
            cleaned.append(run)
    if not cleaned:
        return []
    if len(cleaned) > 1:
        fail(PrepFailure.MULTI_BLOCK)
        return None
    snippet = cleaned[0]
    blocks = {instr.block for instr in snippet}
    if len(blocks) > 1:
        fail(PrepFailure.MULTI_BLOCK)
        return None
    # A branch anywhere but the end makes this a multi-block line.
    for instr in snippet[:-1]:
        if isa.is_branch(instr):
            fail(PrepFailure.MULTI_BLOCK)
            return None
    return snippet


def _is_plain_jump(instr: Instruction, isa) -> bool:
    return (
        isa.is_branch(instr)
        and isa.branch_condition(instr) is None
        and not isa.is_call(instr)
        and not isa.is_indirect_branch(instr)
    )
