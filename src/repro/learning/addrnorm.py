"""Memory-address normalization (paper Section 3.2, Figure 2).

Every memory access in a snippet is normalized to::

    sum(live_in_reg * coeff) + sum(imm_slot * coeff) + const

by forward-tracking *linear forms* through the snippet's register
definitions (mov/add/sub/shl/lea/...).  Registers whose definition is
not linear (loads, multiplies by registers, ...) appear as opaque
terms, which simply makes the later matching fail conservatively.

Immediate operands are tracked as named *slots* (``ig<N>`` on the guest
side, ``ih<N>`` on the host side) so the learner knows exactly which
instruction operands contribute to an address constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Mem, Reg, ShiftedReg


@dataclass
class LinForm:
    """A linear combination of registers, immediate slots and a const."""

    regs: dict[str, int] = field(default_factory=dict)
    slots: dict[str, int] = field(default_factory=dict)
    const: int = 0

    def copy(self) -> "LinForm":
        return LinForm(dict(self.regs), dict(self.slots), self.const)

    def scaled(self, factor: int) -> "LinForm":
        return LinForm(
            {reg: coeff * factor for reg, coeff in self.regs.items()},
            {slot: coeff * factor for slot, coeff in self.slots.items()},
            self.const * factor,
        )

    def plus(self, other: "LinForm", sign: int = 1) -> "LinForm":
        result = self.copy()
        for reg, coeff in other.regs.items():
            result.regs[reg] = result.regs.get(reg, 0) + sign * coeff
            if result.regs[reg] == 0:
                del result.regs[reg]
        for slot, coeff in other.slots.items():
            result.slots[slot] = result.slots.get(slot, 0) + sign * coeff
            if result.slots[slot] == 0:
                del result.slots[slot]
        result.const += sign * other.const
        return result

    @property
    def is_opaque(self) -> bool:
        return any(reg.startswith("!opaque") for reg in self.regs)

    def __str__(self) -> str:
        parts = [f"{r}*{c}" if c != 1 else r for r, c in sorted(self.regs.items())]
        parts += [f"{s}*{c}" if c != 1 else s for s, c in sorted(self.slots.items())]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass
class AccessInfo:
    """One memory access with its normalized address."""

    instr_index: int
    operand_index: int
    mem: Mem
    form: LinForm
    size: int
    is_store: bool
    var: str | None


class SlotNamer:
    """Assigns stable slot names to immediate operand positions."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.slots: dict[tuple[int, int], str] = {}  # (instr, operand) -> name
        self.values: dict[str, int] = {}

    def slot_for(self, instr_index: int, operand_index: int, value: int) -> str:
        key = (instr_index, operand_index)
        name = self.slots.get(key)
        if name is None:
            name = f"{self.prefix}{len(self.slots)}"
            self.slots[key] = name
            self.values[name] = value & 0xFFFFFFFF
        return name


def _imm_form(namer: SlotNamer, instr_index: int, operand_index: int,
              value: int) -> LinForm:
    slot = namer.slot_for(instr_index, operand_index, value)
    return LinForm(slots={slot: 1})


def analyze_snippet(
    instrs: list[Instruction], isa, namer: SlotNamer
) -> tuple[list[AccessInfo], dict[str, LinForm]]:
    """Track linear forms through a snippet.

    Returns (memory accesses with normalized addresses, final register
    forms).  ``isa`` is the guest or host isa module (for defs).
    """
    forms: dict[str, LinForm] = {}
    accesses: list[AccessInfo] = []
    opaque_counter = 0

    def form_of_reg(name: str) -> LinForm:
        existing = forms.get(name)
        if existing is not None:
            return existing.copy()
        return LinForm(regs={name: 1})  # live-in register

    def opaque() -> LinForm:
        nonlocal opaque_counter
        opaque_counter += 1
        return LinForm(regs={f"!opaque{opaque_counter}": 1})

    for index, instr in enumerate(instrs):
        # Record memory accesses with the *current* forms.  leal is
        # address arithmetic, not a memory access.
        for op_index, op in enumerate(instr.operands):
            if isinstance(op, Mem) and instr.mnemonic != "leal":
                form = _address_form(op, form_of_reg, namer, index, op_index)
                accesses.append(
                    AccessInfo(
                        index, op_index, op, form,
                        _access_size(instr), _is_store(instr, isa), op.var,
                    )
                )
        new_form = _transfer(instr, form_of_reg, namer, index, opaque)
        for reg in isa.defined_registers(instr):
            if new_form is not None and reg == _dest_reg(instr, isa):
                forms[reg] = new_form
            else:
                forms[reg] = opaque()
    return accesses, forms


def _access_size(instr: Instruction) -> int:
    if instr.mnemonic in ("ldrb", "strb", "movb", "movzbl", "movsbl"):
        return 1
    return 4


def _is_store(instr: Instruction, isa) -> bool:
    name = instr.mnemonic
    if name in ("str", "strb"):
        return True
    if name in ("movl", "movb") and isinstance(instr.operands[-1], Mem):
        return True
    return False


def _dest_reg(instr: Instruction, isa) -> str | None:
    defs = isa.defined_registers(instr)
    return defs[0] if defs else None


def _address_form(mem: Mem, form_of_reg, namer: SlotNamer, instr_index: int,
                  op_index: int) -> LinForm:
    form = LinForm()
    if mem.base is not None:
        form = form.plus(form_of_reg(mem.base.name))
    if mem.index is not None:
        form = form.plus(form_of_reg(mem.index.name).scaled(mem.scale))
    # The displacement is an immediate slot (Figure 4(a): even a zero
    # guest offset maps to a nonzero host offset).
    slot = namer.slot_for(instr_index, -(op_index + 1), mem.disp)
    form = form.plus(LinForm(slots={slot: 1}))
    return form


def _transfer(instr: Instruction, form_of_reg, namer: SlotNamer,
              index: int, opaque) -> LinForm | None:
    """Linear form produced for the destination register, if trackable."""
    name = instr.mnemonic
    ops = instr.operands

    def operand_form(op, op_index: int) -> LinForm | None:
        if isinstance(op, Reg):
            return form_of_reg(op.name)
        if isinstance(op, Imm):
            return _imm_form(namer, index, op_index, op.value)
        if isinstance(op, ShiftedReg):
            if op.shift == "lsl":
                return form_of_reg(op.reg.name).scaled(1 << op.amount)
            return None
        return None

    # -- ARM ------------------------------------------------------------
    if name == "mov":
        return operand_form(ops[1], 1)
    if name in ("add", "sub"):
        left = operand_form(ops[1], 1)
        right = operand_form(ops[2], 2)
        if left is None or right is None:
            return None
        return left.plus(right, 1 if name == "add" else -1)
    if name == "lsl" and isinstance(ops[2], Imm):
        base = operand_form(ops[1], 1)
        return base.scaled(1 << ops[2].value) if base is not None else None

    # -- x86 (AT&T: src, dst) ---------------------------------------------
    if name == "movl" and isinstance(ops[1], Reg) and not isinstance(ops[0], Mem):
        return operand_form(ops[0], 0)
    if name in ("addl", "subl") and isinstance(ops[1], Reg) and \
            not isinstance(ops[0], Mem):
        left = form_of_reg(ops[1].name)
        right = operand_form(ops[0], 0)
        if right is None:
            return None
        return left.plus(right, 1 if name == "addl" else -1)
    if name == "shll" and isinstance(ops[0], Imm) and isinstance(ops[1], Reg):
        return form_of_reg(ops[1].name).scaled(1 << ops[0].value)
    if name == "leal" and isinstance(ops[0], Mem):
        return _address_form(ops[0], form_of_reg, namer, index, 0)
    if name == "incl" and isinstance(ops[0], Reg):
        return form_of_reg(ops[0].name).plus(LinForm(const=1))
    if name == "decl" and isinstance(ops[0], Reg):
        return form_of_reg(ops[0].name).plus(LinForm(const=-1))
    return None
