"""Translation directions: which ISA is guest, which is host.

The learning pipeline is direction-agnostic (paper Section 3,
"DBT Independence"; Section 3.2 notes the Figure 4(b) mapping "could be
concluded even if x86 is the guest ISA and ARM is the host ISA").  A
:class:`Direction` bundles everything direction-specific: the isa
metadata modules, the semantics entry points, the guest-to-host flag
correspondence, and the host-ISA encoding constraints of Section 5.

``ARM_TO_X86`` is the paper's primary direction (and the only one the
DBT engine executes); ``X86_TO_ARM`` supports reverse learning, where
assembling a rule's host side must respect ARM's modified-immediate
and load/store-offset encoding limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.guest_arm import execute as execute_arm
from repro.guest_arm import isa as arm_isa
from repro.host_x86 import execute as execute_x86
from repro.host_x86 import isa as x86_isa
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Mem


class HostConstraintError(ValueError):
    """A bound host instruction violates a host-ISA encoding limit."""


def x86_host_constraints(instr: Instruction) -> None:
    """IA-32 encoding limits: SIB scale must be 1/2/4/8."""
    for op in instr.operands:
        if isinstance(op, Mem) and op.index is not None and \
                op.scale not in (1, 2, 4, 8):
            raise HostConstraintError(
                f"x86 scale {op.scale} not encodable in {instr}"
            )


def arm_host_constraints(instr: Instruction) -> None:
    """ARM encoding limits (paper Section 5): data-processing
    immediates must be 8-bit values under an even rotation; load/store
    displacements must fit in +-4095."""
    from repro.minic.backend.arm_backend import arm_imm_ok

    base, _, _ = arm_isa.split_mnemonic(instr.mnemonic)
    for op in instr.operands:
        if isinstance(op, Imm) and base not in ("lsl", "lsr", "asr"):
            if not arm_imm_ok(op.value):
                raise HostConstraintError(
                    f"ARM immediate {op.value:#x} not encodable in {instr}"
                )
        if isinstance(op, Mem) and not -4095 <= op.disp <= 4095:
            raise HostConstraintError(
                f"ARM load/store offset {op.disp} out of range in {instr}"
            )


@dataclass(frozen=True)
class Direction:
    """One guest->host translation direction."""

    name: str
    guest_isa: object
    host_isa: object
    guest_execute: Callable
    host_execute: Callable
    # guest flag -> architecturally corresponding host flag
    flag_partners: dict
    guest_has_low8: bool
    host_has_low8: bool
    host_constraints: Callable[[Instruction], None]

    def guest_opcode_id(self, instr: Instruction) -> int:
        return self.guest_isa.opcode_id(instr)

    def __reduce__(self):
        # Directions hold ISA *modules*, which pickle rejects; round-trip
        # through the registry by name (the process-pool learning path
        # ships ParamContext objects to workers).
        return (_direction_by_name, (self.name,))


def _direction_by_name(name: str) -> "Direction":
    return DIRECTIONS[name]


ARM_TO_X86 = Direction(
    name="arm-x86",
    guest_isa=arm_isa,
    host_isa=x86_isa,
    guest_execute=execute_arm,
    host_execute=execute_x86,
    flag_partners={"N": "SF", "Z": "ZF", "C": "CF", "V": "OF"},
    guest_has_low8=False,
    host_has_low8=True,
    host_constraints=x86_host_constraints,
)

X86_TO_ARM = Direction(
    name="x86-arm",
    guest_isa=x86_isa,
    host_isa=arm_isa,
    guest_execute=execute_x86,
    host_execute=execute_arm,
    flag_partners={"SF": "N", "ZF": "Z", "CF": "C", "OF": "V"},
    guest_has_low8=True,
    host_has_low8=False,
    host_constraints=arm_host_constraints,
)

DIRECTIONS = {d.name: d for d in (ARM_TO_X86, X86_TO_ARM)}
