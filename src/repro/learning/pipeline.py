"""End-to-end rule learning with Table 1-style reporting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.learning.direction import ARM_TO_X86, Direction
from repro.learning.extract import PrepFailure, extract_pairs
from repro.learning.paramize import (
    ParamFailure,
    analyze_pair,
    generate_mappings,
)
from repro.learning.rule import Rule, dedup_rules
from repro.learning.verify import VerifyFailure, verify_candidate
from repro.minic.compile import CompiledProgram


@dataclass
class LearningReport:
    """Per-benchmark learning statistics (one Table 1 row)."""

    benchmark: str = ""
    total_sequences: int = 0
    prep_ci: int = 0
    prep_pi: int = 0
    prep_mb: int = 0
    param_num: int = 0
    param_name: int = 0
    param_failg: int = 0
    verify_rg: int = 0
    verify_mm: int = 0
    verify_br: int = 0
    verify_other: int = 0
    rules: int = 0
    learn_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def prep_failures(self) -> int:
        return self.prep_ci + self.prep_pi + self.prep_mb

    @property
    def param_failures(self) -> int:
        return self.param_num + self.param_name + self.param_failg

    @property
    def verify_failures(self) -> int:
        return self.verify_rg + self.verify_mm + self.verify_br + \
            self.verify_other

    @property
    def yield_fraction(self) -> float:
        if not self.total_sequences:
            return 0.0
        return self.rules / self.total_sequences

    def merge(self, other: "LearningReport") -> None:
        for name in (
            "total_sequences", "prep_ci", "prep_pi", "prep_mb", "param_num",
            "param_name", "param_failg", "verify_rg", "verify_mm",
            "verify_br", "verify_other", "rules",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.learn_seconds += other.learn_seconds
        self.verify_seconds += other.verify_seconds


@dataclass
class LearningOutcome:
    """Rules plus the statistics of one learning run."""

    rules: list[Rule] = field(default_factory=list)
    report: LearningReport = field(default_factory=LearningReport)


def learn_rules(
    guest_program: CompiledProgram,
    host_program: CompiledProgram,
    benchmark: str = "",
    direction: Direction = ARM_TO_X86,
) -> LearningOutcome:
    """Learn translation rules from one dual-compiled program."""
    start = time.perf_counter()
    report = LearningReport(benchmark=benchmark)
    extraction = extract_pairs(guest_program, host_program, direction)
    report.total_sequences = extraction.total_sequences
    report.prep_ci = extraction.prep_failures[PrepFailure.CALL_OR_INDIRECT]
    report.prep_pi = extraction.prep_failures[PrepFailure.PREDICATED]
    report.prep_mb = extraction.prep_failures[PrepFailure.MULTI_BLOCK]

    rules: list[Rule] = []
    for pair in extraction.pairs:
        context = analyze_pair(pair, direction)
        mappings, failure = generate_mappings(context)
        if failure is not None:
            _count_param_failure(report, failure)
            continue
        verify_start = time.perf_counter()
        last_failure: VerifyFailure | None = None
        learned = None
        for mapping in mappings:
            result = verify_candidate(context, mapping, origin=benchmark)
            if result.rule is not None:
                learned = result.rule
                break
            last_failure = result.failure
        report.verify_seconds += time.perf_counter() - verify_start
        if learned is not None:
            rules.append(learned)
        else:
            # Only the last verification attempt is counted (Section 6.1).
            _count_verify_failure(report, last_failure)
    rules = dedup_rules(rules)
    report.rules = len(rules)
    report.learn_seconds = time.perf_counter() - start
    return LearningOutcome(rules=rules, report=report)


def learn_corpus(
    builds: dict[str, tuple[CompiledProgram, CompiledProgram]],
) -> dict[str, LearningOutcome]:
    """Learn rules independently from several benchmarks.

    ``builds`` maps benchmark name -> (guest build, host build).
    """
    return {
        name: learn_rules(guest, host, benchmark=name)
        for name, (guest, host) in builds.items()
    }


def leave_one_out(
    outcomes: dict[str, LearningOutcome], excluded: str
) -> list[Rule]:
    """All rules learned from every benchmark except ``excluded``
    (the paper's evaluation protocol)."""
    rules: list[Rule] = []
    for name, outcome in outcomes.items():
        if name != excluded:
            rules.extend(outcome.rules)
    return dedup_rules(rules)


def _count_param_failure(report: LearningReport, failure: ParamFailure) -> None:
    if failure is ParamFailure.MEM_COUNT:
        report.param_num += 1
    elif failure is ParamFailure.MEM_NAME:
        report.param_name += 1
    else:
        report.param_failg += 1


def _count_verify_failure(report: LearningReport,
                          failure: VerifyFailure | None) -> None:
    if failure is VerifyFailure.REGISTERS:
        report.verify_rg += 1
    elif failure is VerifyFailure.MEMORY:
        report.verify_mm += 1
    elif failure is VerifyFailure.BRANCH:
        report.verify_br += 1
    else:
        report.verify_other += 1
