"""End-to-end rule learning with Table 1-style reporting.

The pipeline runs in stages (extract -> paramize -> verify), and the
verify stage — the wall-clock sink — is organized around *canonical
candidates* (:mod:`repro.learning.canon`): textually identical
pair+mapping work items are deduplicated **before** any solver call, an
optional persistent :class:`~repro.learning.cache.VerificationCache`
settles candidates seen in earlier runs, and only the remainder pays
for symbolic execution.  Failure accounting stays Table 1-compatible:
every snippet pair is still classified individually; duplicates simply
share the (deterministic) verdict of their canonical representative.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.faults.deadline import DeadlineBudget
from repro.learning.cache import VerificationCache
from repro.learning.canon import (
    CandidateOutcome,
    candidate_digest,
    resolve_candidate,
)
from repro.learning.direction import ARM_TO_X86, Direction
from repro.learning.extract import PrepFailure, SnippetPair, extract_pairs
from repro.learning.paramize import (
    InitialMapping,
    ParamContext,
    ParamFailure,
    analyze_pair,
    generate_mappings,
)
from repro.learning.rule import Rule, dedup_rules
from repro.learning.verify import VerifyFailure
from repro.minic.compile import CompiledProgram
from repro.obs.metrics import get_metrics
from repro.obs.profiler import phase
from repro.obs.trace import get_tracer

#: Table 1 failure-taxonomy codes, shared with the trace payloads.
PREP_CODES = {
    PrepFailure.CALL_OR_INDIRECT: "CI",
    PrepFailure.PREDICATED: "PI",
    PrepFailure.MULTI_BLOCK: "MB",
}
PARAM_CODES = {
    ParamFailure.MEM_COUNT: "Num",
    ParamFailure.MEM_NAME: "Name",
}
PARAM_FALLBACK_CODE = "FailG"
VERIFY_CODES = {
    VerifyFailure.REGISTERS: "Rg",
    VerifyFailure.MEMORY: "Mm",
    VerifyFailure.BRANCH: "Br",
    VerifyFailure.TIMEOUT: "TO",
    VerifyFailure.ENGINE_CRASH: "EC",
}
VERIFY_FALLBACK_CODE = "Other"


@dataclass
class LearningReport:
    """Per-benchmark learning statistics (one Table 1 row).

    Besides the paper's failure breakdown, the report carries
    stage-level timing (extract/paramize/verify) and the verification
    economy counters: ``verify_calls`` (solver-backed
    ``verify_candidate`` invocations actually performed),
    ``dedup_saved_calls`` (invocations avoided because an identical
    candidate was already settled earlier in the same run) and
    ``cache_hits``/``cache_misses`` (persistent-cache lookups, counted
    only when a cache is attached).
    """

    benchmark: str = ""
    total_sequences: int = 0
    prep_ci: int = 0
    prep_pi: int = 0
    prep_mb: int = 0
    param_num: int = 0
    param_name: int = 0
    param_failg: int = 0
    verify_rg: int = 0
    verify_mm: int = 0
    verify_br: int = 0
    verify_other: int = 0
    verify_to: int = 0
    verify_ec: int = 0
    rules: int = 0
    learn_seconds: float = 0.0
    extract_seconds: float = 0.0
    paramize_seconds: float = 0.0
    verify_seconds: float = 0.0
    verify_calls: int = 0
    dedup_saved_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    _COUNT_FIELDS = (
        "total_sequences", "prep_ci", "prep_pi", "prep_mb", "param_num",
        "param_name", "param_failg", "verify_rg", "verify_mm",
        "verify_br", "verify_other", "rules", "verify_calls",
        "dedup_saved_calls", "cache_hits", "cache_misses",
        "verify_to", "verify_ec",
    )
    _TIMING_FIELDS = (
        "learn_seconds", "extract_seconds", "paramize_seconds",
        "verify_seconds",
    )

    @property
    def prep_failures(self) -> int:
        return self.prep_ci + self.prep_pi + self.prep_mb

    @property
    def param_failures(self) -> int:
        return self.param_num + self.param_name + self.param_failg

    @property
    def verify_failures(self) -> int:
        return self.verify_rg + self.verify_mm + self.verify_br + \
            self.verify_other + self.verify_to + self.verify_ec

    @property
    def yield_fraction(self) -> float:
        if not self.total_sequences:
            return 0.0
        return self.rules / self.total_sequences

    def count_signature(self) -> tuple:
        """Every deterministic (non-timing) field, for equivalence
        checks between the sequential and parallel paths."""
        return (self.benchmark,) + tuple(
            getattr(self, name) for name in self._COUNT_FIELDS
        )

    def merge(self, other: "LearningReport") -> None:
        for name in self._COUNT_FIELDS + self._TIMING_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class LearningOutcome:
    """Rules plus the statistics of one learning run."""

    rules: list[Rule] = field(default_factory=list)
    report: LearningReport = field(default_factory=LearningReport)


@dataclass
class Candidate:
    """One verify-stage work item: a snippet pair plus its mappings."""

    pair: SnippetPair
    context: ParamContext
    mappings: list[InitialMapping]
    digest: str


def _extract_stage(
    guest_program: CompiledProgram,
    host_program: CompiledProgram,
    direction: Direction,
    report: LearningReport,
    trace: bool = True,
) -> list[SnippetPair]:
    """``trace=False`` runs the stage observability-silent: corpus
    staging extracts the same windows for dedup classification, and
    emitting learning events there would double-count every program
    that is later fed (or orphan ones that are skipped)."""
    tracer = get_tracer()
    start = time.perf_counter()
    span = tracer.span("learn.extract", benchmark=report.benchmark) \
        if trace else contextlib.nullcontext()
    with span, phase("learn.extract"):
        extraction = extract_pairs(guest_program, host_program, direction)
    report.total_sequences = extraction.total_sequences
    report.prep_ci = extraction.prep_failures[PrepFailure.CALL_OR_INDIRECT]
    report.prep_pi = extraction.prep_failures[PrepFailure.PREDICATED]
    report.prep_mb = extraction.prep_failures[PrepFailure.MULTI_BLOCK]
    report.extract_seconds = time.perf_counter() - start
    if not trace:
        return extraction.pairs
    metrics = get_metrics()
    metrics.inc("learning.sequences", extraction.total_sequences)
    metrics.inc("learning.pairs", len(extraction.pairs))
    for failure, code in PREP_CODES.items():
        count = extraction.prep_failures[failure]
        if count:
            metrics.inc(f"learning.prep_fail.{code}", count)
    if extraction.empty_after_prep:
        metrics.inc("learning.empty_after_prep",
                    extraction.empty_after_prep)
    if tracer.enabled:
        for pair in extraction.pairs:
            tracer.event("learn.pair", benchmark=report.benchmark,
                         line=pair.line)
        for failure, code in PREP_CODES.items():
            count = extraction.prep_failures[failure]
            if count:
                tracer.event("learn.prep_fail",
                             benchmark=report.benchmark,
                             reason=code, count=count)
        if extraction.empty_after_prep:
            tracer.event("learn.empty", benchmark=report.benchmark,
                         count=extraction.empty_after_prep)
    return extraction.pairs


def _paramize_stage(
    pairs: list[SnippetPair],
    direction: Direction,
    report: LearningReport,
    trace: bool = True,
) -> list[Candidate]:
    tracer = get_tracer()
    metrics = get_metrics()
    start = time.perf_counter()
    candidates: list[Candidate] = []
    span = tracer.span("learn.paramize", benchmark=report.benchmark) \
        if trace else contextlib.nullcontext()
    with span, phase("learn.paramize"):
        for pair in pairs:
            context = analyze_pair(pair, direction)
            mappings, failure = generate_mappings(context)
            if failure is not None:
                code = _count_param_failure(report, failure)
                if trace:
                    metrics.inc(f"learning.param_fail.{code}")
                    if tracer.enabled:
                        tracer.event("learn.param_fail",
                                     benchmark=report.benchmark,
                                     line=pair.line, reason=code)
                continue
            candidates.append(
                Candidate(pair, context, mappings,
                          candidate_digest(context, mappings))
            )
    report.paramize_seconds = time.perf_counter() - start
    if trace:
        metrics.inc("learning.candidates", len(candidates))
    return candidates


def _verify_stage(
    candidates: list[Candidate],
    report: LearningReport,
    benchmark: str,
    cache: VerificationCache | None,
    memo: dict[str, CandidateOutcome],
    resolver: Callable[[Candidate], CandidateOutcome] | None = None,
    budget: DeadlineBudget | None = None,
    journal=None,
) -> list[Rule]:
    """Settle every candidate: memo (pre-verification dedup), then the
    persistent cache, then the resume journal, then live verification
    via ``resolver``.

    The sequential and parallel paths share this function — the parallel
    path only swaps ``resolver`` for a lookup into pre-computed worker
    results — so reports and rule lists are identical by construction.

    ``journal`` (an :class:`~repro.learning.journal.OutcomeJournal`)
    makes the run resumable: live verdicts are journaled as they land,
    and a journaled verdict replays with its original ``calls`` cost,
    so a resumed run's report is identical to an uninterrupted one.
    """
    if resolver is None:
        def resolver(candidate: Candidate) -> CandidateOutcome:
            return resolve_candidate(candidate.context, candidate.mappings,
                                     budget=budget, digest=candidate.digest)

    tracer = get_tracer()
    metrics = get_metrics()
    rules: list[Rule] = []
    with tracer.span("learn.verify", benchmark=benchmark), \
            phase("learn.verify"):
        for candidate in candidates:
            start = time.perf_counter()
            outcome = memo.get(candidate.digest)
            if outcome is not None:
                source = "memo"
                report.dedup_saved_calls += outcome.calls
                metrics.inc("learning.verify.deduped", outcome.calls)
            else:
                cached = cache.get(candidate.digest) if cache is not None \
                    else None
                if cached is not None:
                    source = "cache"
                    report.cache_hits += 1
                    metrics.inc("learning.cache.hits")
                    outcome = cached
                else:
                    journaled = journal.get(candidate.digest) \
                        if journal is not None else None
                    if journaled is not None:
                        # A verdict settled before the previous run was
                        # killed: replay it with its recorded cost, so
                        # the resumed report matches an uninterrupted
                        # run exactly.
                        source = "journal"
                        outcome = journaled
                        metrics.inc("learning.journal.replayed")
                    else:
                        source = "live"
                        outcome = resolver(candidate)
                        if journal is not None:
                            journal.record(candidate.digest, outcome)
                    report.verify_calls += outcome.calls
                    metrics.inc("learning.verify.calls", outcome.calls)
                    metrics.observe("learning.verify.calls_per_candidate",
                                    outcome.calls)
                    if cache is not None:
                        report.cache_misses += 1
                        metrics.inc("learning.cache.misses")
                        if outcome.failure not in (VerifyFailure.TIMEOUT,
                                                   VerifyFailure.ENGINE_CRASH):
                            # TO/EC verdicts are properties of the run
                            # (budget, crashed worker), not of candidate
                            # semantics: never persist them across runs.
                            cache.put(candidate.digest, outcome)
                memo[candidate.digest] = outcome
            report.verify_seconds += time.perf_counter() - start
            if outcome.rule is not None:
                result, reason = "rule", None
                rules.append(replace(outcome.rule, origin=benchmark,
                                     line=candidate.pair.line))
            else:
                # Only the last verification attempt counts (Section 6.1).
                result = "fail"
                reason = _count_verify_failure(report, outcome.failure)
                metrics.inc(f"learning.verify_fail.{reason}")
            if tracer.enabled:
                tracer.event(
                    "learn.verdict", benchmark=benchmark,
                    digest=candidate.digest, line=candidate.pair.line,
                    source=source, calls=outcome.calls,
                    cache_miss=source in ("live", "journal")
                    and cache is not None,
                    result=result, reason=reason,
                )
    return rules


def learn_rules(
    guest_program: CompiledProgram,
    host_program: CompiledProgram,
    benchmark: str = "",
    direction: Direction = ARM_TO_X86,
    cache: VerificationCache | None = None,
    budget: DeadlineBudget | None = None,
    journal=None,
    _memo: dict[str, CandidateOutcome] | None = None,
) -> LearningOutcome:
    """Learn translation rules from one dual-compiled program.

    ``cache`` (optional) settles candidates verified in earlier runs;
    ``budget`` bounds each candidate's verification cost (hangs become
    ``TO`` outcomes); ``journal`` checkpoints verdicts incrementally so
    a killed run can resume; ``_memo`` lets :func:`learn_corpus` share
    pre-verification dedup across benchmarks.
    """
    start = time.perf_counter()
    report = LearningReport(benchmark=benchmark)
    pairs = _extract_stage(guest_program, host_program, direction, report)
    candidates = _paramize_stage(pairs, direction, report)
    memo = _memo if _memo is not None else {}
    rules = _verify_stage(candidates, report, benchmark, cache, memo,
                          budget=budget, journal=journal)
    rules = dedup_rules(rules)
    report.rules = len(rules)
    report.learn_seconds = time.perf_counter() - start
    return finish_outcome(rules, report)


def finish_outcome(rules: list[Rule],
                   report: LearningReport) -> LearningOutcome:
    """Seal one benchmark's outcome: final metrics plus the
    ``learn.rule`` / ``learn.report`` trace records.

    The ``learn.report`` event is the :class:`LearningReport`
    accounting path embedded verbatim in the trace, so the report CLI
    can cross-check it against its own per-event aggregation.  Both
    the sequential and parallel learners end through here.
    """
    report.rules = len(rules)
    get_metrics().inc("learning.rules", len(rules))
    tracer = get_tracer()
    if tracer.enabled:
        for index, rule in enumerate(rules):
            tracer.event("learn.rule", benchmark=report.benchmark,
                         index=index, line=rule.line)
        tracer.event(
            "learn.report", benchmark=report.benchmark,
            counts={name: getattr(report, name)
                    for name in report._COUNT_FIELDS},
            timings={name: getattr(report, name)
                     for name in report._TIMING_FIELDS},
        )
    return LearningOutcome(rules=rules, report=report)


def learn_corpus(
    builds: dict[str, tuple[CompiledProgram, CompiledProgram]],
    cache: VerificationCache | None = None,
    budget: DeadlineBudget | None = None,
    journal=None,
) -> dict[str, LearningOutcome]:
    """Learn rules independently from several benchmarks.

    ``builds`` maps benchmark name -> (guest build, host build).  The
    pre-verification dedup memo is shared across benchmarks, so a
    candidate appearing in several benchmarks is verified once.
    """
    memo: dict[str, CandidateOutcome] = {}
    outcomes = {
        name: learn_rules(guest, host, benchmark=name, cache=cache,
                          budget=budget, journal=journal, _memo=memo)
        for name, (guest, host) in builds.items()
    }
    if cache is not None:
        cache.save()
    return outcomes


def leave_one_out(
    outcomes: dict[str, LearningOutcome], excluded: str
) -> list[Rule]:
    """All rules learned from every benchmark except ``excluded``
    (the paper's evaluation protocol)."""
    rules: list[Rule] = []
    for name, outcome in outcomes.items():
        if name != excluded:
            rules.extend(outcome.rules)
    return dedup_rules(rules)


def _count_param_failure(report: LearningReport,
                         failure: ParamFailure) -> str:
    """Count one parameterization failure; returns its Table 1 code."""
    code = PARAM_CODES.get(failure, PARAM_FALLBACK_CODE)
    if code == "Num":
        report.param_num += 1
    elif code == "Name":
        report.param_name += 1
    else:
        report.param_failg += 1
    return code


def _count_verify_failure(report: LearningReport,
                          failure: VerifyFailure | None) -> str:
    """Count one verification failure; returns its Table 1 code."""
    code = VERIFY_CODES.get(failure, VERIFY_FALLBACK_CODE)
    if code == "Rg":
        report.verify_rg += 1
    elif code == "Mm":
        report.verify_mm += 1
    elif code == "Br":
        report.verify_br += 1
    elif code == "TO":
        report.verify_to += 1
    elif code == "EC":
        report.verify_ec += 1
    else:
        report.verify_other += 1
    return code
