"""Parallel rule learning over a process pool.

:func:`learn_corpus_parallel` fans the verify stage — the ~95% of
learning wall-clock that is symbolic execution plus SAT/BDD checks —
out to worker processes.  The schedule is:

1. (parent) extract + paramize every benchmark, in corpus order;
2. (parent) canonical dedup: collect the unique candidates, skipping
   any already settled by the persistent cache;
3. (pool) resolve the unique candidates in chunks — workers run the
   pure :func:`~repro.learning.canon.resolve_candidate` and return
   ``digest -> CandidateOutcome``;
4. (parent) deterministic merge: replay the sequential verify-stage
   accounting (:func:`~repro.learning.pipeline._verify_stage`) with
   the worker results as the resolver.

Because workers compute nothing but the pure per-candidate verdict and
all counting/dedup/cache bookkeeping replays in corpus order in the
parent, the learned rule lists and every deterministic
:class:`~repro.learning.pipeline.LearningReport` field are identical
to sequential :func:`~repro.learning.pipeline.learn_corpus` — only the
timing fields reflect the parallel wall-clock.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.learning.cache import VerificationCache
from repro.learning.canon import CandidateOutcome, resolve_candidate
from repro.learning.direction import ARM_TO_X86
from repro.learning.paramize import InitialMapping, ParamContext
from repro.learning.pipeline import (
    Candidate,
    LearningOutcome,
    LearningReport,
    _extract_stage,
    _paramize_stage,
    _verify_stage,
    finish_outcome,
    learn_corpus,
)
from repro.learning.rule import dedup_rules
from repro.minic.compile import CompiledProgram
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import get_tracer

#: Candidates per worker task: large enough to amortize IPC, small
#: enough to keep the pool busy at the tail of the work list.
DEFAULT_CHUNK_SIZE = 16

_ChunkItem = tuple[str, ParamContext, list[InitialMapping]]


def _resolve_chunk(
    chunk: list[_ChunkItem],
) -> tuple[list[tuple[str, CandidateOutcome]], dict]:
    """Worker entry point: verify one chunk of canonical candidates.

    Returns the per-candidate verdicts plus a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the
    worker-side accounting, which the parent merges into the global
    registry — the cross-process half of the metrics API.
    """
    registry = MetricsRegistry()
    start = time.perf_counter()
    results = []
    for digest, context, mappings in chunk:
        outcome = resolve_candidate(context, mappings)
        registry.inc("learning.worker.resolved")
        registry.inc("learning.worker.verify_calls", outcome.calls)
        registry.observe("learning.worker.calls_per_candidate",
                         outcome.calls)
        results.append((digest, outcome))
    registry.inc("learning.worker.seconds", time.perf_counter() - start)
    registry.inc("learning.worker.chunks")
    return results, registry.snapshot()


def learn_corpus_parallel(
    builds: dict[str, tuple[CompiledProgram, CompiledProgram]],
    jobs: int | None = None,
    cache: VerificationCache | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> dict[str, LearningOutcome]:
    """Parallel drop-in for :func:`~repro.learning.pipeline.learn_corpus`.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs <= 1`` falls back to
    the sequential path (same results, no pool overhead).
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or not builds:
        return learn_corpus(builds, cache=cache)

    # Stage 1: extract + paramize in the parent, in corpus order.
    staged: list[tuple[str, LearningReport, list[Candidate], float]] = []
    for name, (guest, host) in builds.items():
        start = time.perf_counter()
        report = LearningReport(benchmark=name)
        pairs = _extract_stage(guest, host, ARM_TO_X86, report)
        candidates = _paramize_stage(pairs, ARM_TO_X86, report)
        staged.append(
            (name, report, candidates, time.perf_counter() - start)
        )

    # Stage 2: unique unsettled candidates, in first-encounter order.
    pending: dict[str, Candidate] = {}
    for _, _, candidates, _ in staged:
        for candidate in candidates:
            if candidate.digest in pending:
                continue
            if cache is not None and candidate.digest in cache:
                continue
            pending[candidate.digest] = candidate

    # Stage 3: fan the unique candidates out to the pool in chunks.
    items: list[_ChunkItem] = [
        (digest, candidate.context, candidate.mappings)
        for digest, candidate in pending.items()
    ]
    chunks = [
        items[index:index + chunk_size]
        for index in range(0, len(items), chunk_size)
    ]
    resolved: dict[str, CandidateOutcome] = {}
    pool_seconds = 0.0
    metrics = get_metrics()
    if chunks:
        workers = min(jobs, len(chunks))
        metrics.inc("learning.pool.workers", workers)
        metrics.inc("learning.pool.chunks", len(chunks))
        pool_start = time.perf_counter()
        with get_tracer().span("learn.pool", workers=workers,
                               chunks=len(chunks)):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for chunk_result, snapshot in pool.map(
                    _resolve_chunk, chunks
                ):
                    metrics.merge(snapshot)
                    for digest, outcome in chunk_result:
                        resolved[digest] = outcome
        pool_seconds = time.perf_counter() - pool_start

    # Stage 4: deterministic merge — replay sequential accounting with
    # the pre-computed verdicts as the resolver.
    memo: dict[str, CandidateOutcome] = {}
    replayed: list[tuple[LearningReport, list, float]] = []
    for name, report, candidates, stage1_seconds in staged:
        replay_start = time.perf_counter()
        rules = _verify_stage(
            candidates, report, name, cache, memo,
            resolver=lambda candidate: resolved[candidate.digest],
        )
        rules = dedup_rules(rules)
        report.learn_seconds = (
            stage1_seconds + time.perf_counter() - replay_start
        )
        replayed.append((report, rules, stage1_seconds))
    # The replay resolver is a dict lookup, so _verify_stage timed ~0s
    # of verification; charge the pool's wall-clock to each benchmark
    # in proportion to the solver calls attributed to it, so per-rule
    # and verification-share summaries stay meaningful in parallel runs.
    total_calls = sum(report.verify_calls for report, _, _ in replayed)
    outcomes: dict[str, LearningOutcome] = {}
    for report, rules, _ in replayed:
        if total_calls:
            share = pool_seconds * report.verify_calls / total_calls
            report.verify_seconds += share
            report.learn_seconds += share
        outcomes[report.benchmark] = finish_outcome(rules, report)
    if cache is not None:
        cache.save()
    return outcomes
