"""Parallel rule learning over a crash-isolated process pool.

:func:`learn_corpus_parallel` fans the verify stage — the ~95% of
learning wall-clock that is symbolic execution plus SAT/BDD checks —
out to worker processes.  The schedule is:

1. (parent) extract + paramize every benchmark, in corpus order;
2. (parent) canonical dedup: collect the unique candidates, skipping
   any already settled by the persistent cache or the resume journal;
3. (pool) resolve the unique candidates in chunks — workers run the
   pure :func:`~repro.learning.canon.resolve_candidate` and return
   ``digest -> CandidateOutcome``;
4. (parent) deterministic merge: replay the sequential verify-stage
   accounting (:func:`~repro.learning.pipeline._verify_stage`) with
   the worker results as the resolver.

Because workers compute nothing but the pure per-candidate verdict and
all counting/dedup/cache bookkeeping replays in corpus order in the
parent, the learned rule lists and every deterministic
:class:`~repro.learning.pipeline.LearningReport` field are identical
to sequential :func:`~repro.learning.pipeline.learn_corpus` — only the
timing fields reflect the parallel wall-clock.

Fault tolerance (the scheduler's contract is that one bad candidate
never sinks the corpus):

* A chunk that fails with an ordinary exception is retried with
  exponential backoff (transient failures), then *bisected* so its
  halves re-run independently, narrowing the failure to a single
  candidate.
* A worker process death (``BrokenProcessPool`` — segfault, OOM kill,
  ``os._exit``) breaks the whole pool, so the guilty chunk cannot be
  told apart from the innocent ones that were merely in flight.  The
  pool is restarted and the suspects are *probed one at a time*: the
  next break names the culprit chunk exactly, which is bisected down
  to the poison candidate and quarantined as an ``EC`` (engine crash)
  outcome — Table 1's engine-failure column — instead of being
  re-verified forever.  Innocent candidates are never quarantined.
* With an :class:`~repro.learning.journal.OutcomeJournal`, every
  settled verdict is durably journaled the moment its chunk completes,
  so a killed run resumes without re-verifying settled candidates.

Counters: ``learning.pool.retries`` / ``.bisections`` / ``.restarts`` /
``.quarantined`` quantify the chaos the scheduler absorbed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)

from repro.faults.deadline import DeadlineBudget
from repro.faults.plan import NO_FAULTS, FaultPlan, InjectedAbort, \
    get_fault_plan
from repro.learning.cache import VerificationCache
from repro.learning.canon import CandidateOutcome, resolve_candidate
from repro.learning.direction import ARM_TO_X86
from repro.learning.journal import OutcomeJournal
from repro.learning.paramize import InitialMapping, ParamContext
from repro.learning.pipeline import (
    Candidate,
    LearningOutcome,
    LearningReport,
    _extract_stage,
    _paramize_stage,
    _verify_stage,
    finish_outcome,
    learn_corpus,
)
from repro.learning.rule import dedup_rules
from repro.learning.verify import VerifyFailure
from repro.minic.compile import CompiledProgram
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.profiler import SamplingProfiler, get_profiler, phase
from repro.obs.trace import get_tracer

#: Candidates per worker task: large enough to amortize IPC, small
#: enough to keep the pool busy at the tail of the work list.
DEFAULT_CHUNK_SIZE = 16

#: Whole-chunk retries (with exponential backoff) before a failing
#: chunk is bisected / a failing singleton is quarantined.
DEFAULT_MAX_RETRIES = 2

#: Base of the exponential backoff between chunk retries.
DEFAULT_BACKOFF_SECONDS = 0.05

_ChunkItem = tuple[str, ParamContext, list[InitialMapping]]


class ResolutionGapError(RuntimeError):
    """The deterministic replay hit a candidate the pool never settled.

    This is an internal invariant violation (stages 2/3 must settle
    every candidate stage 4 replays); the message names the candidate
    so the gap is diagnosable instead of surfacing as a bare KeyError.
    """

    def __init__(self, digest: str, benchmark: str, line: str) -> None:
        super().__init__(
            f"no resolved outcome for candidate {digest[:16]}… "
            f"(benchmark {benchmark!r}, source line {line!r}): "
            "the parallel scheduler lost a verdict it should have "
            "computed, retried or quarantined"
        )
        self.digest = digest
        self.benchmark = benchmark


def _make_replay_resolver(resolved: dict[str, CandidateOutcome],
                          benchmark: str):
    def resolver(candidate: Candidate) -> CandidateOutcome:
        try:
            return resolved[candidate.digest]
        except KeyError:
            raise ResolutionGapError(
                candidate.digest, benchmark,
                getattr(candidate.context.pair, "line", "?"),
            ) from None
    return resolver


def _resolve_chunk(
    chunk: list[_ChunkItem],
    budget: DeadlineBudget | None = None,
    plan: FaultPlan = NO_FAULTS,
    profile_hz: int = 0,
) -> tuple[list[tuple[str, CandidateOutcome]], dict]:
    """Worker entry point: verify one chunk of canonical candidates.

    Returns the per-candidate verdicts plus a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the
    worker-side accounting, which the parent merges into the global
    registry — the cross-process half of the metrics API.  With
    ``profile_hz > 0`` a sampling profiler covers the chunk and its
    profile rides home inside the snapshot (key ``"profile"``), merged
    into the parent's profiler exactly like the metrics.
    """
    registry = MetricsRegistry()
    profiler = None
    if profile_hz > 0:
        profiler = SamplingProfiler(hz=profile_hz)
        profiler.start()
    start = time.perf_counter()
    results = []
    try:
        with phase("learn.verify"):
            for digest, context, mappings in chunk:
                outcome = resolve_candidate(
                    context, mappings, budget=budget,
                    digest=digest, plan=plan,
                )
                registry.inc("learning.worker.resolved")
                registry.inc("learning.worker.verify_calls",
                             outcome.calls)
                registry.observe("learning.worker.calls_per_candidate",
                                 outcome.calls)
                if outcome.failure is VerifyFailure.TIMEOUT:
                    registry.inc("learning.worker.timeouts")
                results.append((digest, outcome))
    finally:
        if profiler is not None:
            profiler.stop()
    registry.inc("learning.worker.seconds", time.perf_counter() - start)
    registry.inc("learning.worker.chunks")
    snapshot = registry.snapshot()
    if profiler is not None:
        snapshot["profile"] = profiler.snapshot()
    return results, snapshot


class _PoolScheduler:
    """Crash-isolating work loop around a ProcessPoolExecutor."""

    def __init__(self, workers: int, budget: DeadlineBudget | None,
                 plan: FaultPlan, journal: OutcomeJournal | None,
                 resolved: dict[str, CandidateOutcome],
                 max_retries: int, backoff_seconds: float,
                 profile_hz: int = 0) -> None:
        self.workers = workers
        self.budget = budget
        self.plan = plan
        self.journal = journal
        self.resolved = resolved
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.profile_hz = profile_hz
        self.metrics = get_metrics()
        self.completed_chunks = 0

    def run(self, chunks: list[list[_ChunkItem]]) -> None:
        queue: deque[tuple[list[_ChunkItem], int]] = deque(
            (chunk, 0) for chunk in chunks
        )
        # Chunks that were in flight when the pool broke.  They are
        # probed ONE at a time on the fresh pool, so the next break
        # unambiguously names the guilty chunk — a chunk is never
        # blamed (and a candidate never quarantined) merely for sharing
        # a broken pool with the real poison.
        suspects: deque[tuple[list[_ChunkItem], int]] = deque()
        pool = ProcessPoolExecutor(max_workers=self.workers)
        inflight: dict = {}
        probing = False
        try:
            while queue or suspects or inflight:
                # submit() reports a broken pool synchronously when a
                # worker dies between batches — before any in-flight
                # future has surfaced the break via result().  A chunk
                # refused at submit time never ran, so it is requeued
                # where it came from (never blamed) and the normal
                # rebuild below takes over.
                broken = False
                if suspects and not inflight:
                    chunk, attempts = suspects.popleft()
                    try:
                        future = pool.submit(_resolve_chunk, chunk,
                                             self.budget, self.plan,
                                             self.profile_hz)
                    except BrokenExecutor:
                        suspects.appendleft((chunk, attempts))
                        broken = True
                    else:
                        inflight[future] = (chunk, attempts)
                        probing = True
                elif not suspects and not probing:
                    while queue and len(inflight) < 2 * self.workers:
                        chunk, attempts = queue.popleft()
                        try:
                            future = pool.submit(_resolve_chunk, chunk,
                                                 self.budget, self.plan,
                                                 self.profile_hz)
                        except BrokenExecutor:
                            queue.appendleft((chunk, attempts))
                            broken = True
                            break
                        inflight[future] = (chunk, attempts)
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk, attempts = inflight.pop(future)
                    try:
                        chunk_result, snapshot = future.result()
                    except BrokenExecutor:
                        broken = True
                        if probing:
                            # Serial probe: this chunk IS the culprit.
                            self._narrow_culprit(suspects, chunk)
                        else:
                            suspects.append((chunk, attempts))
                    except Exception:
                        self._handle_soft_failure(queue, chunk, attempts)
                    else:
                        self._absorb(chunk_result, snapshot)
                probing = False
                if broken:
                    # Every other in-flight chunk is merely a suspect.
                    for chunk, attempts in inflight.values():
                        suspects.append((chunk, attempts))
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                    self.metrics.inc("learning.pool.restarts")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _narrow_culprit(self, suspects, chunk) -> None:
        """A serially probed chunk crashed its (otherwise idle) worker:
        bisect toward, then quarantine, the poison candidate."""
        if len(chunk) > 1:
            mid = len(chunk) // 2
            suspects.appendleft((chunk[mid:], 0))
            suspects.appendleft((chunk[:mid], 0))
            self.metrics.inc("learning.pool.bisections")
        else:
            self._quarantine(chunk[0][0])

    def _absorb(self, chunk_result, snapshot) -> None:
        profile = snapshot.pop("profile", None)
        if profile is not None:
            get_profiler().merge(profile)
        self.metrics.merge(snapshot)
        for digest, outcome in chunk_result:
            self.resolved[digest] = outcome
            if self.journal is not None:
                self.journal.record(digest, outcome)
        self.completed_chunks += 1
        if (
            self.plan.active
            and self.plan.abort_after_chunks is not None
            and self.completed_chunks >= self.plan.abort_after_chunks
        ):
            # The verdicts above are already journaled, so the resumed
            # run replays them instead of re-verifying.
            raise InjectedAbort(
                f"injected abort after {self.completed_chunks} chunks"
            )

    def _handle_soft_failure(self, queue, chunk, attempts) -> None:
        """An exception inside the chunk (worker survived)."""
        if attempts < self.max_retries:
            time.sleep(self.backoff_seconds * (2 ** attempts))
            queue.append((chunk, attempts + 1))
            self.metrics.inc("learning.pool.retries")
        elif len(chunk) > 1:
            self._bisect(queue, chunk)
        else:
            self._quarantine(chunk[0][0])

    def _bisect(self, queue, chunk) -> None:
        mid = len(chunk) // 2
        queue.append((chunk[:mid], 0))
        queue.append((chunk[mid:], 0))
        self.metrics.inc("learning.pool.bisections")

    def _quarantine(self, digest: str) -> None:
        outcome = CandidateOutcome(
            failure=VerifyFailure.ENGINE_CRASH, calls=0
        )
        self.resolved[digest] = outcome
        if self.journal is not None:
            self.journal.record(digest, outcome)
        self.metrics.inc("learning.pool.quarantined")


def learn_corpus_parallel(
    builds: dict[str, tuple[CompiledProgram, CompiledProgram]],
    jobs: int | None = None,
    cache: VerificationCache | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    budget: DeadlineBudget | None = None,
    journal: OutcomeJournal | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    profile_hz: int = 0,
) -> dict[str, LearningOutcome]:
    """Parallel drop-in for :func:`~repro.learning.pipeline.learn_corpus`.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs <= 1`` falls back to
    the sequential path (same results, no pool overhead).  ``budget``
    bounds each candidate's verification cost (hangs become ``TO``
    outcomes); ``journal`` checkpoints verdicts for crash-safe resume.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or not builds:
        return learn_corpus(builds, cache=cache, budget=budget,
                            journal=journal)
    plan = get_fault_plan()

    # Stage 1: extract + paramize in the parent, in corpus order.
    staged: list[tuple[str, LearningReport, list[Candidate], float]] = []
    for name, (guest, host) in builds.items():
        start = time.perf_counter()
        report = LearningReport(benchmark=name)
        pairs = _extract_stage(guest, host, ARM_TO_X86, report)
        candidates = _paramize_stage(pairs, ARM_TO_X86, report)
        staged.append(
            (name, report, candidates, time.perf_counter() - start)
        )

    # Stage 2: unique unsettled candidates, in first-encounter order.
    pending: dict[str, Candidate] = {}
    for _, _, candidates, _ in staged:
        for candidate in candidates:
            if candidate.digest in pending:
                continue
            if cache is not None and candidate.digest in cache:
                continue
            if journal is not None and candidate.digest in journal:
                continue
            pending[candidate.digest] = candidate

    # Stage 3: fan the unique candidates out to the pool in chunks.
    items: list[_ChunkItem] = [
        (digest, candidate.context, candidate.mappings)
        for digest, candidate in pending.items()
    ]
    chunks = [
        items[index:index + chunk_size]
        for index in range(0, len(items), chunk_size)
    ]
    resolved: dict[str, CandidateOutcome] = {}
    pool_seconds = 0.0
    metrics = get_metrics()
    if chunks:
        workers = min(jobs, len(chunks))
        metrics.inc("learning.pool.workers", workers)
        metrics.inc("learning.pool.chunks", len(chunks))
        scheduler = _PoolScheduler(
            workers, budget, plan, journal, resolved,
            max_retries, backoff_seconds, profile_hz=profile_hz,
        )
        pool_start = time.perf_counter()
        with get_tracer().span("learn.pool", workers=workers,
                               chunks=len(chunks)):
            scheduler.run(chunks)
        pool_seconds = time.perf_counter() - pool_start

    # Stage 4: deterministic merge — replay sequential accounting with
    # the pre-computed verdicts as the resolver (journal-settled
    # candidates replay from the journal inside _verify_stage).
    memo: dict[str, CandidateOutcome] = {}
    replayed: list[tuple[LearningReport, list, float]] = []
    for name, report, candidates, stage1_seconds in staged:
        replay_start = time.perf_counter()
        rules = _verify_stage(
            candidates, report, name, cache, memo,
            resolver=_make_replay_resolver(resolved, name),
            journal=journal,
        )
        rules = dedup_rules(rules)
        report.learn_seconds = (
            stage1_seconds + time.perf_counter() - replay_start
        )
        replayed.append((report, rules, stage1_seconds))
    # The replay resolver is a dict lookup, so _verify_stage timed ~0s
    # of verification; charge the pool's wall-clock to each benchmark
    # in proportion to the solver calls attributed to it, so per-rule
    # and verification-share summaries stay meaningful in parallel runs.
    total_calls = sum(report.verify_calls for report, _, _ in replayed)
    outcomes: dict[str, LearningOutcome] = {}
    for report, rules, _ in replayed:
        if total_calls:
            share = pool_seconds * report.verify_calls / total_calls
            report.verify_seconds += share
            report.learn_seconds += share
        outcomes[report.benchmark] = finish_outcome(rules, report)
    if cache is not None:
        cache.save()
    return outcomes
