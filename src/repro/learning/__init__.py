"""Automatic learning of binary translation rules (the paper's core).

Pipeline (paper Sections 2-3)::

    extract    group guest/host instructions by source line (debug info)
    prepare    reject calls / predicated / multi-block snippets
    paramize   heuristic initial operand mapping (memory operands via IR
               variable names, live-in registers via normalized address
               expressions / operations / bounded permutations,
               immediates via arithmetic-logical relations)
    verify     symbolic execution of the parameterized templates; final
               register mapping; memory / branch-condition equivalence;
               condition-code compatibility analysis
    rule       parameterized Rule objects, deduplication
    store      hash table keyed by the arithmetic mean of guest opcodes

Entry point: :func:`repro.learning.pipeline.learn_rules`.
"""

from repro.learning.direction import (
    ARM_TO_X86,
    X86_TO_ARM,
    Direction,
    HostConstraintError,
)
from repro.learning.cache import VerificationCache
from repro.learning.extract import SnippetPair, extract_pairs
from repro.learning.journal import OutcomeJournal
from repro.learning.parallel import ResolutionGapError, learn_corpus_parallel
from repro.learning.pipeline import (
    LearningOutcome,
    LearningReport,
    learn_corpus,
    learn_rules,
    leave_one_out,
)
from repro.learning.rule import Binding, Rule, instantiate_host, match_rule
from repro.learning.serialize import dump_rules, load_rules
from repro.learning.store import RuleStore

__all__ = [
    "ARM_TO_X86",
    "X86_TO_ARM",
    "Direction",
    "HostConstraintError",
    "SnippetPair",
    "extract_pairs",
    "VerificationCache",
    "OutcomeJournal",
    "ResolutionGapError",
    "LearningOutcome",
    "LearningReport",
    "learn_rules",
    "learn_corpus",
    "learn_corpus_parallel",
    "leave_one_out",
    "Binding",
    "Rule",
    "instantiate_host",
    "match_rule",
    "RuleStore",
    "dump_rules",
    "load_rules",
]
